//! Experiment A3: analytic model vs event-driven simulator, across the
//! benchmark suite and all precisions.

use lcmm::core::pipeline::compare;
use lcmm::prelude::*;
use lcmm::sim::validate::validate;

#[test]
fn model_within_band_across_suite() {
    let device = Device::vu9p();
    for network in lcmm::graph::zoo::benchmark_suite() {
        for precision in Precision::ALL {
            let (umm, lcmm) = compare(&network, &device, precision);
            let report = validate(&network, &umm, &lcmm);
            // The simulator adds channel queueing and real prefetch
            // timing: it can only be slower than the analytic model,
            // and should stay within ~50%.
            for (label, point) in [("umm", report.umm), ("lcmm", report.lcmm)] {
                let r = point.ratio();
                assert!(
                    (0.99..1.5).contains(&r),
                    "{} {} {label}: sim/model = {r:.3}",
                    network.name(),
                    precision
                );
            }
        }
    }
}

#[test]
fn simulated_speedups_hold() {
    let device = Device::vu9p();
    for network in lcmm::graph::zoo::benchmark_suite() {
        let (umm, lcmm) = compare(&network, &device, Precision::Fix16);
        let report = validate(&network, &umm, &lcmm);
        let sim_speedup = report.umm.simulated / report.lcmm.simulated;
        let model_speedup = lcmm.speedup_over(umm.latency);
        assert!(
            sim_speedup > 1.0,
            "{}: simulated speedup {sim_speedup:.2} lost",
            network.name()
        );
        // The simulator should confirm the model's story to within a
        // third of the claimed gain.
        assert!(
            (sim_speedup - model_speedup).abs() / model_speedup < 0.35,
            "{}: sim {sim_speedup:.2} vs model {model_speedup:.2}",
            network.name()
        );
    }
}

#[test]
fn prefetch_stalls_are_bounded() {
    // Even with shared weight buffers re-prefetched every inference,
    // stalls should be a small fraction of total time.
    let device = Device::vu9p();
    let network = lcmm::graph::zoo::resnet152();
    let (_, lcmm) = compare(&network, &device, Precision::Fix16);
    let profile = lcmm.design.profile(&network);
    let sim = Simulator::new(&network, &profile);
    let config = SimConfig::default()
        .with_inferences(2)
        .with_weight_classes(lcmm::sim::validate::weight_classes(&lcmm))
        .with_prefetch(lcmm.prefetch.clone());
    let report = sim.run(&lcmm.residency, &config);
    assert!(
        report.prefetch_stall < 0.25 * report.total_latency,
        "prefetch stalls {} vs total {}",
        report.prefetch_stall,
        report.total_latency
    );
}
