//! Integration coverage of the features this repository adds beyond the
//! paper's core flow: batching, device scaling, extra networks, the
//! liveness-aware scheduler, the future-work strategy, and exports.

use lcmm::core::liveness::Schedule;
use lcmm::core::pipeline::compare;
use lcmm::core::report::{comparison_record, SuiteReport};
use lcmm::core::strategies::{tgpa_like, tgpa_plus_lcmm};
use lcmm::prelude::*;

#[test]
fn batching_shrinks_the_lcmm_advantage() {
    let graph = lcmm::graph::zoo::resnet152();
    let device = Device::vu9p();
    let speedup_at = |batch: usize| {
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16).with_batch(batch);
        let umm = UmmBaseline::from_design(&graph, design.clone());
        let lcmm = PlanRequest::new(&graph, &device, Precision::Fix16)
            .with_design(design)
            .run()
            .expect("explored design is feasible");
        lcmm.speedup_over(umm.latency)
    };
    let s1 = speedup_at(1);
    let s8 = speedup_at(8);
    assert!(s1 > 1.0 && s8 > 1.0);
    assert!(
        s8 < s1,
        "weight amortisation should shrink the advantage: batch8 {s8:.2} vs batch1 {s1:.2}"
    );
}

#[test]
fn umm_throughput_rises_with_batch() {
    let graph = lcmm::graph::zoo::googlenet();
    let device = Device::vu9p();
    let tput = |batch: usize| {
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16).with_batch(batch);
        UmmBaseline::from_design(&graph, design).throughput_ops()
    };
    assert!(tput(8) > tput(1));
}

#[test]
fn device_scaling_is_monotone() {
    let graph = lcmm::graph::zoo::googlenet();
    let speedup_on = |device: &Device| {
        let (umm, lcmm) = compare(&graph, device, Precision::Fix16);
        lcmm.speedup_over(umm.latency)
    };
    let zu = speedup_on(&Device::zu9eg());
    let vu9 = speedup_on(&Device::vu9p());
    let vu13 = speedup_on(&Device::vu13p());
    assert!(zu >= 1.0, "even the embedded part must not lose: {zu:.2}");
    assert!(vu13 > vu9, "bigger array, same DRAM => more to recover");
    assert!(vu9 > zu, "the SRAM-starved part gains least");
}

#[test]
fn extra_networks_run_end_to_end() {
    let device = Device::vu9p();
    for name in [
        "densenet121",
        "squeezenet",
        "resnet101",
        "inception_resnet_v2",
    ] {
        let graph = lcmm::graph::zoo::by_name(name).expect("model exists");
        let (umm, lcmm) = compare(&graph, &device, Precision::Fix16);
        assert!(
            lcmm.latency <= umm.latency,
            "{name}: LCMM lost ({} vs {})",
            lcmm.latency,
            umm.latency
        );
    }
}

#[test]
fn densenet_exercises_dense_liveness() {
    // Dense blocks keep every layer's output live to the block end:
    // the feature interference graph must reflect that (few sharing
    // opportunities within a block, many across blocks).
    let graph = lcmm::graph::zoo::densenet121();
    let device = Device::vu9p();
    let (_, lcmm) = compare(&graph, &device, Precision::Fix16);
    assert!(lcmm.residency.len() > 10, "expected a rich allocation");
}

#[test]
fn liveness_schedule_valid_on_all_models() {
    for name in [
        "alexnet",
        "squeezenet",
        "googlenet",
        "densenet121",
        "inception_v4",
    ] {
        let graph = lcmm::graph::zoo::by_name(name).expect("model exists");
        let schedule = Schedule::minimizing_liveness(&graph);
        assert!(schedule.is_valid_for(&graph), "{name}");
    }
}

#[test]
fn future_work_strategy_improves_density() {
    let graph = lcmm::graph::zoo::resnet50();
    let device = Device::vu9p();
    let plain = tgpa_like(&graph, &device, Precision::Fix16);
    let combined = tgpa_plus_lcmm(&graph, &device, Precision::Fix16);
    assert!(combined.latency <= plain.latency);
    assert!(combined.perf_density() >= plain.perf_density());
}

#[test]
fn suite_report_aggregates() {
    // Smoke the machine-readable report on a single cheap record plus
    // the average helper.
    let device = Device::vu9p();
    let graph = lcmm::graph::zoo::alexnet();
    let rec = comparison_record(&graph, &device, Precision::Fix16);
    let suite = SuiteReport {
        records: vec![rec.clone(), rec],
    };
    assert!((suite.average_speedup() - suite.records[0].speedup).abs() < 1e-12);
}

#[test]
fn graph_exports_work_from_facade() {
    let graph = lcmm::graph::zoo::squeezenet();
    let dot = graph.to_dot();
    assert!(dot.contains("fire9/concat"));
    let json = graph.to_json().expect("serialises");
    let back = lcmm::graph::Graph::from_json(&json).expect("round trips");
    assert_eq!(back.total_macs(), graph.total_macs());
}

#[test]
fn width_scaling_shifts_machine_balance() {
    // The width-multiplier transform: conv MACs scale quadratically but
    // feature bytes only linearly, so narrower networks are more
    // feature-transfer bound and LCMM still wins at every width.
    use lcmm::graph::transform::scale_channels;
    let device = Device::vu9p();
    let full = lcmm::graph::zoo::googlenet();
    let half = scale_channels(&full, 1, 2).expect("valid");
    let (u_full, l_full) = compare(&full, &device, Precision::Fix16);
    let (u_half, l_half) = compare(&half, &device, Precision::Fix16);
    assert!(l_full.speedup_over(u_full.latency) > 1.0);
    assert!(l_half.speedup_over(u_half.latency) > 1.0);
    // Narrow network is strictly faster in absolute terms.
    assert!(u_half.latency < u_full.latency);
}

#[test]
fn calibration_is_reproducible_from_the_facade() {
    use lcmm::core::calibrate::fit_access_efficiency;
    let workloads = vec![(lcmm::graph::zoo::googlenet(), Precision::Fix16)];
    let device = Device::vu9p();
    let fit = fit_access_efficiency(&workloads, &device, 1.5, 0.05, 8);
    assert!(fit.access_efficiency > 0.05 && fit.access_efficiency < 1.0);
    assert!((fit.achieved_speedup - 1.5).abs() < 0.2, "{fit:?}");
}

#[test]
fn energy_accounting_spans_the_suite() {
    use lcmm::core::energy::{estimate, EnergyModel};
    let device = Device::vu9p();
    let model = EnergyModel::default();
    for graph in lcmm::graph::zoo::benchmark_suite() {
        let (umm, lcmm_r) = compare(&graph, &device, Precision::Fix16);
        let umm_eval = Evaluator::new(&graph, &umm.profile);
        let e_umm = estimate(&umm_eval, &umm.design, &Residency::new(), &model);
        let profile = lcmm_r.design.profile(&graph);
        let eval = Evaluator::new(&graph, &profile);
        let e_lcmm = estimate(&eval, &lcmm_r.design, &lcmm_r.residency, &model);
        assert!(
            e_lcmm.total_j() < e_umm.total_j(),
            "{}: energy must drop",
            graph.name()
        );
    }
}
