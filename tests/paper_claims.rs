//! The paper's headline claims, asserted end to end.
//!
//! Absolute milliseconds are model numbers, not testbed numbers, so
//! every assertion here is about *shape*: who wins, by roughly what
//! factor, and in which direction the trends run.

use lcmm::core::pipeline::compare;
use lcmm::core::strategies::{cloud_dnn_like, tgpa_like};
use lcmm::fpga::roofline::RooflineReport;
use lcmm::prelude::*;

/// §4.1 / Table 1: LCMM wins on every benchmark at every precision, and
/// the average speedup lands in the paper's neighbourhood (1.36x).
#[test]
fn average_speedup_in_paper_band() {
    let device = Device::vu9p();
    let mut speedups = Vec::new();
    for network in lcmm::graph::zoo::benchmark_suite() {
        for precision in Precision::ALL {
            let (umm, lcmm) = compare(&network, &device, precision);
            let s = lcmm.speedup_over(umm.latency);
            assert!(
                s >= 1.0,
                "{} {}: LCMM lost to UMM ({s:.3}x)",
                network.name(),
                precision
            );
            speedups.push(s);
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        (1.15..=1.60).contains(&avg),
        "average speedup {avg:.2}x outside the paper band around 1.36x"
    );
}

/// §4.1: ResNet-152 benefits more than GoogLeNet and Inception-v4 at
/// 8-bit ("the improvement of ResNet-152 is higher ... because the
/// network structure of ResNet is much simpler").
#[test]
fn resnet_gains_most_at_8bit() {
    let device = Device::vu9p();
    let mut by_name = std::collections::HashMap::new();
    for network in lcmm::graph::zoo::benchmark_suite() {
        let (umm, lcmm) = compare(&network, &device, Precision::Fix8);
        by_name.insert(network.name().to_string(), lcmm.speedup_over(umm.latency));
    }
    assert!(by_name["resnet152"] > by_name["googlenet"]);
    assert!(by_name["resnet152"] > by_name["inception_v4"]);
}

/// §4.1: the improvement rises from 8-bit to 16-bit, then drops at
/// 32-bit, on every benchmark.
#[test]
fn speedup_rises_then_falls_with_precision() {
    let device = Device::vu9p();
    for network in lcmm::graph::zoo::benchmark_suite() {
        let s: Vec<f64> = Precision::ALL
            .iter()
            .map(|&p| {
                let (umm, lcmm) = compare(&network, &device, p);
                lcmm.speedup_over(umm.latency)
            })
            .collect();
        assert!(
            s[1] > s[0],
            "{}: 16-bit ({:.2}) should beat 8-bit ({:.2})",
            network.name(),
            s[1],
            s[0]
        );
        assert!(
            s[2] < s[1],
            "{}: 32-bit ({:.2}) should fall below 16-bit ({:.2})",
            network.name(),
            s[2],
            s[1]
        );
    }
}

/// §2.2 / Fig. 2(a): a large fraction of Inception-v4's layers are
/// memory bound (the paper counts 58% at 8-bit), and many memory-bound
/// layers need several times the available bandwidth.
#[test]
fn inception_v4_memory_bound_fraction() {
    let network = lcmm::graph::zoo::inception_v4();
    let device = Device::vu9p();
    // The paper's Fig. 2(a) uses 8-bit; the observation must hold in the
    // 30-70% band for the motivation to stand.
    let design = AccelDesign::explore(&network, &device, Precision::Fix8);
    let roofline = RooflineReport::build(&network, &design);
    let frac = roofline.memory_bound_fraction();
    assert!(
        (0.30..=0.70).contains(&frac),
        "memory-bound fraction {frac:.2}"
    );
    // ">60% of them even need 70 GB/s": a majority of memory-bound
    // layers need well beyond one interface's theoretical bandwidth.
    let needing = roofline.fraction_needing_bandwidth(2.0 * roofline.interface_bandwidth);
    assert!(
        needing > 0.3,
        "only {needing:.2} need 2x interface bandwidth"
    );
}

/// Fig. 2(b): performance is non-monotone in SRAM spend, and the best
/// block-level point is beaten by tensor-level DNNK.
#[test]
fn design_space_non_monotone_and_dnnk_wins() {
    use lcmm::core::design_space::{inception_blocks, sweep};
    use lcmm::core::value::ValueTable;
    let network = lcmm::graph::zoo::googlenet();
    let device = Device::vu9p();
    let umm = UmmBaseline::build(&network, &device, Precision::Fix16);
    let evaluator = Evaluator::new(&network, &umm.profile);
    let values = ValueTable::build(&network, &umm.profile, Precision::Fix16);
    let space = sweep(&network, &evaluator, &values, &inception_blocks(&network));
    assert!(space.is_non_monotone());

    let budget = umm.design.tensor_sram_budget();
    let best_block = space
        .feasible(budget)
        .into_iter()
        .map(|p| p.latency)
        .fold(f64::INFINITY, f64::min);
    let lcmm = PlanRequest::new(&network, &device, Precision::Fix16)
        .with_design(umm.design.clone())
        .run()
        .expect("explored design is feasible");
    assert!(
        lcmm.latency <= best_block * 1.02,
        "DNNK ({:.4} ms) should at least match the best block-level point ({:.4} ms)",
        lcmm.latency * 1e3,
        best_block * 1e3
    );
}

/// Table 2: LCMM's SRAM utilisation is far above UMM's, and POL (the
/// share of memory-bound layers that benefit) is high.
#[test]
fn memory_utilisation_and_pol() {
    let device = Device::vu9p();
    for network in lcmm::graph::zoo::benchmark_suite() {
        let (umm, lcmm) = compare(&network, &device, Precision::Fix16);
        let umm_sram = umm.resources.sram_util(&device);
        let lcmm_sram = lcmm.resources.sram_util(&device);
        assert!(
            lcmm_sram > 1.5 * umm_sram,
            "{}: LCMM SRAM {lcmm_sram:.2} vs UMM {umm_sram:.2}",
            network.name()
        );
        assert!(
            lcmm.pol() > 0.5,
            "{}: POL {:.2} too low (paper reports 78-94%)",
            network.name(),
            lcmm.pol()
        );
    }
}

/// Table 3: LCMM outperforms both state-of-the-art strategy analogues
/// on their respective comparison networks.
#[test]
fn beats_state_of_the_art_analogues() {
    let device = Device::vu9p();

    let rn50 = lcmm::graph::zoo::resnet50();
    let cloud = cloud_dnn_like(&rn50, &device, Precision::Fix16);
    let (_, lcmm50) = compare(&rn50, &device, Precision::Fix16);
    let r_cloud = lcmm50.throughput_ops() / cloud.throughput_ops();
    assert!(
        (1.0..2.5).contains(&r_cloud),
        "vs cloud-dnn analogue: {r_cloud:.2}x (paper: 1.35x)"
    );

    let rn152 = lcmm::graph::zoo::resnet152();
    let tgpa = tgpa_like(&rn152, &device, Precision::Fix16);
    let (_, lcmm152) = compare(&rn152, &device, Precision::Fix16);
    let r_tgpa = lcmm152.throughput_ops() / tgpa.throughput_ops();
    assert!(
        (1.0..2.0).contains(&r_tgpa),
        "vs tgpa analogue: {r_tgpa:.2}x (paper: 1.12x)"
    );
}

/// Fig. 8: feature reuse and weight prefetching each win alone, and the
/// full combination dominates both everywhere it matters.
#[test]
fn ablations_compose() {
    let network = lcmm::graph::zoo::googlenet();
    let device = Device::vu9p();
    let umm = UmmBaseline::build(&network, &device, Precision::Fix16);
    let plan = |options: LcmmOptions| {
        PlanRequest::new(&network, &device, Precision::Fix16)
            .options(options)
            .with_design(umm.design.clone())
            .run()
            .expect("explored design is feasible")
    };
    let full = plan(LcmmOptions::default());
    let features = plan(LcmmOptions::feature_reuse_only());
    let weights = plan(LcmmOptions::weight_prefetch_only());

    assert!(
        features.latency < umm.latency,
        "feature reuse alone must help"
    );
    assert!(
        weights.latency < umm.latency,
        "weight prefetching alone must help"
    );
    assert!(full.latency <= features.latency + 1e-12);
    assert!(full.latency <= weights.latency + 1e-12);
}
