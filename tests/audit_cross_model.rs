//! Experiment A4: the differential audit as a cross-model property.
//!
//! Where `sim_vs_model.rs` samples the benchmark suite, this runs the
//! full audit — structural invariants, classified divergence bands and
//! the missing-plan probe — over every model in the zoo, and pins the
//! tight-agreement property: when the prefetch plan fully hides every
//! resident weight, the analytic model and the simulator must agree
//! closely, not just within the loose band.

use lcmm::core::pipeline::{compare, AllocatorKind};
use lcmm::core::ValueId;
use lcmm::prelude::*;
use lcmm::sim::audit::{audit_case, ToleranceBands};

#[test]
fn full_zoo_audits_clean_at_fix16() {
    let bands = ToleranceBands::default();
    for network in lcmm::graph::zoo::full_zoo() {
        let report = audit_case(&network, Precision::Fix16, AllocatorKind::Dnnk, &bands);
        assert!(report.passed(), "{}: {:?}", network.name(), report.findings);
        // The simulator only adds contention on top of the analytic
        // model's perfect-overlap assumption: steady state may not be
        // meaningfully faster than the model.
        for point in &report.points {
            assert!(
                point.simulated >= 0.95 * point.analytic,
                "{} {}: sim {} beat analytic {}",
                network.name(),
                point.label,
                point.simulated,
                point.analytic
            );
        }
    }
}

#[test]
fn allocator_sweep_audits_clean_on_the_suite() {
    let bands = ToleranceBands::default();
    for network in lcmm::graph::zoo::benchmark_suite() {
        for allocator in [
            AllocatorKind::Dnnk,
            AllocatorKind::DnnkIterative,
            AllocatorKind::Greedy,
        ] {
            let report = audit_case(&network, Precision::Fix16, allocator, &bands);
            assert!(
                report.passed(),
                "{} {allocator:?}: {:?}",
                network.name(),
                report.findings
            );
        }
    }
}

#[test]
fn fully_hidden_plans_agree_tightly() {
    // When every resident weight's prefetch is fully hidden (zero
    // exposure recorded, zero exposed seconds planned), the analytic
    // model has nothing left to approximate away except channel
    // queueing, so sim/analytic must sit in a much narrower band than
    // the audit's general ceiling.
    let device = Device::vu9p();
    let mut tight_cases = 0usize;
    for network in lcmm::graph::zoo::full_zoo() {
        let (_, lcmm) = compare(&network, &device, Precision::Fix16);
        let fully_hidden = lcmm.residency.iter().all(|v| match *v {
            ValueId::Weight(n) => {
                lcmm.residency.exposed_weight(n) == 0.0
                    && lcmm
                        .prefetch
                        .edge(*v)
                        .is_none_or(lcmm::core::prefetch::PrefetchEdge::fully_hidden)
            }
            ValueId::Feature(_) => true,
        });
        if !fully_hidden {
            continue;
        }
        tight_cases += 1;
        let analytic = lcmm.latency;
        let simulated = lcmm::sim::validate::simulate_lcmm(&network, &lcmm);
        let ratio = simulated / analytic;
        assert!(
            (0.98..1.2).contains(&ratio),
            "{}: fully-hidden plan but sim/analytic = {ratio:.3}",
            network.name()
        );
    }
    assert!(
        tight_cases >= 3,
        "only {tight_cases} fully-hidden zoo models — property under-exercised"
    );
}
