//! Property-based tests over randomly generated (but always valid)
//! computation graphs: the invariants that every pass of the stack must
//! preserve regardless of topology.

use lcmm::core::alloc::{dnnk, exhaustive, greedy, AllocProblem};
use lcmm::core::interference::{InterferenceGraph, VirtualBuffer};
use lcmm::core::liveness::{feature_lifespans, LiveInterval, Schedule};
use lcmm::core::prefetch::PrefetchPlan;
use lcmm::core::value::{ValueKind, ValueTable};
use lcmm::prelude::*;
use proptest::prelude::*;

/// One randomly chosen construction step.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Extend the chain with a conv (channels, kernel selector).
    Conv(u8, u8),
    /// Max-pool 2x2/2 if the spatial extent allows.
    Pool,
    /// Fork into two stride-1 convs and concat them.
    Fork(u8, u8),
    /// Residual: same-shape conv + eltwise add.
    Residual,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..48, 0u8..3).prop_map(|(c, k)| Step::Conv(c, k)),
        Just(Step::Pool),
        (1u8..24, 1u8..24).prop_map(|(a, b)| Step::Fork(a, b)),
        Just(Step::Residual),
    ]
}

fn kernel_of(sel: u8) -> (usize, usize) {
    match sel % 3 {
        0 => (1, 0),
        1 => (3, 1),
        _ => (5, 2),
    }
}

/// Builds a valid graph from a step list; invalid steps are skipped.
fn build_graph(steps: &[Step]) -> Graph {
    let mut b = GraphBuilder::new("random");
    let mut cur = b.input(FeatureShape::new(8, 16, 16)).expect("input");
    let mut idx = 0usize;
    for step in steps {
        idx += 1;
        let shape = b.shape(cur).expect("current node exists");
        match *step {
            Step::Conv(c, k) => {
                let (kernel, pad) = kernel_of(k);
                let p = ConvParams::square(c as usize, kernel, 1, pad);
                cur = b
                    .conv(format!("conv{idx}"), cur, p)
                    .expect("same-pad conv is valid");
            }
            Step::Pool => {
                if shape.height >= 4 {
                    cur = b
                        .max_pool(format!("pool{idx}"), cur, 2, 2, 0)
                        .expect("valid pool");
                }
            }
            Step::Fork(ca, cb) => {
                let pa = ConvParams::square(ca as usize, 3, 1, 1);
                let pb = ConvParams::pointwise(cb as usize);
                let left = b.conv(format!("fork{idx}l"), cur, pa).expect("valid");
                let right = b.conv(format!("fork{idx}r"), cur, pb).expect("valid");
                cur = b
                    .concat(format!("fork{idx}cat"), &[left, right])
                    .expect("same spatial");
            }
            Step::Residual => {
                let p = ConvParams::square(shape.channels, 3, 1, 1);
                let conv = b.conv(format!("res{idx}"), cur, p).expect("valid");
                cur = b
                    .eltwise_add(format!("res{idx}add"), &[cur, conv])
                    .expect("same shape");
            }
        }
    }
    b.finish(cur).expect("constructed graphs are acyclic")
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec(arb_step(), 1..14).prop_map(|steps| build_graph(&steps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Topological order respects every edge, covers every node.
    #[test]
    fn topo_order_is_valid(graph in arb_graph()) {
        let order = graph.topo_order();
        prop_assert_eq!(order.len(), graph.len());
        let mut pos = vec![usize::MAX; graph.len()];
        for (rank, id) in order.iter().enumerate() {
            pos[id.index()] = rank;
        }
        for node in graph.iter() {
            for &input in node.inputs() {
                prop_assert!(pos[input.index()] < pos[node.id().index()]);
            }
        }
    }

    /// Schedule positions are a bijection.
    #[test]
    fn schedule_is_bijective(graph in arb_graph()) {
        let schedule = Schedule::new(&graph);
        for rank in 0..schedule.len() {
            prop_assert_eq!(schedule.position(schedule.at(rank)), rank);
        }
    }

    /// Coloring never co-locates interfering values and never uses more
    /// bytes than not sharing at all.
    #[test]
    fn coloring_invariants(graph in arb_graph()) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let values = ValueTable::build(&graph, &profile, Precision::Fix16);
        let schedule = Schedule::new(&graph);
        let spans = feature_lifespans(&schedule, values.iter());
        let items: Vec<(lcmm::core::ValueId, u64, LiveInterval)> = values
            .iter()
            .filter(|v| v.id.kind() == ValueKind::Feature && v.allocatable)
            .map(|v| (v.id, v.bytes, spans[&v.id]))
            .collect();
        let no_sharing: u64 = items.iter().map(|(_, b, _)| *b).sum();
        let ig = InterferenceGraph::new(items);
        let buffers = ig.color();
        let shared: u64 = buffers.iter().map(|b| b.bytes).sum();
        prop_assert!(shared <= no_sharing);
        for buf in &buffers {
            for (i, &a) in buf.members.iter().enumerate() {
                for &b in &buf.members[i + 1..] {
                    prop_assert!(!ig.interferes(a, b), "{} and {} share a buffer", a, b);
                }
            }
        }
    }

    /// Adding residency never increases total latency (Eq. 1 is a max
    /// of non-negative terms; residency only removes terms).
    #[test]
    fn residency_is_monotone(graph in arb_graph(), picks in prop::collection::vec(any::<prop::sample::Index>(), 1..8)) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let evaluator = Evaluator::new(&graph, &profile);
        let values = ValueTable::build(&graph, &profile, Precision::Fix16);
        let all: Vec<_> = values.iter().filter(|v| v.allocatable).map(|v| v.id).collect();
        prop_assume!(!all.is_empty());
        let mut residency = Residency::new();
        let mut last = evaluator.total_latency(&residency);
        for pick in picks {
            residency.insert(*pick.get(&all));
            let now = evaluator.total_latency(&residency);
            prop_assert!(now <= last + 1e-12);
            last = now;
        }
    }

    /// DNNK always fits the budget and never loses to the empty
    /// allocation; on small instances it is close to exhaustive.
    #[test]
    fn allocators_are_sound(graph in arb_graph(), budget_mb in 1u64..24) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let evaluator = Evaluator::new(&graph, &profile);
        let values = ValueTable::build(&graph, &profile, Precision::Fix16);
        // Singleton buffers over all allocatable values, capped so the
        // exhaustive allocator stays feasible.
        let buffers: Vec<VirtualBuffer> = values
            .iter()
            .filter(|v| v.allocatable && v.bytes > 0)
            .take(12)
            .map(|v| VirtualBuffer { members: vec![v.id], bytes: v.bytes })
            .collect();
        prop_assume!(!buffers.is_empty());
        let budget = budget_mb << 20;
        let plan = PrefetchPlan::default();
        let problem = AllocProblem::new(&evaluator, &buffers, budget, &plan);

        let empty_latency = problem.latency_of(&vec![false; buffers.len()]);
        for allocate in [dnnk::allocate, greedy::allocate] {
            let out = allocate(&problem);
            prop_assert!(out.bytes <= budget);
            prop_assert!(out.latency <= empty_latency + 1e-12);
        }
        let exact = exhaustive::allocate(&problem);
        let dn = dnnk::allocate(&problem);
        prop_assert!(exact.latency <= dn.latency + 1e-12);
        let exact_gain = empty_latency - exact.latency;
        let dnnk_gain = empty_latency - dn.latency;
        prop_assert!(dnnk_gain >= 0.6 * exact_gain - 1e-12,
            "dnnk gain {} far below exact {}", dnnk_gain, exact_gain);
    }

    /// The simulator is never faster than the analytic model under UMM
    /// (it adds queueing, removes nothing).
    #[test]
    fn sim_at_least_analytic(graph in arb_graph()) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let sim = Simulator::new(&graph, &profile);
        let report = sim.run(&Residency::new(), &SimConfig::default());
        prop_assert!(report.total_latency >= profile.total_latency() - 1e-12);
    }

    /// The full pipeline never loses to UMM on any random graph.
    #[test]
    fn pipeline_never_loses(graph in arb_graph()) {
        let device = Device::vu9p();
        let umm = UmmBaseline::build(&graph, &device, Precision::Fix16);
        let lcmm = PlanRequest::new(&graph, &device, Precision::Fix16)
            .with_design(umm.design.clone())
            .run()
            .expect("explored design is feasible");
        // Note: the LCMM design is clocked lower (180 vs 190 MHz), so
        // "never loses" is a real statement about recovered transfers,
        // not an artefact. Compare against the UMM latency re-evaluated
        // at the LCMM clock to isolate the memory effect...
        let lcmm_profile = lcmm.design.profile(&graph);
        let umm_at_lcmm_clock: f64 = lcmm_profile.total_latency();
        prop_assert!(lcmm.latency <= umm_at_lcmm_clock + 1e-12);
    }
}
