//! Replays the minimised audit repro corpus under `checks/repros/`.
//!
//! Every file in the corpus was once a failing random graph that the
//! audit shrinker minimised; after the underlying divergence was
//! fixed, the spec stays behind as a permanent regression case. A
//! failure here means an old model-vs-simulator bug came back.

use lcmm::sim::audit::{load_corpus, ToleranceBands};
use std::path::Path;

#[test]
fn repro_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("checks/repros");
    let corpus = load_corpus(&dir).expect("repro corpus is readable");
    assert!(
        !corpus.is_empty(),
        "checks/repros/ must hold at least the seed corpus"
    );
    let bands = ToleranceBands::default();
    for spec in corpus {
        let report = spec.audit(&bands);
        assert!(
            report.passed(),
            "repro {} regressed: {:?}",
            spec.file_stem(),
            report.findings
        );
    }
}
