//! Property-based tests for the evaluation harness: parallel execution
//! must be invisible (bit-identical results at any worker count), the
//! pipeline must respect the SRAM budget under every allocator, and the
//! interval-indexed scaling paths must be byte-identical to their
//! pairwise reference implementations.

use lcmm::core::interference::InterferenceGraph;
use lcmm::core::liveness::{LiveInterval, Schedule};
use lcmm::core::pipeline::AllocatorKind;
use lcmm::core::Harness;
use lcmm::graph::NodeId;
use lcmm::prelude::*;
use proptest::prelude::*;

/// One randomly chosen construction step (same scheme as `props.rs`).
#[derive(Debug, Clone, Copy)]
enum Step {
    Conv(u8, u8),
    Pool,
    Fork(u8, u8),
    Residual,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..48, 0u8..3).prop_map(|(c, k)| Step::Conv(c, k)),
        Just(Step::Pool),
        (1u8..24, 1u8..24).prop_map(|(a, b)| Step::Fork(a, b)),
        Just(Step::Residual),
    ]
}

fn kernel_of(sel: u8) -> (usize, usize) {
    match sel % 3 {
        0 => (1, 0),
        1 => (3, 1),
        _ => (5, 2),
    }
}

fn build_graph(steps: &[Step]) -> Graph {
    let mut b = GraphBuilder::new("random");
    let mut cur = b.input(FeatureShape::new(8, 16, 16)).expect("input");
    let mut idx = 0usize;
    for step in steps {
        idx += 1;
        let shape = b.shape(cur).expect("current node exists");
        match *step {
            Step::Conv(c, k) => {
                let (kernel, pad) = kernel_of(k);
                let p = ConvParams::square(c as usize, kernel, 1, pad);
                cur = b
                    .conv(format!("conv{idx}"), cur, p)
                    .expect("same-pad conv is valid");
            }
            Step::Pool => {
                if shape.height >= 4 {
                    cur = b
                        .max_pool(format!("pool{idx}"), cur, 2, 2, 0)
                        .expect("valid pool");
                }
            }
            Step::Fork(ca, cb) => {
                let pa = ConvParams::square(ca as usize, 3, 1, 1);
                let pb = ConvParams::pointwise(cb as usize);
                let left = b.conv(format!("fork{idx}l"), cur, pa).expect("valid");
                let right = b.conv(format!("fork{idx}r"), cur, pb).expect("valid");
                cur = b
                    .concat(format!("fork{idx}cat"), &[left, right])
                    .expect("same spatial");
            }
            Step::Residual => {
                let p = ConvParams::square(shape.channels, 3, 1, 1);
                let conv = b.conv(format!("res{idx}"), cur, p).expect("valid");
                cur = b
                    .eltwise_add(format!("res{idx}add"), &[cur, conv])
                    .expect("same shape");
            }
        }
    }
    b.finish(cur).expect("constructed graphs are acyclic")
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec(arb_step(), 1..10).prop_map(|steps| build_graph(&steps))
}

/// A random interference instance: values with random sizes and
/// lifespans, plus random false edges (the splitting pass adds those at
/// arbitrary points, so the coloring must hold up under any set).
fn arb_interference() -> impl Strategy<Value = InterferenceGraph> {
    let value = (1u64..6, 0usize..40, 0usize..8);
    let values = prop::collection::vec(value, 1..40);
    // Index pairs over a fixed range, reduced mod the instance size —
    // the vendored proptest has no `prop_flat_map`.
    let pairs = prop::collection::vec((0usize..64, 0usize..64), 0..25);
    (values, pairs).prop_map(|(vals, pairs)| {
        let n = vals.len();
        let values: Vec<(ValueId, u64, LiveInterval)> = vals
            .iter()
            .enumerate()
            .map(|(i, &(size, start, len))| {
                // Mix both value kinds; ids are distinct by index.
                let id = if i % 3 == 0 {
                    ValueId::Weight(NodeId::new(i))
                } else {
                    ValueId::Feature(NodeId::new(i))
                };
                (id, size * 1024, LiveInterval::new(start, start + len))
            })
            .collect();
        let ids: Vec<ValueId> = values.iter().map(|v| v.0).collect();
        let mut g = InterferenceGraph::new(values);
        for (a, b) in pairs {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_false_edge(ids[a], ids[b]);
            }
        }
        g
    })
}

/// Every non-exhaustive allocator (exhaustive is exponential and only
/// for tiny instances).
const ALLOCATORS: [AllocatorKind; 3] = [
    AllocatorKind::Dnnk,
    AllocatorKind::DnnkIterative,
    AllocatorKind::Greedy,
];

fn allocated_bytes(lcmm: &lcmm::core::LcmmResult) -> u64 {
    lcmm.allocated_buffer_sizes().iter().sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A parallel harness and a serial harness produce bit-identical
    /// results on the same work grid: same latencies, same residency
    /// assignments, same buffer selections. Parallelism must be
    /// unobservable in the output.
    #[test]
    fn parallel_and_serial_harness_agree(graph in arb_graph()) {
        let device = Device::vu9p();
        let grid: Vec<(Precision, LcmmOptions)> = vec![
            (Precision::Fix8, LcmmOptions::default()),
            (Precision::Fix16, LcmmOptions::default()),
            (Precision::Fix16, LcmmOptions::feature_reuse_only()),
            (Precision::Fix16, LcmmOptions::weight_prefetch_only()),
        ];
        let serial = Harness::new(1);
        let parallel = Harness::new(4);
        let a = serial.par_map(&grid, |&(p, o)| serial.lcmm(&graph, &device, p, o));
        let b = parallel.par_map(&grid, |&(p, o)| parallel.lcmm(&graph, &device, p, o));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.latency, y.latency);
            prop_assert_eq!(&x.residency, &y.residency);
            prop_assert_eq!(&x.chosen, &y.chosen);
            prop_assert_eq!(x.split_iterations, y.split_iterations);
        }
        // The UMM side must agree too.
        let (sa, _) = serial.compare(&graph, &device, Precision::Fix16);
        let (pa, _) = parallel.compare(&graph, &device, Precision::Fix16);
        prop_assert_eq!(sa.latency, pa.latency);
    }

    /// Every allocator respects the design's tensor SRAM budget on
    /// random graphs: allocated buffer bytes never exceed it.
    #[test]
    fn allocators_respect_budget_on_random_graphs(graph in arb_graph()) {
        let device = Device::vu9p();
        let harness = Harness::new(2);
        for kind in ALLOCATORS {
            let options = LcmmOptions::default().with_allocator(kind);
            let lcmm = harness.lcmm(&graph, &device, Precision::Fix16, options);
            let total = allocated_bytes(&lcmm);
            prop_assert!(
                total <= lcmm.design.tensor_sram_budget(),
                "{:?}: allocated {} > budget {}",
                kind, total, lcmm.design.tensor_sram_budget()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both colorings are conflict-free on random instances with random
    /// false edges: no two members of one buffer may interfere, every
    /// value lands in exactly one buffer, and a buffer is exactly as
    /// large as its largest member.
    #[test]
    fn coloring_with_random_false_edges_is_conflict_free(g in arb_interference()) {
        for buffers in [g.color(), g.color_chaitin()] {
            let mut placed = 0usize;
            for buf in &buffers {
                prop_assert!(!buf.members.is_empty());
                let max = buf.members.iter()
                    .map(|&m| g.values().iter().find(|&&(id, _)| id == m).unwrap().1)
                    .max()
                    .unwrap();
                prop_assert_eq!(buf.bytes, max);
                placed += buf.members.len();
                for (i, &a) in buf.members.iter().enumerate() {
                    for &b in &buf.members[i + 1..] {
                        prop_assert!(
                            !g.interferes(a, b),
                            "{a} and {b} share a buffer but interfere"
                        );
                    }
                }
            }
            prop_assert_eq!(placed, g.values().len());
        }
    }

    /// The interval-indexed colorings agree byte-for-byte with the
    /// pairwise reference implementations on random instances — same
    /// buffers, same member order.
    #[test]
    fn fast_coloring_matches_pairwise_reference(g in arb_interference()) {
        prop_assert_eq!(g.color(), g.color_reference());
        prop_assert_eq!(g.color_chaitin(), g.color_chaitin_reference());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The heap-based liveness-minimising scheduler visits nodes in
    /// exactly the order of the reference rescan on random graphs.
    #[test]
    fn heap_scheduler_matches_reference_on_random_graphs(graph in arb_graph()) {
        for precision in [Precision::Fix8, Precision::Fix16, Precision::Float32] {
            let fast = Schedule::minimizing_liveness_for(&graph, precision);
            let slow = Schedule::minimizing_liveness_reference(&graph, precision);
            prop_assert_eq!(fast.len(), slow.len());
            prop_assert!(
                (0..fast.len()).all(|i| fast.at(i) == slow.at(i)),
                "diverged at {:?}", precision
            );
        }
    }
}

/// Every allocator respects the budget across the benchmark zoo — the
/// graphs the paper actually reports on, not just random ones.
#[test]
fn allocators_respect_budget_across_zoo() {
    let device = Device::vu9p();
    let harness = Harness::new(2);
    for graph in lcmm::graph::zoo::benchmark_suite() {
        for kind in ALLOCATORS {
            let options = LcmmOptions::default().with_allocator(kind);
            let lcmm = harness.lcmm(&graph, &device, Precision::Fix16, options);
            let total = allocated_bytes(&lcmm);
            assert!(
                total <= lcmm.design.tensor_sram_budget(),
                "{} {:?}: allocated {} > budget {}",
                graph.name(),
                kind,
                total,
                lcmm.design.tensor_sram_budget()
            );
        }
    }
}
