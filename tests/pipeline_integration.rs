//! Cross-crate integration: the full pipeline on every zoo model, with
//! structural invariants checked on the outputs.

use lcmm::core::liveness::{feature_lifespans, Schedule};
use lcmm::core::pipeline::compare;
use lcmm::core::value::{ValueKind, ValueTable};
use lcmm::prelude::*;

fn all_models() -> Vec<Graph> {
    vec![
        lcmm::graph::zoo::alexnet(),
        lcmm::graph::zoo::vgg16(),
        lcmm::graph::zoo::resnet50(),
        lcmm::graph::zoo::googlenet(),
        lcmm::graph::zoo::inception_v4(),
    ]
}

#[test]
fn pipeline_runs_on_every_model() {
    let device = Device::vu9p();
    for network in all_models() {
        let (umm, lcmm) = compare(&network, &device, Precision::Fix16);
        assert!(lcmm.latency > 0.0);
        assert!(
            lcmm.latency <= umm.latency + 1e-12,
            "{}: LCMM worse than UMM",
            network.name()
        );
    }
}

#[test]
fn residency_only_contains_allocatable_values() {
    let device = Device::vu9p();
    for network in [lcmm::graph::zoo::googlenet(), lcmm::graph::zoo::resnet50()] {
        let (umm, lcmm) = compare(&network, &device, Precision::Fix16);
        let values = ValueTable::build(&network, &umm.profile, Precision::Fix16);
        for &v in lcmm.residency.iter() {
            let tv = values.get(v).expect("resident value exists in table");
            assert!(tv.allocatable, "{}: {v} is not allocatable", network.name());
        }
    }
}

#[test]
fn chosen_buffers_fit_budget_and_members_do_not_interfere() {
    let device = Device::vu9p();
    let network = lcmm::graph::zoo::inception_v4();
    let (umm, lcmm) = compare(&network, &device, Precision::Fix16);

    // Budget.
    let total: u64 = lcmm.allocated_buffer_sizes().iter().sum();
    assert!(total <= lcmm.design.tensor_sram_budget());

    // Feature members of one buffer must have disjoint lifespans.
    let values = ValueTable::build(&network, &umm.profile, Precision::Fix16);
    let schedule = Schedule::new(&network);
    let spans = feature_lifespans(&schedule, values.iter());
    for (buf, &chosen) in lcmm.buffers.iter().zip(&lcmm.chosen) {
        if !chosen {
            continue;
        }
        let feats: Vec<_> = buf
            .members
            .iter()
            .filter(|m| m.kind() == ValueKind::Feature)
            .collect();
        for (i, &&a) in feats.iter().enumerate() {
            for &&b in &feats[i + 1..] {
                assert!(
                    !spans[&a].overlaps(&spans[&b]),
                    "buffer shares overlapping features {a} and {b}"
                );
            }
        }
        // Buffer size covers every member.
        for &m in &buf.members {
            assert!(values.get(m).expect("member exists").bytes <= buf.bytes);
        }
    }
}

#[test]
fn weight_shares_follow_prefetch_spans() {
    let device = Device::vu9p();
    let network = lcmm::graph::zoo::resnet152();
    let (_, lcmm) = compare(&network, &device, Precision::Fix16);
    for (buf, &chosen) in lcmm.buffers.iter().zip(&lcmm.chosen) {
        if !chosen {
            continue;
        }
        let weights: Vec<_> = buf
            .members
            .iter()
            .filter(|m| m.kind() == ValueKind::Weight)
            .collect();
        for (i, &&a) in weights.iter().enumerate() {
            for &&b in &weights[i + 1..] {
                let ea = lcmm.prefetch.edge(a).expect("resident weight has an edge");
                let eb = lcmm.prefetch.edge(b).expect("resident weight has an edge");
                assert!(
                    !ea.interval().overlaps(&eb.interval()),
                    "shared weight buffer with overlapping prefetch spans: {a} {b}"
                );
            }
        }
    }
}

#[test]
fn linear_networks_also_benefit() {
    // AlexNet/VGG have the classic FC weight wall; LCMM should at least
    // recover some of it even though the paper targets branchy nets.
    let device = Device::vu9p();
    for network in [lcmm::graph::zoo::alexnet(), lcmm::graph::zoo::vgg16()] {
        let (umm, lcmm) = compare(&network, &device, Precision::Fix16);
        assert!(
            lcmm.latency < umm.latency,
            "{}: no benefit on a linear network",
            network.name()
        );
    }
}

#[test]
fn results_are_deterministic() {
    let device = Device::vu9p();
    let network = lcmm::graph::zoo::googlenet();
    let (_, a) = compare(&network, &device, Precision::Fix16);
    let (_, b) = compare(&network, &device, Precision::Fix16);
    assert_eq!(
        a.latency.to_bits(),
        b.latency.to_bits(),
        "nondeterministic pipeline"
    );
    assert_eq!(a.chosen, b.chosen);
}

#[test]
fn facade_prelude_compiles_and_works() {
    // Exercise the re-exports end to end at a smaller scale.
    let mut b = GraphBuilder::new("prelude_net");
    let x = b.input(FeatureShape::new(8, 16, 16)).expect("input");
    let c = b
        .conv("c", x, ConvParams::square(16, 3, 1, 1))
        .expect("valid");
    let network = b.finish(c).expect("valid");
    let design = AccelDesign::explore(&network, &Device::vu9p(), Precision::Fix8);
    let profile = design.profile(&network);
    let sim = Simulator::new(&network, &profile);
    let report = sim.run(&Residency::new(), &SimConfig::default());
    assert!(report.total_latency > 0.0);
}
