//! Offline stand-in for `serde` (+ the JSON text layer used by the
//! vendored `serde_json` facade).
//!
//! The build environment has no access to crates.io, so this crate
//! replaces the real serde with a deliberately small model: values
//! serialize into a [`Content`] tree and deserialize back out of one.
//! The surface covers exactly what this workspace uses — derived
//! structs/enums, the std containers, and JSON text in/out.
//!
//! Two properties matter to the rest of the workspace:
//!
//! * **Determinism.** `HashMap`/`HashSet` serialization sorts entries,
//!   so equal values always produce byte-identical JSON. The harness
//!   relies on this both for memo-cache fingerprints and for the
//!   byte-identical serial-vs-parallel report guarantee.
//! * **Lossless floats.** Finite non-integral floats use Rust's
//!   shortest-roundtrip `Display`; integral floats print with a
//!   trailing `.0` (like serde_json), so JSON round-trips preserve
//!   `f64` bit patterns.

pub use serde_derive::{Deserialize, Serialize};

pub mod content;

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash};

/// The serialized form of any value: a JSON-shaped tree.
///
/// Maps preserve entry order as written; producers that want
/// deterministic output (all the impls in this crate) sort first.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Serialization error (also used by the `serde_json` facade).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can turn itself into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = match c {
                    Content::U64(n) => *n,
                    Content::I64(n) if *n >= 0 => *n as u64,
                    Content::F64(x) if *x >= 0.0 && x.fract() == 0.0 => *x as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = match c {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    Content::F64(x) if x.fract() == 0.0 => *x as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(x) => Ok(*x),
            Content::U64(n) => Ok(*n as f64),
            Content::I64(n) => Ok(*n as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for &'static str {
    /// Leaks the decoded string. Real serde borrows from the input;
    /// this model owns its `Content` tree, so `'static` is only
    /// reachable by leaking. Used for embedded reference tables
    /// (`&'static str` fields) in round-trip tests — bounded data.
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) if items.len() == N => {
                let decoded: Vec<T> = items
                    .iter()
                    .map(T::from_content)
                    .collect::<Result<_, _>>()?;
                decoded
                    .try_into()
                    .map_err(|_| Error::custom("array length mismatch"))
            }
            other => Err(Error::custom(format!(
                "expected array of length {N}, got {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (content::key_string(&k.to_content()), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((content::key_value::<K>(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by_key(content::write_compact);
        Content::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

static NULL: Content = Content::Null;

/// `serde_json::Value`-style accessors, so the facade can re-export
/// `Content` as `Value` directly.
impl Content {
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(n) => Some(*n),
            Content::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(n) => Some(*n),
            Content::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::U64(n) => Some(*n as f64),
            Content::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

impl std::fmt::Display for Content {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&content::write_compact(self))
    }
}
