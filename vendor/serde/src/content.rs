//! JSON text layer and decode helpers for the [`Content`] tree.
//!
//! Lives in `serde` (rather than the `serde_json` facade) because map
//! keys serialize through the same stringification as whole documents,
//! and the derive macros call the `as_map`/`decode_field` helpers.

use crate::{Content, Deserialize, Error};

/// Stringifies a content value for use as a JSON object key.
///
/// Plain strings and integers keep their natural form; anything
/// structured (e.g. a newtype-variant enum key) becomes its compact
/// JSON encoding, which [`key_value`] knows to parse back.
pub fn key_string(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        Content::U64(n) => n.to_string(),
        Content::I64(n) => n.to_string(),
        Content::Bool(b) => b.to_string(),
        other => write_compact(other),
    }
}

/// Rebuilds a map key from its string form: first as a bare string
/// (covers string-like and unit-enum keys), then as embedded JSON
/// (covers integer and structured keys).
pub fn key_value<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_content(&Content::Str(key.to_string())) {
        return Ok(k);
    }
    let parsed =
        parse(key).map_err(|e| Error::custom(format!("unparseable map key {key:?}: {e}")))?;
    K::from_content(&parsed)
}

/// Expects `c` to be a map; used by derived `Deserialize` impls.
pub fn as_map<'a>(c: &'a Content, ty: &str) -> Result<&'a [(String, Content)], Error> {
    match c {
        Content::Map(entries) => Ok(entries),
        other => Err(Error::custom(format!(
            "expected {ty} object, got {other:?}"
        ))),
    }
}

/// Decodes a required struct field; a missing key is an error.
pub fn decode_field<T: Deserialize>(
    fields: &[(String, Content)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| Error::custom(format!("field {ty}.{name}: {e}")))
        }
        None => Err(Error::custom(format!("missing field {ty}.{name}"))),
    }
}

/// Decodes an `Option` struct field; a missing key reads as `null`.
pub fn decode_field_or_null<T: Deserialize>(
    fields: &[(String, Content)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| Error::custom(format!("field {ty}.{name}: {e}")))
        }
        None => T::from_content(&Content::Null),
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Formats an `f64` the way serde_json does: shortest round-trip form,
/// with a `.0` suffix on finite integral values so they read back as
/// floats. Non-finite values have no JSON form and print as `null`.
fn write_f64(out: &mut String, x: f64) {
    use std::fmt::Write;
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e16 {
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact (no whitespace) JSON encoding.
pub fn write_compact(c: &Content) -> String {
    let mut out = String::new();
    write_compact_into(&mut out, c);
    out
}

fn write_compact_into(out: &mut String, c: &Content) {
    use std::fmt::Write;
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact_into(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact_into(out, v);
            }
            out.push('}');
        }
    }
}

/// Pretty JSON encoding with two-space indentation (serde_json style).
pub fn write_pretty(c: &Content) -> String {
    let mut out = String::new();
    write_pretty_into(&mut out, c, 0);
    out
}

fn write_pretty_into(out: &mut String, c: &Content, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty_into(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty_into(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        leaf => write_compact_into(out, leaf),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Recursive-descent JSON parser into a [`Content`] tree.
pub fn parse(text: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xd800) << 10)
                                    + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                ch.ok_or_else(|| Error::custom("invalid \\u escape".to_string()))?,
                            );
                            // hex4 leaves pos after the digits; continue
                            // without the shared += 1 below.
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8".to_string()))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::custom("unterminated string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape".to_string()));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape".to_string()))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| Error::custom("invalid \\u escape".to_string()))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number".to_string()))?;
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Content::I64)
                .or_else(|| text.parse::<f64>().ok().map(Content::F64))
                .ok_or_else(|| Error::custom(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = Content::Map(vec![
            ("a".to_string(), Content::U64(3)),
            ("b".to_string(), Content::F64(0.1)),
            ("c".to_string(), Content::F64(2.0)),
            (
                "d".to_string(),
                Content::Seq(vec![Content::Null, Content::Bool(true)]),
            ),
            ("e".to_string(), Content::Str("x\"\\\n".to_string())),
            ("f".to_string(), Content::I64(-7)),
        ]);
        let compact = write_compact(&doc);
        assert_eq!(
            compact,
            "{\"a\":3,\"b\":0.1,\"c\":2.0,\"d\":[null,true],\"e\":\"x\\\"\\\\\\n\",\"f\":-7}"
        );
        assert_eq!(parse(&compact).unwrap(), doc);
        assert_eq!(parse(&write_pretty(&doc)).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_losslessly() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, 1e20, -0.0, 5.0] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }
}
