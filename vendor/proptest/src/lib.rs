//! Offline stand-in for `proptest`.
//!
//! The build environment cannot fetch crates.io, so this crate provides
//! the subset of the proptest API the workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!`, `Strategy` with `prop_map`, `Just`, `any`, integer and
//! float range strategies, tuple strategies, `collection::vec`, and
//! `sample::Index`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the assertion message and
//!   panics immediately.
//! * **Deterministic seeding.** The RNG is seeded from the test's name,
//!   so runs are reproducible without a persistence file.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
    }

    /// Deterministic splitmix64 generator, seeded per test from an FNV
    /// hash of the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish draw in `0..n` (`n > 0`); modulo bias is fine
        /// for test-case generation.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            self.next_u64() % n
        }

        /// Uniform-ish draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_oneof!`: picks one of several same-valued strategies.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        pub fn arm<S>(strategy: S) -> Box<dyn Strategy<Value = V>>
        where
            S: Strategy<Value = V> + 'static,
        {
            Box::new(strategy)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((self.start as i128) + off) as $ty
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((lo as i128) + off) as $ty
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes —
            // enough variety for property tests without NaN plumbing.
            let mag = rng.unit_f64() * 1e6;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Yields vectors whose length falls in `size`, each element drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A random index usable against any slice (taken modulo its
    /// length), mirroring `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }

        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases {
                    assert!(
                        attempts < max_attempts,
                        "proptest {}: too many rejected cases ({passed}/{} passed \
                         after {attempts} attempts)",
                        stringify!($name),
                        config.cases,
                    );
                    attempts += 1;
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed (case {}): {}",
                                stringify!($name),
                                passed + 1,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    lhs,
                    rhs
                )),
            );
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    lhs,
                    rhs
                )),
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    lhs
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}
