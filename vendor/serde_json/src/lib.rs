//! Offline stand-in for `serde_json`: a thin facade over the JSON text
//! layer that lives in the vendored `serde` crate (`serde::content`).
//!
//! `Value` is a re-export of `serde::Content`, which carries the
//! `serde_json::Value`-style accessors (`as_array`, `as_f64`,
//! indexing by `&str`/`usize`, comparison with `&str`).

pub use serde::Content as Value;
pub use serde::Error;

use serde::{content, Deserialize, Serialize};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(content::write_compact(&value.to_content()))
}

/// Serializes `value` as pretty JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(content::write_pretty(&value.to_content()))
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_content(&content::parse(text)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8 in JSON input"))?;
    from_str(text)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Rebuilds a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_content(value)
}
