//! Offline stand-in for `serde_derive`.
//!
//! This workspace vendors a minimal `serde` (see `crates/compat/serde`)
//! because the build environment has no network access to crates.io.
//! The derive macros here cover exactly the shapes the workspace uses:
//!
//! * non-generic structs with named fields,
//! * newtype (single-field tuple) structs,
//! * non-generic enums whose variants are unit or newtype.
//!
//! Anything else (generics, struct variants, multi-field tuples) panics
//! at macro-expansion time with a clear message, so an unsupported shape
//! fails the build loudly instead of serialising wrongly.
//!
//! The macros are hand-rolled over `proc_macro::TokenStream` — no `syn`
//! or `quote`, since those cannot be fetched either.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of a struct.
struct Field {
    name: String,
    /// Whether the declared type's leading ident is `Option` — those
    /// fields tolerate a missing key on deserialisation (serde's
    /// behaviour for `Option` fields).
    is_option: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    /// `true` for `Variant(Inner)`, `false` for a unit variant.
    newtype: bool,
}

/// The supported shapes of a derive input.
enum Shape {
    Named(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize` (the vendored simplified trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics, shape) = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_content(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Newtype => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    if v.newtype {
                        format!(
                            "{name}::{v}(inner) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Serialize::to_content(inner))]),",
                            name = name,
                            v = v.name
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Content::Str(::std::string::String::from(\"{v}\")),",
                            name = name,
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl{generics} ::serde::Serialize for {name}{generics} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored simplified trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics, shape) = parse_input(input);
    assert!(
        generics.is_empty(),
        "serde_derive: cannot derive Deserialize for generic type {name}{generics}: \
         the vendored serde owns its Content tree, so borrowed fields cannot be produced"
    );
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let getter = if f.is_option {
                        "decode_field_or_null"
                    } else {
                        "decode_field"
                    };
                    format!(
                        "{0}: ::serde::content::{getter}(fields, \"{0}\", \"{name}\")?,",
                        f.name
                    )
                })
                .collect();
            format!(
                "let fields = ::serde::content::as_map(c, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(value)?)),",
                        v = v.name
                    )
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                    format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, value) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {newtypes}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                    format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                    format!(\"expected variant of {name}\"))),\n\
                 }}",
                units = unit_arms.join("\n"),
                newtypes = newtype_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

/// Parses the derive input down to `(type name, generics, shape)`.
///
/// `generics` is either empty or a lifetime-only parameter list like
/// `<'a>` (type parameters are rejected — the generated impls have no
/// way to add `Serialize` bounds without a real parser).
fn parse_input(input: TokenStream) -> (String, String, Shape) {
    let mut iter = input.into_iter().peekable();
    let kind: String;
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // An attribute (including doc comments): swallow `[...]`.
                match iter.next() {
                    Some(TokenTree::Group(_)) => {}
                    t => panic!("serde_derive: malformed attribute near {t:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                kind = id.to_string();
                break;
            }
            t => panic!("serde_derive: unsupported item near {t:?}"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(n)) => n.to_string(),
        t => panic!("serde_derive: expected type name, found {t:?}"),
    };
    let mut generics = String::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1i32;
        let mut params = String::new();
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            params.push_str(&tt.to_string());
        }
        for param in params.split(',') {
            assert!(
                param.trim_start().starts_with('\''),
                "serde_derive: type {name} has non-lifetime generic parameter \
                 {param:?}, which is not supported"
            );
        }
        generics = format!("<{params}>");
    }
    let shape = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Named(parse_named_fields(g.stream(), &name))
            } else {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "serde_derive: bad input for {name}");
            let fields = count_tuple_fields(g.stream());
            assert_eq!(
                fields, 1,
                "serde_derive: tuple struct {name} must be a newtype (1 field), has {fields}"
            );
            Shape::Newtype
        }
        t => panic!("serde_derive: unsupported body for {name}: {t:?}"),
    };
    (name, generics, shape)
}

/// Parses `name: Type, ...` named fields, skipping attributes and
/// visibility, tracking `<...>` depth so generic commas don't split.
fn parse_named_fields(ts: TokenStream, owner: &str) -> Vec<Field> {
    let mut out = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut iter, owner);
        skip_visibility(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(fname) = tt else {
            panic!("serde_derive: expected field name in {owner}, found {tt:?}")
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => panic!("serde_derive: expected ':' after {owner}.{fname}, found {t:?}"),
        }
        let mut depth = 0i32;
        let mut first_ty_ident: Option<String> = None;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Ident(id) if first_ty_ident.is_none() => {
                    first_ty_ident = Some(id.to_string());
                }
                _ => {}
            }
        }
        out.push(Field {
            name: fname.to_string(),
            is_option: first_ty_ident.as_deref() == Some("Option"),
        });
    }
    out
}

/// Parses enum variants; only unit and single-field tuple variants are
/// supported.
fn parse_variants(ts: TokenStream, owner: &str) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut iter, owner);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(vname) = tt else {
            panic!("serde_derive: expected variant name in {owner}, found {tt:?}")
        };
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = iter.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let fields = count_tuple_fields(g.stream());
                    assert_eq!(
                        fields, 1,
                        "serde_derive: variant {owner}::{vname} must carry exactly one field"
                    );
                    newtype = true;
                    iter.next();
                }
                Delimiter::Brace => {
                    panic!("serde_derive: struct variant {owner}::{vname} is not supported")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        out.push(Variant {
            name: vname.to_string(),
            newtype,
        });
    }
    out
}

/// Counts top-level comma-separated fields inside a paren group.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in ts {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

fn skip_attributes(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    owner: &str,
) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(_)) => {}
            t => panic!("serde_derive: malformed attribute in {owner} near {t:?}"),
        }
    }
}

fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                iter.next();
            }
        }
    }
}
