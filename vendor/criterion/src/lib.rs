//! Offline stand-in for `criterion`.
//!
//! The build environment cannot fetch crates.io, so this crate keeps
//! the benches compiling and producing useful wall-clock numbers. It
//! honours `sample_size`, `warm_up_time` and `measurement_time`, runs
//! the closure repeatedly, and prints mean/min/max per benchmark —
//! no statistical analysis, outlier detection, or plotting.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; construct with [`Criterion::default`] and the
/// builder methods.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// No-op: this stand-in never plots.
    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// No-op: per-benchmark lines were already printed as they ran.
    pub fn final_summary(&mut self) {}
}

/// A named set of related benchmarks (`group/…` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let (sample_size, warm_up, measurement) = (
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
        );
        run_one(&full, sample_size, warm_up, measurement, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` samples, or until the measurement
        // window is exhausted (at least one sample either way).
        let measure_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn run_one<F>(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples: closure never called Bencher::iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{id:<50} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}
