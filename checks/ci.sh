#!/usr/bin/env bash
# Repo CI gate. Run from the repo root:
#
#   ./checks/ci.sh                  # format + lints + tier-1 build/test + gates
#   ./checks/ci.sh --quick          # skip the release build (debug test only)
#   ./checks/ci.sh --write-budgets  # full run, then refresh checks/pass_budgets.json
#
# Everything runs offline against the vendored crates; no network.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=false
write_budgets=false
[[ "${1:-}" == "--quick" ]] && quick=true
[[ "${1:-}" == "--write-budgets" ]] && write_budgets=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

if $quick; then
  echo "==> cargo test (debug)"
  cargo test --offline --workspace -q
else
  echo "==> tier-1: cargo build --release && cargo test -q"
  cargo build --offline --release
  cargo test --offline -q
fi

echo "==> determinism: report output must be byte-identical across --jobs"
bin=target/debug/lcmm
[[ -x "$bin" ]] || cargo build --offline -p lcmm-cli
for cmd in summary table1 fig8; do
  "$bin" "$cmd" --jobs 1 >/tmp/ci_j1.out 2>/dev/null
  "$bin" "$cmd" --jobs 4 >/tmp/ci_j4.out 2>/dev/null
  if ! cmp -s /tmp/ci_j1.out /tmp/ci_j4.out; then
    echo "FAIL: '$cmd' output differs between --jobs 1 and --jobs 4" >&2
    exit 1
  fi
done

echo "==> differential audit: grid + repro corpus + 8 random seeds"
"$bin" audit --seeds 8 --json >/tmp/ci_audit.out 2>/dev/null

if ! $quick; then
  # Pass-budget gate: the pipeline's per-pass wall clock on a
  # thousand-node synthetic graph must stay inside
  # checks/pass_budgets.json (see docs/PERF.md). Budgets are refreshed
  # with --write-budgets after a deliberate performance change.
  mode="--check"
  $write_budgets && mode="--write-budgets"
  echo "==> pass budgets (scaling_passes $mode)"
  cargo bench --offline -p lcmm-bench --bench scaling_passes -- "$mode"
fi

echo "CI green."
