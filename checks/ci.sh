#!/usr/bin/env bash
# Repo CI gate. Run from the repo root:
#
#   ./checks/ci.sh                  # format + lints + tier-1 build/test + gates
#   ./checks/ci.sh --quick          # skip the release build (debug test only)
#   ./checks/ci.sh --write-budgets  # full run, then refresh checks/{pass,delta}_budgets.json
#
# Everything runs offline against the vendored crates; no network.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=false
write_budgets=false
[[ "${1:-}" == "--quick" ]] && quick=true
[[ "${1:-}" == "--write-budgets" ]] && write_budgets=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny broken intra-doc links)"
# First-party crates only: the vendored stand-ins are out of scope.
RUSTDOCFLAGS="-D rustdoc::broken-intra-doc-links" cargo doc --offline --no-deps -q \
  -p lcmm -p lcmm-graph -p lcmm-fpga -p lcmm-core -p lcmm-sim -p lcmm-multi -p lcmm-workload \
  -p lcmm-serve

if $quick; then
  echo "==> cargo test (debug)"
  cargo test --offline --workspace -q
else
  echo "==> tier-1: cargo build --release && cargo test -q"
  cargo build --offline --release
  cargo test --offline -q
fi

echo "==> determinism: report output must be byte-identical across --jobs"
bin=target/debug/lcmm
[[ -x "$bin" ]] || cargo build --offline -p lcmm-cli
for cmd in summary table1 fig8; do
  "$bin" "$cmd" --jobs 1 >/tmp/ci_j1.out 2>/dev/null
  "$bin" "$cmd" --jobs 4 >/tmp/ci_j4.out 2>/dev/null
  if ! cmp -s /tmp/ci_j1.out /tmp/ci_j4.out; then
    echo "FAIL: '$cmd' output differs between --jobs 1 and --jobs 4" >&2
    exit 1
  fi
done

echo "==> differential audit: grid + repro corpus + 8 random seeds + tiny-SRAM streaming + fused plans"
"$bin" audit --seeds 8 --tiny-sram 4 --fusion 2 --json >/tmp/ci_audit.out 2>/dev/null

# AutoWS gate: the budget-sweep study at two skewed (tiny) budgets must
# be byte-identical across --jobs and match its goldens — one
# weight-heavy model where streaming wins (alexnet) and one that fits
# on chip where streaming must change nothing (squeezenet). See
# docs/STREAMING.md.
echo "==> sweep-budgets: skewed budgets vs checks/golden across --jobs"
sweep_i=0
for model in alexnet squeezenet; do
  sweep_i=$((sweep_i + 1))
  sweep_args=(sweep-budgets --model "$model" --fractions 1/16,1/8 --json)
  "$bin" "${sweep_args[@]}" --jobs 1 >/tmp/ci_sweep_j1.json 2>/dev/null
  "$bin" "${sweep_args[@]}" --jobs 4 >/tmp/ci_sweep_j4.json 2>/dev/null
  if ! cmp -s /tmp/ci_sweep_j1.json /tmp/ci_sweep_j4.json; then
    echo "FAIL: 'sweep-budgets --model $model' differs between --jobs 1 and --jobs 4" >&2
    exit 1
  fi
  if ! cmp -s /tmp/ci_sweep_j1.json "checks/golden/sweep_budgets_$sweep_i.json"; then
    echo "FAIL: sweep-budgets ($model) differs from checks/golden/sweep_budgets_$sweep_i.json" >&2
    diff "checks/golden/sweep_budgets_$sweep_i.json" /tmp/ci_sweep_j1.json >&2 || true
    exit 1
  fi
done

# Fusion gate: the fused-layer study on the shortcut-heavy zoo models
# at a 1/8× budget must be byte-identical across --jobs and match its
# golden — the golden locks in cells where fusion strictly reduces both
# latency and transfer time (see docs/FUSION.md).
echo "==> sweep-fusion: 1/8x budget vs checks/golden/fusion_1.json across --jobs"
for jobs in 1 4; do
  {
    "$bin" sweep-fusion --model resnet50 --fractions 1/8 --json --jobs "$jobs"
    "$bin" sweep-fusion --model mobilenet --fractions 1/8 --json --jobs "$jobs"
  } >"/tmp/ci_fusion_j$jobs.json" 2>/dev/null
done
if ! cmp -s /tmp/ci_fusion_j1.json /tmp/ci_fusion_j4.json; then
  echo "FAIL: 'sweep-fusion' output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
if ! cmp -s /tmp/ci_fusion_j1.json checks/golden/fusion_1.json; then
  echo "FAIL: sweep-fusion differs from checks/golden/fusion_1.json" >&2
  diff checks/golden/fusion_1.json /tmp/ci_fusion_j1.json >&2 || true
  exit 1
fi

# Multi-tenant smoke gate: co-plan two zoo networks through the split
# search, require byte-identical output across --jobs, and diff the
# summary against its golden (deterministic by design — docs/MULTI.md).
echo "==> multi smoke: co-plan vs checks/golden/multi_1.json"
multi_args=(--models mobilenet,alexnet --steps 4 --json)
"$bin" multi "${multi_args[@]}" --jobs 1 >/tmp/ci_multi_j1.json 2>/dev/null
"$bin" multi "${multi_args[@]}" --jobs 4 >/tmp/ci_multi_j4.json 2>/dev/null
if ! cmp -s /tmp/ci_multi_j1.json /tmp/ci_multi_j4.json; then
  echo "FAIL: 'multi' output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
if ! cmp -s /tmp/ci_multi_j1.json checks/golden/multi_1.json; then
  echo "FAIL: co-plan summary differs from checks/golden/multi_1.json" >&2
  diff checks/golden/multi_1.json /tmp/ci_multi_j1.json >&2 || true
  exit 1
fi

# Workload smoke gate: the trace-driven traffic simulation on the
# builtin anti-phase bursty2 trace must be byte-identical across
# --jobs, match its golden, and show the adaptive controller strictly
# beating the best static share (see docs/WORKLOAD.md).
echo "==> workload smoke: bursty2 vs checks/golden/workload_1.json across --jobs"
workload_args=(workload --models mobilenet,alexnet --steps 4 --json)
"$bin" "${workload_args[@]}" --jobs 1 >/tmp/ci_workload_j1.json 2>/dev/null
"$bin" "${workload_args[@]}" --jobs 4 >/tmp/ci_workload_j4.json 2>/dev/null
if ! cmp -s /tmp/ci_workload_j1.json /tmp/ci_workload_j4.json; then
  echo "FAIL: 'workload' output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
if ! cmp -s /tmp/ci_workload_j1.json checks/golden/workload_1.json; then
  echo "FAIL: workload report differs from checks/golden/workload_1.json" >&2
  diff checks/golden/workload_1.json /tmp/ci_workload_j1.json >&2 || true
  exit 1
fi
if ! grep -q '"controller_beats_best_static": true' /tmp/ci_workload_j1.json; then
  echo "FAIL: the adaptive controller no longer beats the best static share" >&2
  exit 1
fi

# Protocol-compat gate: every pre-versioning request form must answer
# byte-identically under the frozen v1 surface (docs/SERVE.md,
# "Versioning"). The corpus lives in crates/serve/tests.
echo "==> protocol compat: frozen v1 surface corpus"
cargo test --offline -q -p lcmm-serve --test protocol_compat

# Delta-equivalence gate: replaying cached pass 1–2 artifacts through
# the share-grid search must be byte-identical to planning every grid
# point from scratch (--no-delta), at any --jobs, on both a 2- and a
# 3-tenant set (see docs/DELTA.md).
echo "==> delta equivalence: multi --no-delta is byte-identical"
for models in "mobilenet,alexnet:4" "mobilenet,alexnet,squeezenet:6"; do
  set=${models%:*}
  steps=${models#*:}
  for jobs in 1 4; do
    "$bin" multi --models "$set" --steps "$steps" --json --jobs "$jobs" \
      >/tmp/ci_delta_on.json 2>/dev/null
    "$bin" multi --models "$set" --steps "$steps" --json --jobs "$jobs" --no-delta \
      >/tmp/ci_delta_off.json 2>/dev/null
    if ! cmp -s /tmp/ci_delta_on.json /tmp/ci_delta_off.json; then
      echo "FAIL: delta replan diverges from scratch ($set, steps $steps, jobs $jobs)" >&2
      diff /tmp/ci_delta_off.json /tmp/ci_delta_on.json >&2 || true
      exit 1
    fi
  done
done

# Serve smoke gate: boot the daemon on an ephemeral port, issue three
# plan requests through the one-shot client, and diff the responses
# against checks/golden/ (plan payloads are deterministic by design —
# see docs/SERVE.md). A duplicate of the first request must then be a
# byte-stable cache hit.
echo "==> serve smoke: daemon + requests vs checks/golden"
rm -f /tmp/ci_serve.out
"$bin" serve --listen 127.0.0.1:0 --workers 2 --debug-hooks >/tmp/ci_serve.out 2>/dev/null &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(awk '/^listening /{print $2; exit}' /tmp/ci_serve.out 2>/dev/null || true)
  [[ -n "$addr" ]] && break
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "FAIL: serve daemon never reported a listening address" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
serve_reqs=(
  '{"graph":"alexnet","precision":"8"}'
  '{"graph":"googlenet","allocator":"greedy"}'
  '{"graph":"synthetic:64x3x7","options":{"splitting":false}}'
  '{"graph":"alexnet","options":{"weight_streaming":"auto","tensor_budget":1048576}}'
)
i=0
for req in "${serve_reqs[@]}"; do
  i=$((i + 1))
  "$bin" request --connect "$addr" "$req" >/tmp/ci_serve_req.out
  if ! cmp -s /tmp/ci_serve_req.out "checks/golden/serve_$i.json"; then
    echo "FAIL: serve response $i differs from checks/golden/serve_$i.json" >&2
    diff "checks/golden/serve_$i.json" /tmp/ci_serve_req.out >&2 || true
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
done
"$bin" request --connect "$addr" "${serve_reqs[0]}" >/tmp/ci_serve_dup.out
if ! grep -q '"cached":true' /tmp/ci_serve_dup.out; then
  echo "FAIL: duplicate serve request was not answered from the plan cache" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi

# Registry invalidation gate: a cached co-plan must be recomputed once
# the tenant set changes.
echo "==> serve registry: registering a tenant invalidates the co-plan cache"
serve_expect() { # <pattern> <request-json>
  "$bin" request --connect "$addr" "$2" >/tmp/ci_serve_multi.out
  if ! grep -q "$1" /tmp/ci_serve_multi.out; then
    echo "FAIL: expected $1 answering $2" >&2
    cat /tmp/ci_serve_multi.out >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
}
serve_expect '"models":1' '{"op":"register","model":"axn","graph":"alexnet","share":0.4}'
serve_expect '"models":2' '{"op":"register","model":"sqz","graph":"squeezenet","share":0.4}'
serve_expect '"cached":false' '{"op":"coplan"}'
serve_expect '"cached":true' '{"op":"coplan"}'
serve_expect '"model":"sqz"' '{"op":"route","model":"sqz"}'
serve_expect '"models":3' '{"op":"register","model":"mbn","graph":"mobilenet","share":0.2}'
serve_expect '"cached":false' '{"op":"coplan"}'

# Panic containment: an injected worker panic must surface as a typed
# internal_error and leave the daemon fully serviceable (the request
# client exits nonzero on error responses — that is the expected path).
echo "==> serve panic containment: injected panic leaves the daemon alive"
"$bin" request --connect "$addr" '{"graph":"debug:panic"}' >/tmp/ci_serve_panic.out 2>/dev/null || true
if ! grep -q '"code":"internal_error"' /tmp/ci_serve_panic.out; then
  echo "FAIL: injected panic did not answer with internal_error" >&2
  cat /tmp/ci_serve_panic.out >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
serve_expect '"ok":true' '{"graph":"alexnet","precision":"8"}'
serve_expect '"cached":true' '{"op":"coplan"}'

"$bin" request --connect "$addr" --op shutdown >/dev/null
wait "$serve_pid"

# Recovery smoke gate: a WAL-backed daemon is SIGKILLed mid-churn and
# restarted on the same --wal-dir; the revived daemon must serve the
# byte-identical cached co-plan reply and the same registry without any
# recomputation (see docs/SERVE.md, "Durability and recovery").
echo "==> serve recovery: SIGKILL + WAL restart replays bit-identically"
wal_dir=$(mktemp -d /tmp/ci_serve_wal.XXXXXX)
boot_wal_daemon() { # <log-file>; sets addr + serve_pid
  rm -f "$1"
  "$bin" serve --listen 127.0.0.1:0 --workers 2 --wal-dir "$wal_dir" >"$1" 2>/dev/null &
  serve_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(awk '/^listening /{print $2; exit}' "$1" 2>/dev/null || true)
    [[ -n "$addr" ]] && break
    sleep 0.1
  done
  if [[ -z "$addr" ]]; then
    echo "FAIL: WAL daemon never reported a listening address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
}
boot_wal_daemon /tmp/ci_serve_wal1.out
serve_expect '"models":1' '{"op":"register","model":"axn","graph":"alexnet","share":0.5}'
serve_expect '"models":2' '{"op":"register","model":"sqz","graph":"squeezenet","share":0.5}'
serve_expect '"cached":false' '{"op":"coplan"}'
"$bin" request --connect "$addr" '{"op":"coplan"}' >/tmp/ci_serve_golden.out
if ! grep -q '"cached":true' /tmp/ci_serve_golden.out; then
  echo "FAIL: pre-kill co-plan was not a cache hit" >&2
  kill -9 "$serve_pid" 2>/dev/null || true
  exit 1
fi
{ kill -9 "$serve_pid" && wait "$serve_pid"; } 2>/dev/null || true
boot_wal_daemon /tmp/ci_serve_wal2.out
"$bin" request --connect "$addr" '{"op":"coplan"}' >/tmp/ci_serve_revived.out
if ! cmp -s /tmp/ci_serve_golden.out /tmp/ci_serve_revived.out; then
  echo "FAIL: revived co-plan reply differs from the pre-kill golden" >&2
  diff /tmp/ci_serve_golden.out /tmp/ci_serve_revived.out >&2 || true
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
if ! grep -q '"cached":true' /tmp/ci_serve_revived.out; then
  echo "FAIL: revived co-plan recomputed instead of replaying the WAL" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
serve_expect '"models":2' '{"op":"stats"}'
"$bin" request --connect "$addr" --op shutdown >/dev/null
wait "$serve_pid"
rm -rf "$wal_dir"

if ! $quick; then
  # Pass-budget gate: the pipeline's per-pass wall clock on a
  # thousand-node synthetic graph must stay inside
  # checks/pass_budgets.json (see docs/PERF.md). Budgets are refreshed
  # with --write-budgets after a deliberate performance change.
  mode="--check"
  $write_budgets && mode="--write-budgets"
  echo "==> pass budgets (scaling_passes $mode)"
  cargo bench --offline -p lcmm-bench --bench scaling_passes -- "$mode"
  echo "==> delta budgets (delta_replan $mode)"
  cargo bench --offline -p lcmm-bench --bench delta_replan -- "$mode"
fi

echo "CI green."
