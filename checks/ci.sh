#!/usr/bin/env bash
# Repo CI gate. Run from the repo root:
#
#   ./checks/ci.sh                  # format + lints + tier-1 build/test + gates
#   ./checks/ci.sh --quick          # skip the release build (debug test only)
#   ./checks/ci.sh --write-budgets  # full run, then refresh checks/pass_budgets.json
#
# Everything runs offline against the vendored crates; no network.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=false
write_budgets=false
[[ "${1:-}" == "--quick" ]] && quick=true
[[ "${1:-}" == "--write-budgets" ]] && write_budgets=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny broken intra-doc links)"
# First-party crates only: the vendored stand-ins are out of scope.
RUSTDOCFLAGS="-D rustdoc::broken-intra-doc-links" cargo doc --offline --no-deps -q \
  -p lcmm -p lcmm-graph -p lcmm-fpga -p lcmm-core -p lcmm-sim -p lcmm-serve

if $quick; then
  echo "==> cargo test (debug)"
  cargo test --offline --workspace -q
else
  echo "==> tier-1: cargo build --release && cargo test -q"
  cargo build --offline --release
  cargo test --offline -q
fi

echo "==> determinism: report output must be byte-identical across --jobs"
bin=target/debug/lcmm
[[ -x "$bin" ]] || cargo build --offline -p lcmm-cli
for cmd in summary table1 fig8; do
  "$bin" "$cmd" --jobs 1 >/tmp/ci_j1.out 2>/dev/null
  "$bin" "$cmd" --jobs 4 >/tmp/ci_j4.out 2>/dev/null
  if ! cmp -s /tmp/ci_j1.out /tmp/ci_j4.out; then
    echo "FAIL: '$cmd' output differs between --jobs 1 and --jobs 4" >&2
    exit 1
  fi
done

echo "==> differential audit: grid + repro corpus + 8 random seeds"
"$bin" audit --seeds 8 --json >/tmp/ci_audit.out 2>/dev/null

# Serve smoke gate: boot the daemon on an ephemeral port, issue three
# plan requests through the one-shot client, and diff the responses
# against checks/golden/ (plan payloads are deterministic by design —
# see docs/SERVE.md). A duplicate of the first request must then be a
# byte-stable cache hit.
echo "==> serve smoke: daemon + requests vs checks/golden"
rm -f /tmp/ci_serve.out
"$bin" serve --listen 127.0.0.1:0 --workers 2 >/tmp/ci_serve.out 2>/dev/null &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(awk '/^listening /{print $2; exit}' /tmp/ci_serve.out 2>/dev/null || true)
  [[ -n "$addr" ]] && break
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "FAIL: serve daemon never reported a listening address" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
serve_reqs=(
  '{"graph":"alexnet","precision":"8"}'
  '{"graph":"googlenet","allocator":"greedy"}'
  '{"graph":"synthetic:64x3x7","options":{"splitting":false}}'
)
i=0
for req in "${serve_reqs[@]}"; do
  i=$((i + 1))
  "$bin" request --connect "$addr" "$req" >/tmp/ci_serve_req.out
  if ! cmp -s /tmp/ci_serve_req.out "checks/golden/serve_$i.json"; then
    echo "FAIL: serve response $i differs from checks/golden/serve_$i.json" >&2
    diff "checks/golden/serve_$i.json" /tmp/ci_serve_req.out >&2 || true
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
done
"$bin" request --connect "$addr" "${serve_reqs[0]}" >/tmp/ci_serve_dup.out
if ! grep -q '"cached":true' /tmp/ci_serve_dup.out; then
  echo "FAIL: duplicate serve request was not answered from the plan cache" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
"$bin" request --connect "$addr" --op shutdown >/dev/null
wait "$serve_pid"

if ! $quick; then
  # Pass-budget gate: the pipeline's per-pass wall clock on a
  # thousand-node synthetic graph must stay inside
  # checks/pass_budgets.json (see docs/PERF.md). Budgets are refreshed
  # with --write-budgets after a deliberate performance change.
  mode="--check"
  $write_budgets && mode="--write-budgets"
  echo "==> pass budgets (scaling_passes $mode)"
  cargo bench --offline -p lcmm-bench --bench scaling_passes -- "$mode"
fi

echo "CI green."
