//! # LCMM — Layer Conscious Memory Management for FPGA DNN accelerators
//!
//! A from-scratch Rust reproduction of *"Overcoming Data Transfer
//! Bottlenecks in FPGA-based DNN Accelerators via Layer Conscious
//! Memory Management"* (Wei, Liang, Cong — DAC 2019), including every
//! substrate the paper depends on:
//!
//! * [`graph`] — DNN computation-graph IR and the model zoo
//!   (ResNet-50/101/152, GoogLeNet, Inception-v4, VGG-16, AlexNet);
//! * [`fpga`] — the VU9P device model and the systolic-array
//!   performance model of Wei et al. (DAC'17), producing the per-layer
//!   compute/transfer latency tables LCMM optimises;
//! * [`core`] — the paper's contribution: liveness-driven feature
//!   buffer reuse, weight prefetching with a prefetch dependence graph,
//!   the DNNK knapsack allocator with pivot compensation, and buffer
//!   splitting;
//! * [`sim`] — a cycle-approximate event-driven simulator that executes
//!   schedules against shared DMA channels, validating the analytic
//!   model;
//! * [`multi`] — multi-tenant co-planning: N networks sharing one
//!   device through partitioned resources, a joint DNNK knapsack over
//!   the shared SRAM pool, and cross-tenant DRAM-contention estimates;
//! * [`workload`] — trace-driven traffic simulation over a co-planned
//!   share grid: seeded arrival processes, admission and batching, and
//!   an adaptive controller that re-partitions shares online.
//!
//! # Quickstart
//!
//! ```
//! use lcmm::prelude::*;
//!
//! let network = lcmm::graph::zoo::googlenet();
//! let device = Device::vu9p();
//!
//! // Baseline: uniform memory management (every tensor through DRAM).
//! let umm = UmmBaseline::build(&network, &device, Precision::Fix16);
//!
//! // LCMM: feature reuse + weight prefetching + DNNK + splitting.
//! let lcmm = PlanRequest::new(&network, &device, Precision::Fix16)
//!     .with_design(umm.design.clone())
//!     .run()
//!     .expect("the explored design is feasible");
//!
//! let speedup = lcmm.speedup_over(umm.latency);
//! assert!(speedup > 1.0);
//! println!("GoogLeNet 16-bit: {speedup:.2}x over UMM");
//! ```
//!
//! For a long-running planning service — plan cache, admission control,
//! deadlines — see [`serve`] and `docs/SERVE.md`.
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and the `lcmm` binary (`crates/cli`) to
//! regenerate every table and figure.

#![warn(missing_docs)]

pub use lcmm_core as core;
pub use lcmm_fpga as fpga;
pub use lcmm_graph as graph;
pub use lcmm_multi as multi;
pub use lcmm_serve as serve;
pub use lcmm_sim as sim;
pub use lcmm_workload as workload;

/// The most commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use lcmm_core::{
        AllocatorKind, CancelToken, Evaluator, Harness, LcmmError, LcmmOptions, LcmmResult,
        Pipeline, PlanRequest, Residency, UmmBaseline, ValueId,
    };
    pub use lcmm_fpga::{AccelDesign, Device, Precision};
    pub use lcmm_graph::{ConvParams, FeatureShape, Graph, GraphBuilder};
    pub use lcmm_multi::{coplan, Coplan, CoplanOptions, TenantSpec};
    pub use lcmm_serve::{Server, ServerConfig, WireRequest, WireResponse};
    pub use lcmm_sim::{SimConfig, Simulator};
    pub use lcmm_workload::{
        run_workload, ArrivalProcess, ControllerConfig, TenantTraffic, WorkloadSpec,
    };
}
