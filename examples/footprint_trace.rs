//! Fig. 3 reproduction: the memory footprint of Inception-v4's
//! `inception_c1` block under UMM and under LCMM, from the event-driven
//! simulator.
//!
//! ```text
//! cargo run --release --example footprint_trace
//! ```

use lcmm::core::pipeline::compare;
use lcmm::core::prefetch::PrefetchPlan;
use lcmm::prelude::*;
use lcmm::sim::trace::{Footprint, Placement};

fn print_footprint(title: &str, fp: &Footprint) {
    println!("\n{title}");
    println!(
        "  {:30} {:9} {:>10} {:>10} {:>9}",
        "tensor", "placement", "from(us)", "to(us)", "KiB"
    );
    for row in &fp.rows {
        println!(
            "  {:30} {:9} {:10.1} {:10.1} {:9.1}",
            format!(
                "{}[{}]",
                row.layer,
                format!("{}", row.value).chars().next().unwrap_or('?')
            ),
            match row.placement {
                Placement::OnChip => "on-chip",
                Placement::OffChip => "off-chip",
            },
            row.from * 1e6,
            row.to * 1e6,
            row.bytes as f64 / 1024.0
        );
    }
    println!(
        "  peak simultaneous on-chip bytes: {:.1} KiB",
        fp.peak_on_chip_bytes() as f64 / 1024.0
    );
}

fn main() {
    let network = lcmm::graph::zoo::inception_v4();
    let device = Device::vu9p();
    let (umm, lcmm) = compare(&network, &device, Precision::Fix16);
    let focus = network.block_nodes("inception_c1");

    // UMM: everything off-chip.
    let umm_sim = Simulator::new(&network, &umm.profile);
    let umm_report = umm_sim.run(&Residency::new(), &SimConfig::default());
    let umm_fp = Footprint::build(
        &network,
        &umm_report,
        &Residency::new(),
        &PrefetchPlan::default(),
        &focus,
    );
    print_footprint("UMM (uniform memory management)", &umm_fp);

    // LCMM: the DNNK-selected tensors live on chip.
    let profile = lcmm.design.profile(&network);
    let sim = Simulator::new(&network, &profile);
    let config = SimConfig::default().with_prefetch(lcmm.prefetch.clone());
    let report = sim.run(&lcmm.residency, &config);
    let lcmm_fp = Footprint::build(&network, &report, &lcmm.residency, &lcmm.prefetch, &focus);
    print_footprint("LCMM (layer conscious memory management)", &lcmm_fp);

    let on = lcmm_fp.on_chip_rows().len();
    println!(
        "\nLCMM keeps {on} of {} tensors of inception_c1 on chip; UMM keeps {}.",
        lcmm_fp.rows.len(),
        umm_fp.on_chip_rows().len()
    );
}
