//! Width study: scale a network's channel counts and watch the machine
//! balance move — the workload-side counterpart of the precision study.
//!
//! ```text
//! cargo run --release --example width_study
//! ```

use lcmm::core::pipeline::compare;
use lcmm::graph::transform::scale_channels;
use lcmm::graph::GraphError;
use lcmm::prelude::*;

fn main() -> Result<(), GraphError> {
    let device = Device::vu9p();
    let base = lcmm::graph::zoo::googlenet();
    println!(
        "{:>8} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "width", "GMACs", "params M", "UMM ms", "LCMM ms", "speedup"
    );
    for (num, den) in [(1usize, 4usize), (1, 2), (3, 4), (1, 1), (3, 2), (2, 1)] {
        let scaled = scale_channels(&base, num, den)?;
        let summary = lcmm::graph::analysis::summarize(&scaled);
        let (umm, lcmm) = compare(&scaled, &device, Precision::Fix16);
        println!(
            "{:>7.2}x {:>9.2} {:>10.1} {:>10.3} {:>10.3} {:>7.2}x",
            num as f64 / den as f64,
            summary.total_macs as f64 / 1e9,
            summary.total_weight_elems as f64 / 1e6,
            umm.latency * 1e3,
            lcmm.latency * 1e3,
            lcmm.speedup_over(umm.latency)
        );
    }
    println!(
        "\nThe advantage is an inverted U peaking at the native width: very narrow\n\
         variants under-fill the systolic array (ceiling-quantised channel tiles)\n\
         and turn compute-bound, while very wide variants grow MACs quadratically\n\
         against linear feature traffic and also turn compute-bound. GoogLeNet's\n\
         published width sits near the worst case for uniform memory management —\n\
         exactly where layer-conscious allocation pays most."
    );
    Ok(())
}
