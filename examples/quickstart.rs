//! Quickstart: UMM baseline vs LCMM on GoogLeNet at 16-bit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lcmm::prelude::*;

fn main() {
    let network = lcmm::graph::zoo::googlenet();
    let device = Device::vu9p();
    let precision = Precision::Fix16;

    println!("network : {} ({} layers)", network.name(), network.len());
    println!(
        "device  : {} ({} DSPs, {:.1} MiB SRAM)",
        device.name,
        device.dsp_slices,
        device.sram_bytes() as f64 / (1 << 20) as f64,
    );

    // Baseline: the uniform memory management of prior accelerators —
    // every tensor of every layer streams through DRAM tile buffers.
    let umm = UmmBaseline::build(&network, &device, precision);
    println!(
        "\nUMM  : {:7.3} ms  ({:.3} Tops)",
        umm.latency * 1e3,
        umm.throughput_ops() / 1e12
    );

    // LCMM: liveness-driven feature buffer reuse, weight prefetching,
    // DNNK knapsack allocation, buffer splitting.
    let lcmm = PlanRequest::new(&network, &device, precision)
        .with_design(umm.design.clone())
        .run()
        .expect("explored design is feasible");
    println!(
        "LCMM : {:7.3} ms  ({:.3} Tops)",
        lcmm.latency * 1e3,
        lcmm.throughput_ops() / 1e12
    );

    println!(
        "\nspeedup            : {:.2}x",
        lcmm.speedup_over(umm.latency)
    );
    println!("tensors on chip    : {}", lcmm.residency.len());
    println!(
        "buffers allocated  : {}",
        lcmm.allocated_buffer_sizes().len()
    );
    println!(
        "on-chip bytes      : {:.1} MiB of {:.1} MiB budget",
        lcmm.allocated_buffer_sizes().iter().sum::<u64>() as f64 / (1 << 20) as f64,
        lcmm.design.tensor_sram_budget() as f64 / (1 << 20) as f64
    );
    println!(
        "POL (layers helped): {:.0}% of {} memory-bound layers",
        lcmm.pol() * 100.0,
        lcmm.memory_bound_layers
    );

    // Cross-check the analytic result against the event-driven
    // simulator (shared DMA channels, real prefetch timing).
    let report = lcmm::sim::validate::validate(&network, &umm, &lcmm);
    println!(
        "\nsimulator check    : UMM {:.3} ms (model {:.3}), LCMM {:.3} ms (model {:.3})",
        report.umm.simulated * 1e3,
        report.umm.analytic * 1e3,
        report.lcmm.simulated * 1e3,
        report.lcmm.analytic * 1e3,
    );
}
