//! Precision study: how datapath precision moves the machine balance
//! and with it LCMM's advantage (the §4.1 discussion: the gain rises
//! from 8-bit to 16-bit, then falls at 32-bit).
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use lcmm::core::pipeline::compare;
use lcmm::fpga::roofline::RooflineReport;
use lcmm::prelude::*;

fn main() {
    let device = Device::vu9p();
    println!(
        "{:14} {:7} {:>9} {:>10} {:>10} {:>8} {:>9}",
        "network", "prec", "mem-bound", "UMM ms", "LCMM ms", "speedup", "SRAM %"
    );
    for network in lcmm::graph::zoo::benchmark_suite() {
        for precision in Precision::ALL {
            let (umm, lcmm) = compare(&network, &device, precision);
            let roofline = RooflineReport::from_profile(&network, &umm.design, &umm.profile);
            println!(
                "{:14} {:7} {:>8.0}% {:>10.3} {:>10.3} {:>7.2}x {:>8.0}%",
                network.name(),
                precision.label(),
                roofline.memory_bound_fraction() * 100.0,
                umm.latency * 1e3,
                lcmm.latency * 1e3,
                lcmm.speedup_over(umm.latency),
                lcmm.resources.sram_util(&device) * 100.0
            );
        }
    }
    println!(
        "\nReading: 16-bit doubles transfer bytes at unchanged MAC cost, so more \
         layers hit the bandwidth wall and LCMM has more to recover; at 32-bit \
         the fp32 array is ~4x smaller, compute slows more than traffic grows, \
         and the advantage recedes."
    );
}
