//! Fig. 2(b) in miniature: sweep every block-level residency choice of
//! GoogLeNet's nine inception modules and show that more SRAM does not
//! monotonically mean more performance — then let DNNK find a better
//! point at tensor granularity.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use lcmm::core::design_space::{inception_blocks, sweep};
use lcmm::core::value::ValueTable;
use lcmm::prelude::*;

fn main() {
    let network = lcmm::graph::zoo::googlenet();
    let device = Device::vu9p();
    let precision = Precision::Fix16;

    let umm = UmmBaseline::build(&network, &device, precision);
    let evaluator = Evaluator::new(&network, &umm.profile);
    let values = ValueTable::build(&network, &umm.profile, precision);

    let blocks = inception_blocks(&network);
    println!(
        "sweeping 2^{} = {} block residency choices",
        blocks.len(),
        1 << blocks.len()
    );
    let space = sweep(&network, &evaluator, &values, &blocks);

    // Bucket by SRAM spend and print the best latency per bucket: the
    // staircase is visibly non-monotone.
    let budget = umm.design.tensor_sram_budget();
    println!("\n  SRAM bucket      best latency   (mask)");
    for bucket in 0..12 {
        let lo = bucket * (budget / 10) as u64;
        let hi = lo + (budget / 10) as u64;
        let best = space
            .points
            .iter()
            .filter(|p| p.sram_bytes >= lo && p.sram_bytes < hi)
            .min_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite"));
        if let Some(p) = best {
            println!(
                "  {:5.1}-{:4.1} MiB   {:8.3} ms    {:#06x}",
                lo as f64 / (1 << 20) as f64,
                hi as f64 / (1 << 20) as f64,
                p.latency * 1e3,
                p.mask
            );
        }
    }

    let feasible_best = space
        .feasible(budget)
        .into_iter()
        .min_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite"))
        .expect("nonempty");
    println!(
        "\nbest feasible block-level point : {:.3} ms using {:.1} MiB",
        feasible_best.latency * 1e3,
        feasible_best.sram_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "non-monotone in SRAM spend      : {}",
        space.is_non_monotone()
    );

    // DNNK at tensor granularity beats the best block-level point.
    let lcmm = PlanRequest::new(&network, &device, precision)
        .with_design(umm.design.clone())
        .run()
        .expect("explored design is feasible");
    println!(
        "LCMM (tensor-level DNNK)        : {:.3} ms using {:.1} MiB",
        lcmm.latency * 1e3,
        lcmm.allocated_buffer_sizes().iter().sum::<u64>() as f64 / (1 << 20) as f64
    );
}
