//! Bring-your-own-model: build a custom branchy CNN with the graph
//! builder, characterise it, and let LCMM place its tensors.
//!
//! ```text
//! cargo run --release --example custom_network
//! ```

use lcmm::fpga::roofline::RooflineReport;
use lcmm::graph::GraphError;
use lcmm::prelude::*;

fn main() -> Result<(), GraphError> {
    // A small detection-style backbone: a strided stem, two residual
    // units, then a two-branch head joined by concatenation.
    let mut b = GraphBuilder::new("custom_backbone");
    let image = b.input(FeatureShape::new(3, 256, 256)).expect("input");
    b.set_block("stem");
    let stem = b.conv("stem/conv", image, ConvParams::square(64, 7, 2, 3))?;
    let pooled = b.max_pool("stem/pool", stem, 3, 2, 1)?;

    b.set_block("res1");
    let r1a = b.conv("res1/a", pooled, ConvParams::square(64, 3, 1, 1))?;
    let r1b = b.conv("res1/b", r1a, ConvParams::square(64, 3, 1, 1))?;
    let r1 = b.eltwise_add("res1/add", &[pooled, r1b])?;

    b.set_block("res2");
    let r2a = b.conv("res2/a", r1, ConvParams::square(128, 3, 2, 1))?;
    let r2b = b.conv("res2/b", r2a, ConvParams::square(128, 3, 1, 1))?;
    let skip = b.conv("res2/skip", r1, ConvParams::square(128, 1, 2, 0))?;
    let r2 = b.eltwise_add("res2/add", &[skip, r2b])?;

    b.set_block("head");
    let wide = b.conv("head/wide", r2, ConvParams::rect(256, 1, 7))?;
    let tall = b.conv("head/tall", r2, ConvParams::rect(256, 7, 1))?;
    let joined = b.concat("head/join", &[wide, tall])?;
    let out = b.conv("head/out", joined, ConvParams::pointwise(255))?;
    let network = b.finish(out)?;

    println!("{network}");

    let device = Device::vu9p();
    let design = AccelDesign::explore(&network, &device, Precision::Fix8);
    let roofline = RooflineReport::build(&network, &design);
    println!(
        "memory-bound layers: {} of {} ({:.0}%)",
        roofline.memory_bound_count(),
        roofline.points.len(),
        roofline.memory_bound_fraction() * 100.0
    );

    let umm = UmmBaseline::from_design(&network, design);
    let lcmm = PlanRequest::new(&network, &device, Precision::Fix8)
        .with_design(umm.design.clone())
        .run()
        .expect("the explored design is feasible");
    println!(
        "UMM {:.3} ms -> LCMM {:.3} ms ({:.2}x)",
        umm.latency * 1e3,
        lcmm.latency * 1e3,
        lcmm.speedup_over(umm.latency)
    );

    // Show where each tensor ended up.
    println!("\nresident tensors:");
    let mut resident: Vec<String> = lcmm
        .residency
        .iter()
        .map(|v| format!("  {:9} {}", format!("{v}"), network.node(v.node()).name()))
        .collect();
    resident.sort();
    for line in resident {
        println!("{line}");
    }
    Ok(())
}
