//! End-to-end tests of the `lcmm` binary.

use std::process::Command;

fn lcmm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lcmm"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = lcmm().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = lcmm().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_model_fails_cleanly() {
    let out = lcmm()
        .args(["roofline", "--model", "lenet"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}

#[test]
fn summary_lists_the_zoo() {
    let out = lcmm().arg("summary").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for model in ["alexnet", "vgg16", "resnet152", "googlenet", "inception_v4"] {
        assert!(text.contains(model), "missing {model} in:\n{text}");
    }
}

#[test]
fn export_dot_is_wellformed() {
    let out = lcmm()
        .args(["export", "--model", "alexnet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph"));
    assert!(dot.trim_end().ends_with('}'));
    assert!(dot.contains("conv1"));
}

#[test]
fn export_json_round_trips() {
    let out = lcmm()
        .args(["export", "--model", "squeezenet", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    let graph = lcmm_graph::Graph::from_json(&json).expect("valid graph json");
    assert_eq!(graph.name(), "squeezenet");
}

#[test]
fn table1_json_is_machine_readable() {
    let out = lcmm()
        .args([
            "table1",
            "--model",
            "googlenet",
            "--precision",
            "16",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let suite: lcmm_core::report::SuiteReport =
        serde_json::from_slice(&out.stdout).expect("valid suite json");
    assert_eq!(suite.records.len(), 1);
    assert!(suite.records[0].speedup > 1.0);
}

#[test]
fn roofline_reports_memory_bound_layers() {
    let out = lcmm()
        .args(["roofline", "--model", "googlenet", "--precision", "16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memory-bound layers:"), "{text}");
}

#[test]
fn fig7_respects_block_flag() {
    let out = lcmm()
        .args(["fig7", "--model", "googlenet", "--block", "inception_3a"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("inception_3a/3x3"));

    let bad = lcmm()
        .args(["fig7", "--model", "googlenet", "--block", "nope"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success());
}
