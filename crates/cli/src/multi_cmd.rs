//! The `lcmm multi` subcommand: co-plan several zoo networks sharing
//! one device.
//!
//! Like `serve`/`request`, this bypasses the grid-report
//! [`crate::opts::Opts`] parser — its flags (a tenant list, per-tenant
//! shares, a search resolution) do not overlap the report options.

use crate::table::{mib, ms, Table};
use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_multi::{coplan, coplan_summary, CoplanOptions, TenantSpec};

/// Runs `lcmm multi --models <a,b,...> [--shares <s,s,...>]
/// [--device <name>] [--precision <8|16|32>] [--steps <N>]
/// [--jobs <N>] [--no-delta] [--json]`.
///
/// `--no-delta` disables the (bit-identical) delta-replan artifact
/// reuse and plans every grid point from scratch — the CI
/// delta-equivalence gate diffs the two paths' outputs.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut models: Vec<String> = Vec::new();
    let mut shares: Option<Vec<f64>> = None;
    let mut device_name = "vu9p".to_string();
    let mut precision = Precision::Fix16;
    let mut opts = CoplanOptions::default();
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--models" => {
                let list = it.next().ok_or("--models needs a comma-separated list")?;
                models = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--shares" => {
                let list = it.next().ok_or("--shares needs a comma-separated list")?;
                let parsed: Result<Vec<f64>, _> =
                    list.split(',').map(|s| s.trim().parse::<f64>()).collect();
                shares =
                    Some(parsed.map_err(|_| format!("--shares must be numbers, got {list:?}"))?);
            }
            "--device" => {
                device_name = it.next().ok_or("--device needs a device name")?.clone();
            }
            "--precision" => {
                let v = it.next().ok_or("--precision needs 8, 16 or 32")?;
                precision = match v.as_str() {
                    "8" => Precision::Fix8,
                    "16" => Precision::Fix16,
                    "32" => Precision::Float32,
                    other => return Err(format!("unknown precision {other:?} (use 8, 16 or 32)")),
                };
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--steps needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--steps must be at least 1".to_string());
                }
                opts = opts.with_search_steps(n);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
            }
            "--no-delta" => opts = opts.with_delta_replan(false),
            "--json" => json = true,
            other => return Err(format!("unknown multi flag {other:?}")),
        }
    }
    if models.len() < 2 {
        return Err("multi needs --models with at least two zoo names".to_string());
    }
    let device =
        Device::by_name(&device_name).ok_or_else(|| format!("unknown device {device_name:?}"))?;
    let mut tenants = Vec::with_capacity(models.len());
    for (i, name) in models.iter().enumerate() {
        let graph = lcmm_graph::zoo::by_name(name)
            .ok_or_else(|| format!("unknown model {name:?} (see `lcmm summary` for the zoo)"))?;
        let mut tenant = TenantSpec::new(name.clone(), graph, precision);
        if let Some(shares) = &shares {
            if shares.len() != models.len() {
                return Err(format!(
                    "--shares has {} entries for {} models",
                    shares.len(),
                    models.len()
                ));
            }
            tenant = tenant.with_share(shares[i]);
        }
        tenants.push(tenant);
    }
    let harness = Harness::new(jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }));
    let plan =
        coplan(&harness, &device, &tenants, &opts).map_err(|e| format!("co-plan failed: {e}"))?;
    if json {
        let line = serde_json::to_string_pretty(&coplan_summary(&plan))
            .map_err(|e| format!("summary failed to serialise: {e}"))?;
        println!("{line}");
        return Ok(());
    }
    println!(
        "co-plan on {}: pool {} MiB, objective {:.3} ms, {} split(s) searched ({} Pareto)",
        plan.device.name,
        mib(plan.pool_bytes),
        plan.objective_value * 1e3,
        plan.frontier.len(),
        plan.frontier.iter().filter(|p| p.pareto).count(),
    );
    if plan.contention.shared {
        println!(
            "DRAM channels shared: {} oversubscribed",
            plan.contention.oversubscribed_channels
        );
    }
    println!();
    let mut table = Table::new([
        "model",
        "share",
        "sram (MiB)",
        "alloc (MiB)",
        "steady (ms)",
        "contended (ms)",
        "slowdown",
    ]);
    for t in &plan.tenants {
        let allocated: u64 = t.result.allocated_buffer_sizes().iter().sum();
        table.row([
            t.name.clone(),
            format!("{:.2}", t.share),
            mib(t.sram_budget),
            mib(allocated),
            ms(t.steady_latency),
            ms(t.contended_latency),
            format!("{:.3}x", t.slowdown),
        ]);
    }
    table.print();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn rejects_bad_flags_and_tenant_lists() {
        assert!(run(&s(&["--frob"])).is_err());
        assert!(run(&s(&["--models", "alexnet"])).is_err(), "one model");
        assert!(run(&s(&["--models", "alexnet,unknown-net"])).is_err());
        assert!(run(&s(&["--models", "alexnet,squeezenet", "--shares", "0.5"])).is_err());
        assert!(run(&s(&["--models", "alexnet,squeezenet", "--steps", "0"])).is_err());
        assert!(run(&s(&["--models", "alexnet,squeezenet", "--device", "asic"])).is_err());
    }

    #[test]
    fn coplans_two_models_with_explicit_shares() {
        run(&s(&[
            "--models",
            "alexnet,squeezenet",
            "--shares",
            "0.5,0.5",
            "--jobs",
            "2",
        ]))
        .expect("half-and-half fits a VU9P");
    }
}
