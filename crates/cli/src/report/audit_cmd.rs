//! `lcmm audit` — differential audit of the analytic model vs the
//! simulator, plus structural invariants, over a model grid.
//!
//! Fails (non-zero exit) when any grid cell, repro replay or seeded
//! random graph produces a finding. A failing random graph is
//! minimised by the generator-space shrinker and written into the
//! repro corpus so subsequent runs replay it.

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::pipeline::AllocatorKind;
use lcmm_fpga::Precision;
use lcmm_graph::zoo;
use lcmm_sim::audit::{
    audit_case, default_grid, load_corpus, random_spec, shrink, write_repro, CaseReport,
    ToleranceBands,
};
use serde::Serialize;
use std::path::Path;

/// Random seeds audited when `--seeds` is not given.
const DEFAULT_SEEDS: usize = 8;

/// Machine-readable output of one audit run (`--json`).
#[derive(Serialize)]
struct AuditOutput {
    cases: Vec<CaseReport>,
    repros_written: Vec<String>,
}

/// Runs the audit.
pub fn run(opts: &Opts) -> Result<(), String> {
    let bands = ToleranceBands::default();
    let grid: Vec<(String, Precision, AllocatorKind)> = match &opts.model {
        Some(name) => {
            zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))?;
            vec![(
                name.clone(),
                opts.precision_or(Precision::Fix16),
                AllocatorKind::Dnnk,
            )]
        }
        None => {
            let mut grid = default_grid();
            if let Some(p) = opts.precision {
                grid.retain(|&(_, gp, _)| gp == p);
            }
            grid
        }
    };

    let mut cases = Vec::new();
    for (model, precision, allocator) in grid {
        let graph = zoo::by_name(&model).ok_or_else(|| format!("unknown model {model:?}"))?;
        eprintln!("audit: {model} {precision} {allocator:?}");
        cases.push(audit_case(&graph, precision, allocator, &bands));
    }

    // Replay the repro corpus: previously minimised failures are
    // permanent regression cases.
    let repro_dir = opts
        .repros
        .clone()
        .unwrap_or_else(|| "checks/repros".to_string());
    let corpus = load_corpus(Path::new(&repro_dir)).map_err(|e| format!("repro corpus: {e}"))?;
    for spec in &corpus {
        eprintln!("audit: replay {}", spec.file_stem());
        cases.push(spec.audit(&bands));
    }

    // Seeded random graphs; a failure is shrunk and joins the corpus.
    let mut repros_written = Vec::new();
    for i in 0..opts.seeds.unwrap_or(DEFAULT_SEEDS) {
        let spec = random_spec(i);
        eprintln!("audit: seed {i} ({})", spec.file_stem());
        let report = spec.audit(&bands);
        if report.passed() {
            cases.push(report);
            continue;
        }
        eprintln!("audit: seed {i} failed, shrinking");
        let minimal = shrink(spec, |s| !s.audit(&bands).passed());
        let final_report = minimal.audit(&bands);
        let path = write_repro(Path::new(&repro_dir), &minimal, &final_report.findings)
            .map_err(|e| format!("write repro: {e}"))?;
        eprintln!("audit: minimised to {}", path.display());
        repros_written.push(path.display().to_string());
        cases.push(final_report);
    }

    let failures = cases.iter().filter(|c| !c.passed()).count();
    if opts.json {
        let out = AuditOutput {
            cases,
            repros_written,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?
        );
    } else {
        let mut table = Table::new([
            "model", "prec", "alloc", "umm", "lcmm", "fill", "probe", "status",
        ]);
        for c in &cases {
            let ratio = |label: &str| {
                c.points
                    .iter()
                    .find(|p| p.label == label)
                    .map_or_else(|| "-".to_string(), |p| format!("{:.3}", p.ratio()))
            };
            table.row([
                c.model.clone(),
                c.precision.to_string(),
                format!("{:?}", c.allocator),
                ratio("umm"),
                ratio("lcmm"),
                ratio("lcmm+fill"),
                ratio("no-plan-probe"),
                if c.passed() {
                    "ok".to_string()
                } else {
                    format!("{} finding(s)", c.findings.len())
                },
            ]);
        }
        table.print();
        for c in cases.iter().filter(|c| !c.passed()) {
            for f in &c.findings {
                println!(
                    "FAIL {} {} {:?} [{}] {}",
                    c.model, c.precision, c.allocator, f.check, f.message
                );
            }
        }
    }
    if failures > 0 {
        return Err(format!("audit failed: {failures} case(s) with findings"));
    }
    Ok(())
}
