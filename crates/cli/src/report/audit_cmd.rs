//! `lcmm audit` — differential audit of the analytic model vs the
//! simulator, plus structural invariants, over a model grid.
//!
//! Fails (non-zero exit) when any grid cell, repro replay or seeded
//! random graph produces a finding. A failing random graph is
//! minimised by the generator-space shrinker and written into the
//! repro corpus so subsequent runs replay it.
//!
//! The sweep itself lives in [`lcmm_sim::audit::run_audit`]; this
//! module only translates CLI flags into [`AuditOptions`] and renders
//! the outcome.

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::pipeline::AllocatorKind;
use lcmm_fpga::Precision;
use lcmm_graph::zoo;
use lcmm_sim::audit::{default_grid, run_audit, AuditOptions};

/// Runs the audit.
pub fn run(opts: &Opts) -> Result<(), String> {
    let grid: Vec<(String, Precision, AllocatorKind)> = match &opts.model {
        Some(name) => {
            zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))?;
            vec![(
                name.clone(),
                opts.precision_or(Precision::Fix16),
                AllocatorKind::Dnnk,
            )]
        }
        None => {
            let mut grid = default_grid();
            if let Some(p) = opts.precision {
                grid.retain(|&(_, gp, _)| gp == p);
            }
            grid
        }
    };

    let mut options = AuditOptions::default().with_grid(grid);
    if let Some(seeds) = opts.seeds {
        options = options.with_seeds(seeds);
    }
    if let Some(tiny_sram) = opts.tiny_sram {
        options = options.with_tiny_sram_seeds(tiny_sram);
    }
    if let Some(fused) = opts.fusion {
        options = options.with_fused_cases(fused);
    }
    if let Some(dir) = &opts.repros {
        options = options.with_repro_dir(dir.clone());
    }

    let outcome = run_audit(&options, |line| eprintln!("{line}"))?;

    let failures = outcome.failures();
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
        );
    } else {
        let mut table = Table::new([
            "model", "prec", "alloc", "umm", "lcmm", "fill", "probe", "status",
        ]);
        for c in &outcome.cases {
            let ratio = |label: &str| {
                c.points
                    .iter()
                    .find(|p| p.label == label)
                    .map_or_else(|| "-".to_string(), |p| format!("{:.3}", p.ratio()))
            };
            table.row([
                c.model.clone(),
                c.precision.to_string(),
                format!("{:?}", c.allocator),
                ratio("umm"),
                ratio("lcmm"),
                ratio("lcmm+fill"),
                ratio("no-plan-probe"),
                if c.passed() {
                    "ok".to_string()
                } else {
                    format!("{} finding(s)", c.findings.len())
                },
            ]);
        }
        table.print();
        for c in outcome.cases.iter().filter(|c| !c.passed()) {
            for f in &c.findings {
                println!(
                    "FAIL {} {} {:?} [{}] {}",
                    c.model, c.precision, c.allocator, f.check, f.message
                );
            }
        }
    }
    if failures > 0 {
        return Err(format!("audit failed: {failures} case(s) with findings"));
    }
    Ok(())
}
