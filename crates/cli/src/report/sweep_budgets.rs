//! `lcmm sweep-budgets` — the AutoWS budget-sweep study.
//!
//! Replans the zoo across SRAM budgets from 1/16× to 1× of the VU9P
//! tensor budget, three ways per cell: the UMM baseline (budget-blind),
//! pure-resident LCMM (streaming off), and streaming-enabled LCMM
//! (`StreamingMode::Auto`). Streaming pays off exactly where the paper's
//! binary residency model starves — budgets too small to pin the hot
//! weights — so the interesting columns are the small fractions.
//!
//! Budget replans share one artifact build per model through the
//! harness's delta-planning cache, and the JSON output is deterministic
//! across `--jobs` (CI diffs it against goldens at two skewed budgets).

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::{Harness, LcmmOptions, LcmmResult, StreamingMode, ValueId, WeightMode};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use serde::Serialize;

/// The default sweep grid: 1/16× … 1× of the design's tensor budget.
pub const DEFAULT_FRACTIONS: [(u64, u64); 5] = [(1, 16), (1, 8), (1, 4), (1, 2), (1, 1)];

/// One `(model, budget fraction)` cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRecord {
    /// Model name.
    pub model: String,
    /// Budget fraction as `num/den` of the design tensor budget.
    pub fraction: String,
    /// The absolute knapsack budget in bytes.
    pub budget_bytes: u64,
    /// UMM baseline latency (budget-independent), seconds.
    pub umm_latency: f64,
    /// Pure-resident LCMM latency (streaming off), seconds.
    pub pinned_latency: f64,
    /// Streaming-enabled LCMM latency (`StreamingMode::Auto`), seconds.
    pub streaming_latency: f64,
    /// Chosen weight buffers pinned whole in the streaming plan.
    pub pinned_buffers: usize,
    /// Chosen weight buffers streamed through the ping-pong pair.
    pub streamed_buffers: usize,
    /// Chosen weight buffers with a resident prefix + streamed tail.
    pub partial_buffers: usize,
}

impl SweepRecord {
    /// `pinned_latency / streaming_latency` — above 1 means streaming
    /// won the cell.
    #[must_use]
    pub fn streaming_speedup(&self) -> f64 {
        self.pinned_latency / self.streaming_latency
    }

    /// Whether streaming strictly beats both baselines on this cell.
    #[must_use]
    pub fn streaming_wins(&self) -> bool {
        self.streaming_latency < self.pinned_latency && self.streaming_latency < self.umm_latency
    }
}

/// The full sweep: `models × fractions` records in input order.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// All records, model-major then fraction order.
    pub records: Vec<SweepRecord>,
}

/// Counts the chosen weight buffers of a plan by mode.
fn mode_counts(result: &LcmmResult) -> (usize, usize, usize) {
    let (mut pinned, mut streamed, mut partial) = (0, 0, 0);
    for (i, (buf, &chosen)) in result.buffers.iter().zip(&result.chosen).enumerate() {
        if !chosen || !buf.members.iter().any(|m| matches!(m, ValueId::Weight(_))) {
            continue;
        }
        match result
            .weight_modes
            .get(i)
            .copied()
            .unwrap_or(WeightMode::Pinned)
        {
            WeightMode::Pinned => pinned += 1,
            WeightMode::Streamed { .. } => streamed += 1,
            WeightMode::PartialResident { .. } => partial += 1,
        }
    }
    (pinned, streamed, partial)
}

/// Runs the sweep over `graphs × fractions` through the shared harness.
pub fn sweep(
    harness: &Harness,
    graphs: &[Graph],
    fractions: &[(u64, u64)],
    precision: Precision,
) -> Result<SweepReport, String> {
    let device = Device::vu9p();
    let cells: Vec<(usize, (u64, u64))> = (0..graphs.len())
        .flat_map(|gi| fractions.iter().map(move |&f| (gi, f)))
        .collect();
    let results = harness.par_map(&cells, |&(gi, (num, den))| -> Result<SweepRecord, String> {
        let graph = &graphs[gi];
        let design = harness
            .try_design(graph, &device, precision)
            .map_err(|e| format!("{}: {e}", graph.name()))?;
        let umm = harness.baseline_from_design(graph, &design);
        let budget = design.tensor_sram_budget() * num / den;
        let pinned = harness
            .try_replan_with_budget(graph, &design, LcmmOptions::default(), Some(budget), None)
            .map_err(|e| format!("{} pinned @{num}/{den}: {e}", graph.name()))?;
        let streaming = harness
            .try_replan_with_budget(
                graph,
                &design,
                LcmmOptions::default().with_weight_streaming(StreamingMode::Auto),
                Some(budget),
                None,
            )
            .map_err(|e| format!("{} streaming @{num}/{den}: {e}", graph.name()))?;
        let (pinned_buffers, streamed_buffers, partial_buffers) = mode_counts(&streaming);
        Ok(SweepRecord {
            model: graph.name().to_string(),
            fraction: format!("{num}/{den}"),
            budget_bytes: budget,
            umm_latency: umm.latency,
            pinned_latency: pinned.latency,
            streaming_latency: streaming.latency,
            pinned_buffers,
            streamed_buffers,
            partial_buffers,
        })
    });
    let mut records = Vec::with_capacity(results.len());
    for r in results {
        records.push(r?);
    }
    Ok(SweepReport { records })
}

/// Prints (or emits as JSON) the budget-sweep study.
pub fn run(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let precision = opts.precision_or(Precision::Fix16);
    let graphs = match &opts.model {
        Some(name) => vec![opts.model_or(name)?],
        None => lcmm_graph::zoo::full_zoo(),
    };
    let fractions = opts
        .fractions
        .clone()
        .unwrap_or_else(|| DEFAULT_FRACTIONS.to_vec());
    let report = sweep(harness, &graphs, &fractions, precision)?;

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!("AutoWS budget sweep at {precision} — latency in ms:\n");
    let mut table = Table::new([
        "model",
        "budget",
        "bytes",
        "umm",
        "pinned",
        "stream",
        "speedup",
        "modes p/s/t",
    ]);
    for r in &report.records {
        table.row([
            r.model.clone(),
            r.fraction.clone(),
            format!("{}", r.budget_bytes),
            format!("{:.3}", r.umm_latency * 1e3),
            format!("{:.3}", r.pinned_latency * 1e3),
            format!("{:.3}", r.streaming_latency * 1e3),
            format!("{:.3}x", r.streaming_speedup()),
            format!(
                "{}/{}/{}",
                r.pinned_buffers, r.streamed_buffers, r.partial_buffers
            ),
        ]);
    }
    table.print();

    println!("\nstreaming wins (strictly beats pinned LCMM and UMM):");
    for &(num, den) in &fractions {
        let fraction = format!("{num}/{den}");
        let at: Vec<&SweepRecord> = report
            .records
            .iter()
            .filter(|r| r.fraction == fraction)
            .collect();
        let wins = at.iter().filter(|r| r.streaming_wins()).count();
        println!("  {fraction:>5}x budget : {wins}/{} models", at.len());
    }
    println!(
        "\npaper shape: at full budget streaming changes nothing (pinning wins\n\
         everywhere the knapsack can afford it); as the budget shrinks the\n\
         ping-pong pair and partial residency reclaim the weight interface."
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn streaming_wins_at_one_eighth_budget_for_most_of_the_zoo() {
        // The tentpole acceptance bar: at 1/8× of the VU9P tensor
        // budget the streaming-enabled plan strictly beats both the
        // pure-resident LCMM plan and UMM on analytic latency for at
        // least half the zoo.
        let harness = Harness::new(1);
        let graphs = zoo::full_zoo();
        let report = sweep(&harness, &graphs, &[(1, 8)], Precision::Fix16).expect("sweep runs");
        assert_eq!(report.records.len(), graphs.len());
        let wins = report.records.iter().filter(|r| r.streaming_wins()).count();
        assert!(
            wins * 2 >= graphs.len(),
            "streaming won only {wins}/{} models at 1/8x budget: {:?}",
            graphs.len(),
            report
                .records
                .iter()
                .map(|r| format!("{} {:.3}x", r.model, r.streaming_speedup()))
                .collect::<Vec<_>>()
        );
        // And never loses to the pinned plan anywhere (same knapsack
        // with a superset of columns).
        for r in &report.records {
            assert!(
                r.streaming_latency <= r.pinned_latency + 1e-12,
                "{}: streaming regressed ({} > {})",
                r.model,
                r.streaming_latency,
                r.pinned_latency
            );
        }
    }

    #[test]
    fn full_budget_matches_pinned_plan_when_everything_fits() {
        // When the 1× budget can afford every profitable pin (squeezenet
        // is small enough), streaming must not distort the plan: the
        // knapsack prefers pinning on ties, so the latencies agree to
        // the bit and no buffer streams. Weight-heavy models (alexnet's
        // FC layers exceed even the full budget) legitimately keep
        // winning at 1× — that is the feature, not a regression.
        let harness = Harness::new(1);
        let graphs = vec![zoo::squeezenet()];
        let report = sweep(&harness, &graphs, &[(1, 1)], Precision::Fix16).expect("sweep runs");
        let r = &report.records[0];
        assert_eq!(
            r.streaming_latency.to_bits(),
            r.pinned_latency.to_bits(),
            "full-budget streaming shifted latency by {:.3}x",
            r.streaming_speedup()
        );
        assert_eq!((r.streamed_buffers, r.partial_buffers), (0, 0));
    }
}
