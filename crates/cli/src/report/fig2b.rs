//! Fig. 2(b): the block-level residency design space of Inception-v4.

use crate::opts::Opts;
use crate::table::{mib, ms, Table};
use lcmm_core::design_space::{inception_blocks, sweep};
use lcmm_core::value::ValueTable;
use lcmm_core::{Evaluator, UmmBaseline};
use lcmm_fpga::{Device, Precision};

/// Sweeps the 2^n block design space and prints the SRAM/latency cloud
/// as a bucketed summary (the full point set with `--json`).
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("inception_v4")?;
    let precision = opts.precision_or(Precision::Fix8);
    let device = Device::vu9p();
    let umm = UmmBaseline::build(&graph, &device, precision);
    let evaluator = Evaluator::new(&graph, &umm.profile);
    let values = ValueTable::build(&graph, &umm.profile, precision);
    let blocks = inception_blocks(&graph);
    if blocks.is_empty() {
        return Err(format!("model {} has no inception blocks", graph.name()));
    }

    println!(
        "model {}  precision {}  blocks {}  points {}\n",
        graph.name(),
        precision,
        blocks.len(),
        1usize << blocks.len()
    );
    let space = sweep(&graph, &evaluator, &values, &blocks);

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&space).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    // Bucket by SRAM spend; show best/worst per bucket to expose the
    // non-monotone cloud the paper plots.
    let max_sram = space.points.iter().map(|p| p.sram_bytes).max().unwrap_or(0);
    let buckets = 16usize;
    let mut table = Table::new(["SRAM MiB", "points", "best Tops", "worst Tops", "best ms"]);
    for b in 0..buckets {
        let lo = max_sram * b as u64 / buckets as u64;
        let hi = max_sram * (b as u64 + 1) / buckets as u64;
        let in_bucket: Vec<_> = space
            .points
            .iter()
            .filter(|p| p.sram_bytes >= lo && (p.sram_bytes < hi || b == buckets - 1))
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let best = in_bucket
            .iter()
            .min_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite"))
            .expect("nonempty");
        let worst = in_bucket
            .iter()
            .max_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite"))
            .expect("nonempty");
        table.row([
            format!("{}-{}", mib(lo), mib(hi)),
            in_bucket.len().to_string(),
            format!("{:.3}", best.throughput_ops(space.total_ops) / 1e12),
            format!("{:.3}", worst.throughput_ops(space.total_ops) / 1e12),
            ms(best.latency),
        ]);
    }
    table.print();

    let device_limit = device.sram_bytes();
    let best_overall = space.best();
    let best_feasible = space
        .feasible(umm.design.tensor_sram_budget())
        .into_iter()
        .min_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite"))
        .expect("space has feasible points");
    println!(
        "\nnon-monotone in SRAM: {}   (paper: \"more on-chip memory doesn't necessarily mean higher performance\")",
        space.is_non_monotone()
    );
    println!(
        "best point overall : {} ms at {} MiB (device limit {} MiB)",
        ms(best_overall.latency),
        mib(best_overall.sram_bytes),
        mib(device_limit)
    );
    println!(
        "best feasible point: {} ms at {} MiB",
        ms(best_feasible.latency),
        mib(best_feasible.sram_bytes)
    );
    Ok(())
}
