//! Model zoo statistics.

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::Harness;
use lcmm_graph::analysis::summarize;

/// Prints per-model workload statistics. Summaries are computed through
/// the harness worker pool; rows print in the fixed model order.
pub fn run(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let models = match &opts.model {
        Some(name) => {
            vec![lcmm_graph::zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))?]
        }
        None => vec![
            lcmm_graph::zoo::alexnet(),
            lcmm_graph::zoo::vgg16(),
            lcmm_graph::zoo::resnet50(),
            lcmm_graph::zoo::resnet152(),
            lcmm_graph::zoo::squeezenet(),
            lcmm_graph::zoo::densenet121(),
            lcmm_graph::zoo::inception_resnet_v2(),
            lcmm_graph::zoo::googlenet(),
            lcmm_graph::zoo::inception_v4(),
        ],
    };
    let summaries = harness.par_map(&models, summarize);
    let mut table = Table::new([
        "model",
        "nodes",
        "convs",
        "GMACs",
        "params M",
        "features M",
        "max fmap K",
    ]);
    for (graph, s) in models.iter().zip(&summaries) {
        table.row([
            graph.name().to_string(),
            s.nodes.to_string(),
            s.conv_layers.to_string(),
            format!("{:.2}", s.total_macs as f64 / 1e9),
            format!("{:.1}", s.total_weight_elems as f64 / 1e6),
            format!("{:.1}", s.total_feature_elems as f64 / 1e6),
            format!("{:.0}", s.max_feature_elems as f64 / 1e3),
        ]);
    }
    table.print();
    Ok(())
}
