//! Fig. 3: memory footprint of one block under UMM and LCMM.

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::pipeline::compare;
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::Residency;
use lcmm_fpga::{Device, Precision};
use lcmm_sim::trace::{Footprint, Placement};
use lcmm_sim::{SimConfig, Simulator};

/// Prints the UMM and LCMM footprint timelines of one block.
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("inception_v4")?;
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let block = opts
        .block
        .clone()
        .unwrap_or_else(|| "inception_c1".to_string());
    let focus = graph.block_nodes(&block);
    if focus.is_empty() {
        return Err(format!(
            "model {} has no block {block:?}; available: {:?}",
            graph.name(),
            graph.blocks()
        ));
    }

    let (umm, lcmm) = compare(&graph, &device, precision);

    let umm_report =
        Simulator::new(&graph, &umm.profile).run(&Residency::new(), &SimConfig::default());
    let umm_fp = Footprint::build(
        &graph,
        &umm_report,
        &Residency::new(),
        &PrefetchPlan::default(),
        &focus,
    );

    let lcmm_profile = lcmm.design.profile(&graph);
    let config = SimConfig::default().with_prefetch(lcmm.prefetch.clone());
    let lcmm_report = Simulator::new(&graph, &lcmm_profile).run(&lcmm.residency, &config);
    let lcmm_fp = Footprint::build(
        &graph,
        &lcmm_report,
        &lcmm.residency,
        &lcmm.prefetch,
        &focus,
    );

    for (title, fp) in [("UMM", &umm_fp), ("LCMM", &lcmm_fp)] {
        println!(
            "\n--- {title} footprint of {block} ({} {precision}) ---",
            graph.name()
        );
        let mut table = Table::new(["tensor", "placement", "from us", "to us", "KiB"]);
        for row in &fp.rows {
            table.row([
                format!("{} [{}]", row.layer, row.value),
                match row.placement {
                    Placement::OnChip => "on-chip".to_string(),
                    Placement::OffChip => "off-chip".to_string(),
                },
                format!("{:.1}", row.from * 1e6),
                format!("{:.1}", row.to * 1e6),
                format!("{:.1}", row.bytes as f64 / 1024.0),
            ]);
        }
        table.print();
        println!(
            "on-chip tensors {}  peak on-chip {:.1} KiB",
            fp.on_chip_rows().len(),
            fp.peak_on_chip_bytes() as f64 / 1024.0
        );
    }
    Ok(())
}
