//! S5: energy study — what the recovered DRAM traffic is worth in
//! joules (extension; the paper reports performance only).

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::energy::{estimate, EnergyModel};
use lcmm_core::pipeline::compare;
use lcmm_core::{Evaluator, Residency};
use lcmm_fpga::{Device, Precision};

fn mj(joules: f64) -> String {
    format!("{:.2}", joules * 1e3)
}

/// Prints per-benchmark energy breakdowns for UMM and LCMM.
pub fn run(opts: &Opts) -> Result<(), String> {
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let model = EnergyModel::default();
    println!("energy per inference ({precision}), mJ:\n");
    let mut table = Table::new([
        "benchmark",
        "design",
        "compute",
        "DRAM",
        "SRAM",
        "static",
        "total",
        "saving",
    ]);
    for graph in lcmm_graph::zoo::benchmark_suite() {
        let (umm, lcmm) = compare(&graph, &device, precision);
        let umm_eval = Evaluator::new(&graph, &umm.profile);
        let e_umm = estimate(&umm_eval, &umm.design, &Residency::new(), &model);
        let lcmm_profile = lcmm.design.profile(&graph);
        let lcmm_eval = Evaluator::new(&graph, &lcmm_profile);
        let e_lcmm = estimate(&lcmm_eval, &lcmm.design, &lcmm.residency, &model);
        table.row([
            graph.name().to_string(),
            "UMM".to_string(),
            mj(e_umm.compute_j),
            mj(e_umm.dram_j),
            mj(e_umm.sram_j),
            mj(e_umm.static_j),
            mj(e_umm.total_j()),
            String::new(),
        ]);
        table.row([
            String::new(),
            "LCMM".to_string(),
            mj(e_lcmm.compute_j),
            mj(e_lcmm.dram_j),
            mj(e_lcmm.sram_j),
            mj(e_lcmm.static_j),
            mj(e_lcmm.total_j()),
            format!("{:.0}%", (1.0 - e_lcmm.total_j() / e_umm.total_j()) * 100.0),
        ]);
    }
    table.print();
    println!(
        "\nDRAM bytes move to ~1 pJ/B SRAM (50x cheaper than DRAM's ~60 pJ/B), and\n\
         the shorter latency also cuts the static-power term — the energy win\n\
         compounds the performance win."
    );
    Ok(())
}
