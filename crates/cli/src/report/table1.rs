//! Table 1: UMM vs LCMM across the benchmark suite and precisions.

use crate::opts::Opts;
use crate::table::{ms, pct, tops, Table};
use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;

/// Prints the full Table 1 (latency, throughput, clock, utilisation,
/// speedup) for ResNet-152 / GoogLeNet / Inception-v4 × 8/16/32-bit.
///
/// Every cell goes through the shared harness: the grid fans out over
/// `--jobs` threads and the per-cell records come back in grid order,
/// so the table is byte-identical at any job count.
pub fn run(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let device = Device::vu9p();
    let models = opts.models_or_suite()?;
    let precisions = opts.precisions_or_all();
    let grid: Vec<(&Graph, Precision)> = models
        .iter()
        .flat_map(|g| precisions.iter().map(move |&p| (g, p)))
        .collect();

    if opts.json {
        let records = harness.par_map(&grid, |&(graph, precision)| {
            let (umm, lcmm) = harness.compare(graph, &device, precision);
            lcmm_core::report::record_from_comparison(graph, &device, precision, &umm, &lcmm)
        });
        let suite = lcmm_core::report::SuiteReport { records };
        println!(
            "{}",
            serde_json::to_string_pretty(&suite).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    let cells = harness.par_map(&grid, |&(graph, precision)| {
        harness.compare(graph, &device, precision)
    });

    let mut table = Table::new([
        "benchmark",
        "design",
        "latency ms",
        "Tops",
        "MHz",
        "DSP %",
        "CLB %",
        "SRAM %",
        "speedup",
        "paper",
    ]);
    let mut speedups = Vec::new();
    let mut measured = Vec::new();
    for (&(graph, precision), (umm, lcmm)) in grid.iter().zip(&cells) {
        let speedup = lcmm.speedup_over(umm.latency);
        speedups.push(speedup);
        let paper = lcmm_core::paper::table1_row(graph.name(), precision);
        measured.push((
            graph.name().to_string(),
            match precision {
                Precision::Fix8 => 8u8,
                Precision::Fix16 => 16,
                Precision::Float32 => 32,
            },
            speedup,
        ));
        table.row([
            format!("{} {}", graph.name(), precision),
            "UMM".to_string(),
            ms(umm.latency),
            tops(umm.throughput_ops()),
            format!("{:.0}", umm.design.freq_hz / 1e6),
            pct(umm.resources.dsp_util),
            pct(umm.resources.clb_util),
            pct(umm.resources.sram_util(&device)),
            String::new(),
            String::new(),
        ]);
        table.row([
            String::new(),
            "LCMM".to_string(),
            ms(lcmm.latency),
            tops(lcmm.throughput_ops()),
            format!("{:.0}", lcmm.design.freq_hz / 1e6),
            pct(lcmm.resources.dsp_util),
            pct(lcmm.resources.clb_util),
            pct(lcmm.resources.sram_util(&device)),
            format!("{speedup:.2}x"),
            paper.map_or(String::new(), |r| format!("{:.2}x", r.speedup)),
        ]);
    }
    table.print();
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\naverage speedup: {avg:.2}x   (paper: 1.36x)");
    let f = lcmm_core::paper::fidelity(&measured);
    println!(
        "fidelity vs paper: sign agreement {:.0}%, trend agreement {:.0}%, mean |dev| {:.1}%",
        f.sign_agreement * 100.0,
        f.trend_agreement * 100.0,
        f.mean_relative_deviation * 100.0
    );
    Ok(())
}
