//! Allocation manifest dump: the deployable output of the framework.

use crate::opts::Opts;
use crate::table::{mib, Table};
use lcmm_core::manifest::AllocationManifest;
use lcmm_core::pipeline::compare;
use lcmm_fpga::{Device, Precision};

/// Prints the allocation manifest (JSON with `--json`, summary table
/// otherwise).
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("googlenet")?;
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let (_, lcmm) = compare(&graph, &device, precision);
    let manifest = AllocationManifest::build(&graph, &lcmm);
    if opts.json {
        println!("{}", manifest.to_json());
        return Ok(());
    }
    println!(
        "allocation manifest: {} {} — {} buffers, {} prefetches, {} of {} MiB\n",
        manifest.model,
        manifest.precision,
        manifest.buffers.len(),
        manifest.prefetches.len(),
        mib(manifest.total_bytes),
        mib(manifest.budget_bytes)
    );
    let mut table = Table::new(["buffer", "base", "MiB", "tensors", "largest binding"]);
    for buf in &manifest.buffers {
        let largest = buf
            .tensors
            .iter()
            .max_by_key(|t| t.bytes)
            .map(|t| t.layer.clone())
            .unwrap_or_default();
        table.row([
            buf.name.clone(),
            format!("{:#x}", buf.base),
            mib(buf.bytes),
            buf.tensors.len().to_string(),
            largest,
        ]);
    }
    table.print();
    Ok(())
}
