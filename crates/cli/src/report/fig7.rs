//! Fig. 7: the DNNK metric tables — virtual buffer table, tensor metric
//! table, and operation latency table.

use crate::opts::Opts;
use crate::table::{mib, Table};
use lcmm_core::liveness::Schedule;
use lcmm_core::pipeline::compare;
use lcmm_core::value::ValueTable;
use lcmm_core::{Evaluator, Residency, ValueId};
use lcmm_fpga::{Device, Precision};

fn us(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e6)
}

/// Prints the three Fig. 7 tables for one block of the model (default:
/// `inception_c1` of Inception-v4, the block of the paper's Fig. 3).
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("inception_v4")?;
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let block = opts
        .block
        .clone()
        .unwrap_or_else(|| "inception_c1".to_string());
    let focus = graph.block_nodes(&block);
    if focus.is_empty() {
        return Err(format!(
            "model {} has no block {block:?}; available: {:?}",
            graph.name(),
            graph.blocks()
        ));
    }

    let (_, lcmm) = compare(&graph, &device, precision);
    let profile = lcmm.design.profile(&graph);
    let evaluator = Evaluator::new(&graph, &profile);
    let values = ValueTable::build(&graph, &profile, precision);
    let schedule = Schedule::new(&graph);
    let mut empty = Residency::new();

    // --- (c) operation latency table -----------------------------------
    println!("--- Fig. 7(c): operation latency table for {block} (µs) ---\n");
    let mut op_table = Table::new(["OP", "latc", "latif", "latwt", "latof"]);
    for &node in &focus {
        let row = profile.node(node);
        if row.compute == 0.0 && row.worst_transfer() == 0.0 {
            continue; // concat: free
        }
        op_table.row([
            graph.node(node).name().to_string(),
            us(row.compute),
            us(row.input_total()),
            us(row.weight),
            us(row.output),
        ]);
    }
    op_table.print();

    // --- (b) tensor metric table ----------------------------------------
    println!("\n--- Fig. 7(b): tensor metric table (latency reduction L, µs) ---\n");
    let mut metric_table = Table::new(["tensor", "source", "OP", "L"]);
    for &node in &focus {
        for id in [ValueId::Feature(node), ValueId::Weight(node)] {
            let Some(v) = values.get(id) else { continue };
            if !v.allocatable {
                continue;
            }
            let gain = evaluator.gain_of(&mut empty, &[id]);
            metric_table.row([
                format!("{id}"),
                match id {
                    ValueId::Feature(_) => "of/if".to_string(),
                    ValueId::Weight(_) => "wt".to_string(),
                },
                graph.node(node).name().to_string(),
                us(gain),
            ]);
        }
    }
    metric_table.print();

    // --- (a) virtual buffer table ----------------------------------------
    println!("\n--- Fig. 7(a): virtual buffer table (buffers touching {block}) ---\n");
    let mut buf_table = Table::new(["buf. ID", "S (MiB)", "start", "end", "members", "on-chip"]);
    for (i, (buf, &chosen)) in lcmm.buffers.iter().zip(&lcmm.chosen).enumerate() {
        if !buf.members.iter().any(|m| focus.contains(&m.node())) {
            continue;
        }
        // Span: earliest definition to last use among members.
        let (mut start, mut end) = (usize::MAX, 0usize);
        for m in &buf.members {
            match m {
                ValueId::Feature(n) => {
                    start = start.min(schedule.position(*n));
                    let last = values
                        .get(*m)
                        .map(|v| {
                            v.readers
                                .iter()
                                .map(|&r| schedule.position(r))
                                .max()
                                .unwrap_or(schedule.position(*n))
                        })
                        .unwrap_or(0);
                    end = end.max(last);
                }
                ValueId::Weight(n) => {
                    let span = lcmm
                        .prefetch
                        .edge(*m)
                        .map(|e| (e.start, e.end))
                        .unwrap_or((schedule.position(*n), schedule.position(*n)));
                    start = start.min(span.0);
                    end = end.max(span.1);
                }
            }
        }
        buf_table.row([
            format!("vbuf{i}"),
            mib(buf.bytes),
            start.to_string(),
            end.to_string(),
            buf.members.len().to_string(),
            if chosen {
                "yes".to_string()
            } else {
                "spilled".to_string()
            },
        ]);
    }
    buf_table.print();
    Ok(())
}
