//! S0: re-derive the DDR-efficiency calibration from the paper's
//! headline, end to end.

use crate::opts::Opts;
use lcmm_core::calibrate::fit_access_efficiency;
use lcmm_fpga::{Device, Precision};

/// Bisects the access-efficiency knob until the benchmark suite's
/// average speedup matches the paper's 1.36× headline, and reports the
/// fitted value (the repository default is 0.21).
pub fn run(opts: &Opts) -> Result<(), String> {
    let target = 1.36;
    let precisions = match opts.precision {
        Some(p) => vec![p],
        None => Precision::ALL.to_vec(),
    };
    let mut workloads = Vec::new();
    for graph in lcmm_graph::zoo::benchmark_suite() {
        for &p in &precisions {
            workloads.push((graph.clone(), p));
        }
    }
    println!(
        "fitting DDR access efficiency so that the {}-configuration average \
         speedup hits the paper's {target}x ...",
        workloads.len()
    );
    let fit = fit_access_efficiency(&workloads, &Device::vu9p(), target, 0.01, 10);
    println!(
        "\nfitted efficiency : {:.3}   (repository default: 0.21)",
        fit.access_efficiency
    );
    println!(
        "achieved speedup  : {:.3}x (target {target}x)",
        fit.achieved_speedup
    );
    println!("iterations        : {}", fit.iterations);
    println!(
        "\nThis is the procedure behind DESIGN.md's calibration record: one knob,\n\
         fitted once against the headline, never tuned per experiment."
    );
    Ok(())
}
