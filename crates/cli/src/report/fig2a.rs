//! Fig. 2(a): roofline characterisation of Inception-v4.

use crate::opts::Opts;
use crate::table::{pct, Table};
use lcmm_fpga::roofline::RooflineReport;
use lcmm_fpga::{AccelDesign, Boundedness, Device, Precision};

/// Prints the roofline points and the memory-boundedness summary.
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("inception_v4")?;
    let precision = opts.precision_or(Precision::Fix8);
    let device = Device::vu9p();
    let design = AccelDesign::explore(&graph, &device, precision);
    let report = RooflineReport::build(&graph, &design);

    println!(
        "model {}  precision {}  peak {:.2} Tops  sustained interface bandwidth {:.1} GB/s\n",
        graph.name(),
        precision,
        report.peak_ops / 1e12,
        report.interface_bandwidth / 1e9
    );

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    let mut table = Table::new([
        "layer",
        "ops/byte",
        "attainable Gops",
        "needs GB/s",
        "bound",
    ]);
    for p in &report.points {
        table.row([
            graph.node(p.id).name().to_string(),
            format!("{:.1}", p.intensity),
            format!("{:.1}", p.attainable_ops / 1e9),
            format!("{:.1}", p.required_bandwidth / 1e9),
            match p.bound {
                Boundedness::Memory => "memory".to_string(),
                Boundedness::Compute => "compute".to_string(),
            },
        ]);
    }
    table.print();

    println!(
        "\nmemory-bound layers: {} of {} ({}%)   [paper: 82 of ~141, 58%]",
        report.memory_bound_count(),
        report.points.len(),
        pct(report.memory_bound_fraction())
    );
    println!(
        "of those, needing > 2x interface bandwidth: {}%   (paper: >60% need 70 GB/s)",
        pct(report.fraction_needing_bandwidth(2.0 * report.interface_bandwidth))
    );
    Ok(())
}
