//! `lcmm sweep-fusion` — the fused-layer planning study.
//!
//! Replans the zoo across SRAM budgets from 1/16× to 1× of the VU9P
//! tensor budget, twice per cell: the unfused pipeline (`fusion off`)
//! and the fusion-grouping pipeline (`fusion auto`). Fusion pays off
//! exactly where the knapsack starves — budgets too small to keep the
//! hot intermediates resident — by trading halo recomputation for
//! eliminated intermediate transfers, so the interesting columns are
//! the small fractions.
//!
//! Transfer time is measured against each plan's own latency table
//! (the fused table already has interior transfers eliminated and halo
//! re-loads inflated) under each plan's own residency — the traffic
//! the accelerator would actually move.
//!
//! Budget replans share one artifact build per model through the
//! harness's delta-planning cache, and the JSON output is deterministic
//! across `--jobs` (CI diffs it against a golden at the 1/8× budget).

use crate::opts::Opts;
use crate::report::sweep_budgets::DEFAULT_FRACTIONS;
use crate::table::Table;
use lcmm_core::{Evaluator, FusionMode, Harness, LcmmOptions, LcmmResult};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use serde::Serialize;

/// One `(model, budget fraction)` cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FusionRecord {
    /// Model name.
    pub model: String,
    /// Budget fraction as `num/den` of the design tensor budget.
    pub fraction: String,
    /// The absolute knapsack budget in bytes.
    pub budget_bytes: u64,
    /// Unfused LCMM latency (`fusion off`), seconds.
    pub off_latency: f64,
    /// Fusion-enabled LCMM latency (`fusion auto`), seconds.
    pub fused_latency: f64,
    /// Off-chip transfer time of the unfused plan, seconds.
    pub off_transfer_seconds: f64,
    /// Off-chip transfer time of the fused plan (on its own fused
    /// table), seconds.
    pub fused_transfer_seconds: f64,
    /// Selected fused groups.
    pub fused_groups: usize,
    /// Layers inside fused groups.
    pub fused_nodes: usize,
    /// Intermediate tensors that never materialise off-chip.
    pub eliminated_tensors: usize,
}

impl FusionRecord {
    /// `off_latency / fused_latency` — above 1 means fusion won the
    /// cell.
    #[must_use]
    pub fn fusion_speedup(&self) -> f64 {
        self.off_latency / self.fused_latency
    }

    /// Whether fusion strictly reduced both latency and transfer time
    /// on this cell.
    #[must_use]
    pub fn fusion_wins(&self) -> bool {
        self.fused_latency < self.off_latency
            && self.fused_transfer_seconds < self.off_transfer_seconds
    }
}

/// The full sweep: `models × fractions` records in input order.
#[derive(Debug, Clone, Serialize)]
pub struct FusionReport {
    /// All records, model-major then fraction order.
    pub records: Vec<FusionRecord>,
}

/// Transfer time of a plan on its own effective latency table: the raw
/// profile for unfused plans, the fusion-transformed one otherwise.
fn plan_transfer_seconds(graph: &Graph, result: &LcmmResult) -> f64 {
    let profile = result.design.profile(graph);
    let profile = if result.fusion.is_empty() {
        profile
    } else {
        result.fusion.apply(&profile)
    };
    Evaluator::new(graph, &profile).transfer_seconds(&result.residency)
}

/// Runs the sweep over `graphs × fractions` through the shared harness.
pub fn sweep(
    harness: &Harness,
    graphs: &[Graph],
    fractions: &[(u64, u64)],
    precision: Precision,
) -> Result<FusionReport, String> {
    let device = Device::vu9p();
    let cells: Vec<(usize, (u64, u64))> = (0..graphs.len())
        .flat_map(|gi| fractions.iter().map(move |&f| (gi, f)))
        .collect();
    let results = harness.par_map(
        &cells,
        |&(gi, (num, den))| -> Result<FusionRecord, String> {
            let graph = &graphs[gi];
            let design = harness
                .try_design(graph, &device, precision)
                .map_err(|e| format!("{}: {e}", graph.name()))?;
            let budget = design.tensor_sram_budget() * num / den;
            let off = harness
                .try_replan_with_budget(graph, &design, LcmmOptions::default(), Some(budget), None)
                .map_err(|e| format!("{} off @{num}/{den}: {e}", graph.name()))?;
            let fused = harness
                .try_replan_with_budget(
                    graph,
                    &design,
                    LcmmOptions::default().with_fusion(FusionMode::Auto),
                    Some(budget),
                    None,
                )
                .map_err(|e| format!("{} auto @{num}/{den}: {e}", graph.name()))?;
            Ok(FusionRecord {
                model: graph.name().to_string(),
                fraction: format!("{num}/{den}"),
                budget_bytes: budget,
                off_latency: off.latency,
                fused_latency: fused.latency,
                off_transfer_seconds: plan_transfer_seconds(graph, &off),
                fused_transfer_seconds: plan_transfer_seconds(graph, &fused),
                fused_groups: fused.fusion.groups.len(),
                fused_nodes: fused.fusion.fused_nodes(),
                eliminated_tensors: fused.fusion.eliminated().len(),
            })
        },
    );
    let mut records = Vec::with_capacity(results.len());
    for r in results {
        records.push(r?);
    }
    Ok(FusionReport { records })
}

/// Prints (or emits as JSON) the fusion-sweep study.
pub fn run(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let precision = opts.precision_or(Precision::Fix16);
    let graphs = match &opts.model {
        Some(name) => vec![opts.model_or(name)?],
        None => lcmm_graph::zoo::full_zoo(),
    };
    let fractions = opts
        .fractions
        .clone()
        .unwrap_or_else(|| DEFAULT_FRACTIONS.to_vec());
    let report = sweep(harness, &graphs, &fractions, precision)?;

    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!("Fused-layer planning sweep at {precision} — latency/transfer in ms:\n");
    let mut table = Table::new([
        "model",
        "budget",
        "bytes",
        "off",
        "fused",
        "speedup",
        "xfer off",
        "xfer fused",
        "groups",
        "elim",
    ]);
    for r in &report.records {
        table.row([
            r.model.clone(),
            r.fraction.clone(),
            format!("{}", r.budget_bytes),
            format!("{:.3}", r.off_latency * 1e3),
            format!("{:.3}", r.fused_latency * 1e3),
            format!("{:.3}x", r.fusion_speedup()),
            format!("{:.3}", r.off_transfer_seconds * 1e3),
            format!("{:.3}", r.fused_transfer_seconds * 1e3),
            format!("{}", r.fused_groups),
            format!("{}", r.eliminated_tensors),
        ]);
    }
    table.print();

    println!("\nfusion wins (strictly reduces latency AND transfer time):");
    for &(num, den) in &fractions {
        let fraction = format!("{num}/{den}");
        let at: Vec<&FusionRecord> = report
            .records
            .iter()
            .filter(|r| r.fraction == fraction)
            .collect();
        let wins = at.iter().filter(|r| r.fusion_wins()).count();
        println!("  {fraction:>5}x budget : {wins}/{} models", at.len());
    }
    println!(
        "\npaper shape: at full budget the knapsack keeps intermediates\n\
         resident and fusion has nothing to eliminate; as the budget\n\
         shrinks, trading halo recomputation for eliminated intermediate\n\
         transfers reclaims the feature interface."
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn fusion_wins_on_shortcut_heavy_models_at_one_eighth_budget() {
        // The tentpole acceptance bar, seen through the CLI study: at
        // 1/8× of the VU9P tensor budget, fusion strictly reduces both
        // the analytic latency and the off-chip transfer time on the
        // shortcut-heavy zoo models.
        let harness = Harness::new(1);
        let graphs = vec![zoo::resnet50(), zoo::mobilenet()];
        let report = sweep(&harness, &graphs, &[(1, 8)], Precision::Fix16).expect("sweep runs");
        assert_eq!(report.records.len(), 2);
        for r in &report.records {
            assert!(r.fused_groups > 0, "{}: nothing fused", r.model);
            assert!(
                r.fusion_wins(),
                "{}: fusion lost (latency {} vs {}, transfer {} vs {})",
                r.model,
                r.fused_latency,
                r.off_latency,
                r.fused_transfer_seconds,
                r.off_transfer_seconds
            );
        }
    }

    #[test]
    fn sweep_is_byte_identical_across_jobs() {
        // The golden gate diffs `--jobs 1` against `--jobs 4`; the JSON
        // encoding must not depend on scheduling.
        let graphs = vec![zoo::mobilenet(), zoo::squeezenet()];
        let fractions = [(1, 8), (1, 2)];
        let serial = sweep(&Harness::new(1), &graphs, &fractions, Precision::Fix16)
            .expect("serial sweep runs");
        let threaded = sweep(&Harness::new(4), &graphs, &fractions, Precision::Fix16)
            .expect("threaded sweep runs");
        let a = serde_json::to_string(&serial).expect("serialises");
        let b = serde_json::to_string(&threaded).expect("serialises");
        assert_eq!(a, b, "sweep-fusion output depends on --jobs");
    }
}
