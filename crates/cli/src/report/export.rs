//! Model export: DOT for visualisation, JSON for interchange.

use crate::opts::Opts;

/// Prints the selected model in DOT (default) or JSON (`--json`).
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("googlenet")?;
    if opts.json {
        println!("{}", graph.to_json().map_err(|e| e.to_string())?);
    } else {
        print!("{}", graph.to_dot());
    }
    Ok(())
}
