//! A1/A2: allocator choice and buffer splitting ablations.

use crate::opts::Opts;
use crate::table::{ms, Table};
use lcmm_core::pipeline::{AllocatorKind, LcmmOptions};
use lcmm_core::{PlanRequest, UmmBaseline};
use lcmm_fpga::{Device, Precision};

/// Prints the allocator and splitting ablations over the suite.
pub fn run(opts: &Opts) -> Result<(), String> {
    let device = Device::vu9p();
    let models = match &opts.model {
        Some(name) => {
            vec![lcmm_graph::zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))?]
        }
        None => lcmm_graph::zoo::benchmark_suite(),
    };
    let precision = opts.precision_or(Precision::Fix16);

    println!("--- A1: allocator choice ({precision}) ---\n");
    let mut table = Table::new([
        "benchmark",
        "UMM ms",
        "DNNK ms",
        "DNNK-iter ms",
        "greedy ms",
        "greedy vs DNNK",
    ]);
    for graph in &models {
        let umm = UmmBaseline::build(graph, &device, precision);
        let plan = |allocator: AllocatorKind| {
            PlanRequest::new(graph, &device, precision)
                .allocator(allocator)
                .with_design(umm.design.clone())
                .run()
                .expect("an explored design is always feasible")
        };
        let dnnk = plan(AllocatorKind::Dnnk);
        let iterated = plan(AllocatorKind::DnnkIterative);
        let greedy = plan(AllocatorKind::Greedy);
        table.row([
            graph.name().to_string(),
            ms(umm.latency),
            ms(dnnk.latency),
            ms(iterated.latency),
            ms(greedy.latency),
            format!("{:+.2}%", (greedy.latency / dnnk.latency - 1.0) * 100.0),
        ]);
    }
    table.print();

    println!("\n--- A2: buffer splitting ({precision}) ---\n");
    let mut table = Table::new(["benchmark", "no split ms", "split ms", "gain", "iterations"]);
    for graph in &models {
        let umm = UmmBaseline::build(graph, &device, precision);
        let with = PlanRequest::new(graph, &device, precision)
            .with_design(umm.design.clone())
            .run()
            .expect("an explored design is always feasible");
        let without = PlanRequest::new(graph, &device, precision)
            .options(LcmmOptions::default().with_splitting(false))
            .with_design(umm.design.clone())
            .run()
            .expect("an explored design is always feasible");
        table.row([
            graph.name().to_string(),
            ms(without.latency),
            ms(with.latency),
            format!("{:+.2}%", (without.latency / with.latency - 1.0) * 100.0),
            with.split_iterations.to_string(),
        ]);
    }
    table.print();
    Ok(())
}
