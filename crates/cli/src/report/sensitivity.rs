//! Robustness studies beyond the paper: calibration sensitivity,
//! batch-size scaling, and device scaling.
//!
//! These do not correspond to a paper artefact; they answer the
//! questions a reviewer of this *reproduction* would ask — does the
//! headline survive the calibration knob, and how does the mechanism
//! behave when the machine balance is moved by batching or by changing
//! the device?
//!
//! All four studies fan their grids out through the shared harness:
//! rows come back in sweep order, so output is byte-identical at any
//! `--jobs` count.

use crate::opts::Opts;
use crate::table::{ms, pct, Table};
use lcmm_core::{Harness, LcmmOptions};
use lcmm_fpga::Device;
use lcmm_graph::Graph;

/// Sweeps the DDR access-efficiency calibration knob and reports the
/// suite-average speedup at each setting.
pub fn run_bandwidth(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let precision = opts.precision_or(lcmm_fpga::Precision::Fix16);
    println!("DDR access efficiency sweep ({precision}; repo default 0.21):\n");
    let mut table = Table::new([
        "efficiency",
        "GB/s per stream",
        "RN speedup",
        "GN speedup",
        "IN speedup",
        "average",
    ]);
    let suite = lcmm_graph::zoo::benchmark_suite();
    let efficiencies = [0.12, 0.17, 0.21, 0.28, 0.40, 0.60, 1.00];
    let grid: Vec<(f64, &Graph)> = efficiencies
        .iter()
        .flat_map(|&eff| suite.iter().map(move |g| (eff, g)))
        .collect();
    let speedups = harness.par_map(&grid, |&(eff, graph)| {
        let mut device = Device::vu9p();
        device.ddr.access_efficiency = eff;
        let (umm, lcmm) = harness.compare(graph, &device, precision);
        lcmm.speedup_over(umm.latency)
    });
    for (i, &eff) in efficiencies.iter().enumerate() {
        let mut device = Device::vu9p();
        device.ddr.access_efficiency = eff;
        let mut row = vec![
            format!("{eff:.2}"),
            format!("{:.1}", device.ddr.effective_interface_bandwidth() / 1e9),
        ];
        let row_speedups = &speedups[i * suite.len()..(i + 1) * suite.len()];
        for s in row_speedups {
            row.push(format!("{s:.2}x"));
        }
        row.push(format!(
            "{:.2}x",
            row_speedups.iter().sum::<f64>() / row_speedups.len() as f64
        ));
        table.row(row);
    }
    table.print();
    println!(
        "\nThe LCMM advantage is monotone in bandwidth scarcity and survives a wide\n\
         band around the calibrated 0.21; at 1.00 (theoretical DDR) the networks\n\
         are compute bound and the advantage collapses — as it should."
    );
    Ok(())
}

/// Batch-size study: weight traffic amortises across a batch, so the
/// weight wall (and with it part of LCMM's win) shrinks as batch grows.
pub fn run_batch(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let graph = opts.model_or("resnet152")?;
    let precision = opts.precision_or(lcmm_fpga::Precision::Fix16);
    let device = Device::vu9p();
    println!("batch study: {} {precision}\n", graph.name());
    let mut table = Table::new([
        "batch",
        "UMM ms/img",
        "LCMM ms/img",
        "speedup",
        "UMM Tops",
        "LCMM Tops",
    ]);
    let batches = [1usize, 2, 4, 8, 16];
    let rows = harness.par_map(&batches, |&batch| {
        let design = harness
            .design(&graph, &device, precision)
            .as_ref()
            .clone()
            .with_batch(batch);
        let umm = harness.baseline_from_design(&graph, &design);
        let lcmm = harness.lcmm_with_design(&graph, &design, LcmmOptions::default());
        (umm, lcmm)
    });
    for (&batch, (umm, lcmm)) in batches.iter().zip(&rows) {
        table.row([
            batch.to_string(),
            ms(umm.latency / batch as f64),
            ms(lcmm.latency / batch as f64),
            format!("{:.2}x", lcmm.speedup_over(umm.latency)),
            format!("{:.3}", umm.throughput_ops() / 1e12),
            format!("{:.3}", lcmm.throughput_ops() / 1e12),
        ]);
    }
    table.print();
    println!(
        "\nLatency-critical batch-1 inference is where LCMM matters most; batching\n\
         amortises the weight stream and narrows the gap — the reason the paper's\n\
         low-latency FPGA setting is the right home for this technique."
    );
    Ok(())
}

/// Uniform vs granularity-derived DRAM efficiency: does the headline
/// survive when per-tensor efficiency is computed from contiguous chunk
/// sizes instead of the flat calibrated knob?
pub fn run_granular(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let precision = opts.precision_or(lcmm_fpga::Precision::Fix16);
    let device = Device::vu9p();
    println!(
        "uniform (flat 0.21) vs granular (eff = chunk/(chunk+430B)) DRAM model ({precision}):\n"
    );
    let mut table = Table::new([
        "benchmark",
        "uniform UMM ms",
        "uniform speedup",
        "granular UMM ms",
        "granular speedup",
    ]);
    let suite = lcmm_graph::zoo::benchmark_suite();
    let rows = harness.par_map(&suite, |graph| {
        let (u_umm, u_lcmm) = harness.compare(graph, &device, precision);
        let g_design = harness
            .design(graph, &device, precision)
            .as_ref()
            .clone()
            .with_granular_ddr();
        let g_umm = harness.baseline_from_design(graph, &g_design);
        let g_lcmm = harness.lcmm_with_design(graph, &g_design, LcmmOptions::default());
        (u_umm, u_lcmm, g_umm, g_lcmm)
    });
    for (graph, (u_umm, u_lcmm, g_umm, g_lcmm)) in suite.iter().zip(&rows) {
        table.row([
            graph.name().to_string(),
            ms(u_umm.latency),
            format!("{:.2}x", u_lcmm.speedup_over(u_umm.latency)),
            ms(g_umm.latency),
            format!("{:.2}x", g_lcmm.speedup_over(g_umm.latency)),
        ]);
    }
    table.print();
    println!(
        "\nGranular mode (channel-plane bursts, pre-packed weights) is kinder to\n\
         DRAM than the calibrated flat knob: the weight-heavy ResNet keeps a\n\
         solid LCMM win, Inception keeps a moderate one, and GoogLeNet's gain\n\
         disappears into the LCMM clock derate. The paper's measured speedups\n\
         sit between the two models — evidence that its hardware behaved worse\n\
         than ideal channel-plane streaming, as the flat knob assumes."
    );
    Ok(())
}

/// Device scaling: the same networks on an embedded part (ZU9EG), the
/// paper's VU9P, and the larger VU13P.
pub fn run_devices(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let precision = opts.precision_or(lcmm_fpga::Precision::Fix16);
    let graph = opts.model_or("googlenet")?;
    println!("device scaling: {} {precision}\n", graph.name());
    let mut table = Table::new([
        "device",
        "DSPs",
        "SRAM MiB",
        "streams GB/s",
        "UMM ms",
        "LCMM ms",
        "speedup",
        "SRAM %",
    ]);
    let devices = [Device::zu9eg(), Device::vu9p(), Device::vu13p()];
    let rows = harness.par_map(&devices, |device| {
        harness.compare(&graph, device, precision)
    });
    for (device, (umm, lcmm)) in devices.iter().zip(&rows) {
        table.row([
            device.name.clone(),
            device.dsp_slices.to_string(),
            format!("{:.1}", device.sram_bytes() as f64 / (1 << 20) as f64),
            format!("{:.1}", device.ddr.effective_interface_bandwidth() / 1e9),
            ms(umm.latency),
            ms(lcmm.latency),
            format!("{:.2}x", lcmm.speedup_over(umm.latency)),
            pct(lcmm.resources.sram_util(device)),
        ]);
    }
    table.print();
    println!(
        "\nBigger arrays against the same DRAM get more memory bound, so the LCMM\n\
         advantage grows with the device; the URAM-less embedded part has little\n\
         SRAM to allocate and gains the least."
    );
    Ok(())
}
