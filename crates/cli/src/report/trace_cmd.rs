//! Chrome-trace dump of a simulated inference.

use crate::opts::Opts;
use lcmm_core::pipeline::compare;
use lcmm_fpga::{Device, Precision};
use lcmm_sim::validate::weight_classes;
use lcmm_sim::{trace, SimConfig, Simulator};

/// Simulates one LCMM inference with event recording and prints the
/// Chrome trace JSON (open in `chrome://tracing` or Perfetto).
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("googlenet")?;
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let (_, lcmm) = compare(&graph, &device, precision);
    let profile = lcmm.design.profile(&graph);
    let sim = Simulator::new(&graph, &profile);
    let config = SimConfig::default()
        .with_record_events(true)
        .with_weight_classes(weight_classes(&lcmm))
        .with_prefetch(lcmm.prefetch.clone());
    let report = sim.run(&lcmm.residency, &config);
    println!("{}", trace::to_chrome_trace(&graph, &report.events));
    eprintln!(
        "# {} events over {:.3} ms — open in chrome://tracing",
        report.events.len(),
        report.total_latency * 1e3
    );
    Ok(())
}
