//! Table 2: on-chip memory utilisation and POL.

use crate::opts::Opts;
use crate::table::{pct, Table};
use lcmm_core::pipeline::compare;
use lcmm_fpga::{Device, Precision};

/// Prints BRAM/URAM utilisation for UMM and LCMM, plus the POL metric
/// (percentage of memory-bound layers that benefit from LCMM).
pub fn run(opts: &Opts) -> Result<(), String> {
    let device = Device::vu9p();
    let models = match &opts.model {
        Some(name) => vec![lcmm_graph::zoo::by_name(name)
            .ok_or_else(|| format!("unknown model {name:?}"))?],
        None => lcmm_graph::zoo::benchmark_suite(),
    };
    let precisions = match opts.precision {
        Some(p) => vec![p],
        None => Precision::ALL.to_vec(),
    };

    let mut table = Table::new([
        "benchmark", "design", "BRAM %", "URAM %", "buffers", "POL %",
    ]);
    for graph in &models {
        for &precision in &precisions {
            let (umm, lcmm) = compare(graph, &device, precision);
            table.row([
                format!("{} {}", graph.name(), precision),
                "UMM".to_string(),
                pct(umm.resources.bram_util),
                pct(umm.resources.uram_util),
                "0".to_string(),
                String::new(),
            ]);
            table.row([
                String::new(),
                "LCMM".to_string(),
                pct(lcmm.resources.bram_util),
                pct(lcmm.resources.uram_util),
                lcmm.allocated_buffer_sizes().len().to_string(),
                pct(lcmm.pol()),
            ]);
        }
    }
    table.print();
    println!("\npaper POL: RN 94/94/84, GN 83/82/61, IN 78/79/66 (%)");
    Ok(())
}
