//! Table 2: on-chip memory utilisation and POL.

use crate::opts::Opts;
use crate::table::{pct, Table};
use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;

/// Prints BRAM/URAM utilisation for UMM and LCMM, plus the POL metric
/// (percentage of memory-bound layers that benefit from LCMM). Cells
/// are evaluated through the shared harness in grid order.
pub fn run(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let device = Device::vu9p();
    let models = opts.models_or_suite()?;
    let precisions = opts.precisions_or_all();
    let grid: Vec<(&Graph, Precision)> = models
        .iter()
        .flat_map(|g| precisions.iter().map(move |&p| (g, p)))
        .collect();
    let cells = harness.par_map(&grid, |&(graph, precision)| {
        harness.compare(graph, &device, precision)
    });

    let mut table = Table::new([
        "benchmark",
        "design",
        "BRAM %",
        "URAM %",
        "buffers",
        "POL %",
    ]);
    for (&(graph, precision), (umm, lcmm)) in grid.iter().zip(&cells) {
        table.row([
            format!("{} {}", graph.name(), precision),
            "UMM".to_string(),
            pct(umm.resources.bram_util),
            pct(umm.resources.uram_util),
            "0".to_string(),
            String::new(),
        ]);
        table.row([
            String::new(),
            "LCMM".to_string(),
            pct(lcmm.resources.bram_util),
            pct(lcmm.resources.uram_util),
            lcmm.allocated_buffer_sizes().len().to_string(),
            pct(lcmm.pol()),
        ]);
    }
    table.print();
    println!("\npaper POL: RN 94/94/84, GN 83/82/61, IN 78/79/66 (%)");
    Ok(())
}
