//! A3: analytic model vs event-driven simulator.

use crate::opts::Opts;
use crate::table::{ms, Table};
use lcmm_core::pipeline::compare;
use lcmm_fpga::{Device, Precision};
use lcmm_sim::validate::validate;

/// Prints the analytic-vs-simulated latency table across the suite.
pub fn run(opts: &Opts) -> Result<(), String> {
    let device = Device::vu9p();
    let models = match &opts.model {
        Some(name) => {
            vec![lcmm_graph::zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))?]
        }
        None => lcmm_graph::zoo::benchmark_suite(),
    };
    let precisions = match opts.precision {
        Some(p) => vec![p],
        None => Precision::ALL.to_vec(),
    };

    let mut table = Table::new([
        "benchmark",
        "UMM model ms",
        "UMM sim ms",
        "ratio",
        "LCMM model ms",
        "LCMM sim ms",
        "ratio",
        "sim speedup",
    ]);
    for graph in &models {
        for &precision in &precisions {
            let (umm, lcmm) = compare(graph, &device, precision);
            let v = validate(graph, &umm, &lcmm);
            table.row([
                format!("{} {}", graph.name(), precision),
                ms(v.umm.analytic),
                ms(v.umm.simulated),
                format!("{:.3}", v.umm.ratio()),
                ms(v.lcmm.analytic),
                ms(v.lcmm.simulated),
                format!("{:.3}", v.lcmm.ratio()),
                format!("{:.2}x", v.umm.simulated / v.lcmm.simulated),
            ]);
        }
    }
    table.print();
    println!(
        "\nratio = simulated / analytic; > 1 means channel contention and prefetch\n\
         timing cost time the per-layer max model does not see."
    );
    Ok(())
}
