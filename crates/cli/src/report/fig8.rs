//! Fig. 8: GoogLeNet 16-bit per-block analysis of the two passes.

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::pipeline::{block_latency, block_ops};
use lcmm_core::{Evaluator, LcmmOptions, Pipeline, Residency, UmmBaseline};
use lcmm_fpga::{Device, Precision};

/// Prints per-inception-block throughput for UMM, feature-reuse-only,
/// weight-prefetch-only and full LCMM (Fig. 8 (a), (b), (c)).
pub fn run(opts: &Opts) -> Result<(), String> {
    let graph = opts.model_or("googlenet")?;
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let umm = UmmBaseline::build(&graph, &device, precision);

    let variants = [
        ("feature reuse", LcmmOptions::feature_reuse_only()),
        ("wt prefetch", LcmmOptions::weight_prefetch_only()),
        ("full LCMM", LcmmOptions::default()),
    ];
    let results: Vec<_> = variants
        .iter()
        .map(|(_, o)| Pipeline::new(*o).run_with_design(&graph, umm.design.clone()))
        .collect();

    let umm_eval = Evaluator::new(&graph, &umm.profile);
    let blocks: Vec<String> = graph
        .blocks()
        .into_iter()
        .filter(|b| b.starts_with("inception"))
        .map(str::to_string)
        .collect();
    if blocks.is_empty() {
        return Err(format!("model {} has no inception blocks", graph.name()));
    }

    println!("{} {} — per-block throughput in Gops:\n", graph.name(), precision);
    let mut table = Table::new([
        "block", "UMM", "feature reuse", "wt prefetch", "full LCMM",
    ]);
    for block in &blocks {
        let ops = block_ops(&graph, block) as f64;
        let umm_lat = block_latency(&graph, &umm_eval, &Residency::new(), block);
        let mut cells = vec![block.clone(), format!("{:.1}", ops / umm_lat / 1e9)];
        for r in &results {
            let profile = r.design.profile(&graph);
            let ev = Evaluator::new(&graph, &profile);
            let lat = block_latency(&graph, &ev, &r.residency, block);
            cells.push(format!("{:.1}", ops / lat / 1e9));
        }
        table.row(cells);
    }
    table.print();

    println!("\nwhole-network latency:");
    println!("  UMM           : {:.3} ms", umm.latency * 1e3);
    for ((name, _), r) in variants.iter().zip(&results) {
        println!(
            "  {:13} : {:.3} ms ({:.2}x)",
            name,
            r.latency * 1e3,
            umm.latency / r.latency
        );
    }
    println!(
        "\npaper shape: feature reuse lifts the early blocks (large feature maps),\n\
         prefetching lifts the late blocks (weight-heavy), full LCMM lifts all."
    );
    Ok(())
}
