//! Fig. 8: GoogLeNet 16-bit per-block analysis of the two passes.

use crate::opts::Opts;
use crate::table::Table;
use lcmm_core::pipeline::{block_latency, block_ops};
use lcmm_core::{Evaluator, Harness, LcmmOptions};
use lcmm_fpga::{Device, Precision};

/// Prints per-inception-block throughput for UMM, feature-reuse-only,
/// weight-prefetch-only and full LCMM (Fig. 8 (a), (b), (c)).
///
/// The three ablation variants run through the shared harness in
/// parallel and derate to the *same* design, so its latency table is
/// profiled once and shared — previously every per-block row re-ran
/// `design.profile(graph)` per variant.
pub fn run(opts: &Opts, harness: &Harness) -> Result<(), String> {
    let graph = opts.model_or("googlenet")?;
    let precision = opts.precision_or(Precision::Fix16);
    let device = Device::vu9p();
    let umm = harness.baseline(&graph, &device, precision);

    let variants = [
        ("feature reuse", LcmmOptions::feature_reuse_only()),
        ("wt prefetch", LcmmOptions::weight_prefetch_only()),
        ("full LCMM", LcmmOptions::default()),
    ];
    let results = harness.par_map(&variants, |&(_, options)| {
        harness.lcmm_with_design(&graph, &umm.design, options)
    });

    let umm_eval = Evaluator::new(&graph, &umm.profile);
    let blocks: Vec<String> = graph
        .blocks()
        .into_iter()
        .filter(|b| b.starts_with("inception"))
        .map(str::to_string)
        .collect();
    if blocks.is_empty() {
        return Err(format!("model {} has no inception blocks", graph.name()));
    }

    // One memoized profile (and evaluator) per distinct derated design.
    let profiles: Vec<_> = results
        .iter()
        .map(|r| harness.profile(&graph, &r.design))
        .collect();
    let evals: Vec<Evaluator<'_>> = profiles.iter().map(|p| Evaluator::new(&graph, p)).collect();

    println!(
        "{} {} — per-block throughput in Gops:\n",
        graph.name(),
        precision
    );
    let mut table = Table::new(["block", "UMM", "feature reuse", "wt prefetch", "full LCMM"]);
    for block in &blocks {
        let ops = block_ops(&graph, block) as f64;
        let umm_lat = block_latency(&graph, &umm_eval, &lcmm_core::Residency::new(), block);
        let mut cells = vec![block.clone(), format!("{:.1}", ops / umm_lat / 1e9)];
        for (r, ev) in results.iter().zip(&evals) {
            let lat = block_latency(&graph, ev, &r.residency, block);
            cells.push(format!("{:.1}", ops / lat / 1e9));
        }
        table.row(cells);
    }
    table.print();

    println!("\nwhole-network latency:");
    println!("  UMM           : {:.3} ms", umm.latency * 1e3);
    for ((name, _), r) in variants.iter().zip(&results) {
        println!(
            "  {:13} : {:.3} ms ({:.2}x)",
            name,
            r.latency * 1e3,
            umm.latency / r.latency
        );
    }
    println!(
        "\npaper shape: feature reuse lifts the early blocks (large feature maps),\n\
         prefetching lifts the late blocks (weight-heavy), full LCMM lifts all."
    );
    Ok(())
}
