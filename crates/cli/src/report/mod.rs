//! One module per paper artefact.

pub mod ablation;
pub mod calibrate_cmd;
pub mod energy_cmd;
pub mod export;
pub mod fig2a;
pub mod sensitivity;
pub mod fig2b;
pub mod fig3;
pub mod fig7;
pub mod manifest_cmd;
pub mod fig8;
pub mod summary;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trace_cmd;
pub mod validate;

use crate::opts::Opts;

/// Runs every report in paper order.
pub fn all(opts: &Opts) -> Result<(), String> {
    for (name, f) in [
        ("summary", summary::run as fn(&Opts) -> Result<(), String>),
        ("roofline (Fig. 2a)", fig2a::run),
        ("design space (Fig. 2b)", fig2b::run),
        ("footprint (Fig. 3)", fig3::run),
        ("metric tables (Fig. 7)", fig7::run),
        ("Table 1", table1::run),
        ("Table 2", table2::run),
        ("Fig. 8", fig8::run),
        ("Table 3", table3::run),
        ("validation (A3)", validate::run),
        ("ablations (A1/A2)", ablation::run),
        ("bandwidth sensitivity (S1)", sensitivity::run_bandwidth),
        ("batch study (S2)", sensitivity::run_batch),
        ("device scaling (S3)", sensitivity::run_devices),
        ("granular DRAM model (S4)", sensitivity::run_granular),
        ("energy study (S5)", energy_cmd::run),
    ] {
        println!("\n================ {name} ================\n");
        f(opts)?;
    }
    Ok(())
}
