//! One module per paper artefact.

pub mod ablation;
pub mod audit_cmd;
pub mod calibrate_cmd;
pub mod energy_cmd;
pub mod export;
pub mod fig2a;
pub mod fig2b;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod manifest_cmd;
pub mod sensitivity;
pub mod summary;
pub mod sweep_budgets;
pub mod sweep_fusion;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trace_cmd;
pub mod validate;

use crate::opts::Opts;
use lcmm_core::Harness;

/// Runs every report in paper order; grid reports share one harness
/// (the Table 1/2 comparisons, Fig. 8 variants and sensitivity sweeps
/// all hit the same memoized designs and profiles).
pub fn all(opts: &Opts, harness: &Harness) -> Result<(), String> {
    type Plain = fn(&Opts) -> Result<(), String>;
    type Shared = fn(&Opts, &Harness) -> Result<(), String>;
    enum Cmd {
        Plain(Plain),
        Shared(Shared),
    }
    for (name, cmd) in [
        ("summary", Cmd::Shared(summary::run)),
        ("roofline (Fig. 2a)", Cmd::Plain(fig2a::run)),
        ("design space (Fig. 2b)", Cmd::Plain(fig2b::run)),
        ("footprint (Fig. 3)", Cmd::Plain(fig3::run)),
        ("metric tables (Fig. 7)", Cmd::Plain(fig7::run)),
        ("Table 1", Cmd::Shared(table1::run)),
        ("Table 2", Cmd::Shared(table2::run)),
        ("Fig. 8", Cmd::Shared(fig8::run)),
        ("Table 3", Cmd::Shared(table3::run)),
        ("validation (A3)", Cmd::Plain(validate::run)),
        ("ablations (A1/A2)", Cmd::Plain(ablation::run)),
        (
            "bandwidth sensitivity (S1)",
            Cmd::Shared(sensitivity::run_bandwidth),
        ),
        ("batch study (S2)", Cmd::Shared(sensitivity::run_batch)),
        ("device scaling (S3)", Cmd::Shared(sensitivity::run_devices)),
        (
            "granular DRAM model (S4)",
            Cmd::Shared(sensitivity::run_granular),
        ),
        ("energy study (S5)", Cmd::Plain(energy_cmd::run)),
        (
            "weights streaming budget sweep (S6)",
            Cmd::Shared(sweep_budgets::run),
        ),
        (
            "fused-layer planning sweep (S7)",
            Cmd::Shared(sweep_fusion::run),
        ),
    ] {
        println!("\n================ {name} ================\n");
        match cmd {
            Cmd::Plain(f) => f(opts)?,
            Cmd::Shared(f) => f(opts, harness)?,
        }
    }
    Ok(())
}
