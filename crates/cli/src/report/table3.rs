//! Table 3: LCMM vs state-of-the-art strategy analogues.

use crate::opts::Opts;
use crate::table::{ms, pct, tops, Table};
use lcmm_core::strategies::{cloud_dnn_like, tgpa_like, tgpa_plus_lcmm, StrategyResult};
use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;

fn perf_density(throughput_ops: f64, dsp_used: usize, freq_hz: f64) -> f64 {
    throughput_ops / (dsp_used as f64 * freq_hz)
}

fn strategy_row(table: &mut crate::table::Table, device: &Device, s: &StrategyResult) {
    table.row([
        s.name.to_string(),
        format!("{:.0}", s.design.freq_hz / 1e6),
        pct(s.resources.dsp_util),
        pct(s.resources.sram_util(device)),
        tops(s.throughput_ops()),
        ms(s.latency),
        format!("{:.2}", s.perf_density()),
    ]);
}

fn compare_on(harness: &Harness, device: &Device, graph: &Graph, rival: &StrategyResult) {
    let (_, lcmm) = harness.compare(graph, device, Precision::Fix16);
    let mut table = Table::new([
        "design",
        "MHz",
        "DSP %",
        "SRAM %",
        "Tops",
        "ms/image",
        "ops/DSP/cyc",
    ]);
    strategy_row(&mut table, device, rival);
    table.row([
        "LCMM (ours)".to_string(),
        format!("{:.0}", lcmm.design.freq_hz / 1e6),
        pct(lcmm.resources.dsp_util),
        pct(lcmm.resources.sram_util(device)),
        tops(lcmm.throughput_ops()),
        ms(lcmm.latency),
        format!(
            "{:.2}",
            perf_density(
                lcmm.throughput_ops(),
                lcmm.resources.dsp_used,
                lcmm.design.freq_hz
            )
        ),
    ]);
    table.print();
    println!(
        "LCMM / {} throughput: {:.2}x\n",
        rival.name,
        lcmm.throughput_ops() / rival.throughput_ops()
    );
}

/// Prints the two Table 3 comparisons: ResNet-50 vs the Cloud-DNN
/// analogue and ResNet-152 vs the TGPA analogue, at 16-bit. The LCMM
/// sides go through the shared harness (memoized with Table 1's cells).
pub fn run(_opts: &Opts, harness: &Harness) -> Result<(), String> {
    let device = Device::vu9p();

    println!("--- ResNet-50, 16-bit (paper: LCMM 1.35x over Cloud-DNN [3]) ---\n");
    let rn50 = lcmm_graph::zoo::resnet50();
    let cloud = cloud_dnn_like(&rn50, &device, Precision::Fix16);
    compare_on(harness, &device, &rn50, &cloud);

    println!("--- ResNet-152, 16-bit (paper: LCMM 1.12x over TGPA [17]) ---\n");
    let rn152 = lcmm_graph::zoo::resnet152();
    let tgpa = tgpa_like(&rn152, &device, Precision::Fix16);
    compare_on(harness, &device, &rn152, &tgpa);

    println!("--- Future work (paper §4.2): TGPA streaming + LCMM weights ---\n");
    let combined = tgpa_plus_lcmm(&rn152, &device, Precision::Fix16);
    let mut table = Table::new([
        "design",
        "MHz",
        "DSP %",
        "SRAM %",
        "Tops",
        "ms/image",
        "ops/DSP/cyc",
    ]);
    strategy_row(&mut table, &device, &tgpa);
    strategy_row(&mut table, &device, &combined);
    table.print();
    println!(
        "streaming features + LCMM weight management: {:.2}x over plain TGPA, \
         density {:.2} -> {:.2} ops/DSP/cycle",
        tgpa.latency / combined.latency,
        tgpa.perf_density(),
        combined.perf_density()
    );
    Ok(())
}
