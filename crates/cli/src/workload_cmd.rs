//! The `lcmm workload` subcommand: replay a traffic trace against a
//! co-planned share grid, with the adaptive share controller on or
//! off.
//!
//! Like `serve`/`multi`, this bypasses the grid-report
//! [`crate::opts::Opts`] parser — its flags (a tenant list, a trace
//! spec, controller toggles) do not overlap the report options.

use crate::table::{ms, Table};
use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_multi::{CoplanOptions, TenantSpec};
use lcmm_workload::{run_workload, ControllerConfig};
use serde_json::Value;

/// Runs `lcmm workload --models <a,b,...> [--trace <spec|file>]
/// [--controller on|off] [--device <name>] [--precision <8|16|32>]
/// [--steps <N>] [--jobs <N>] [--json]`.
///
/// `--trace` defaults to the builtin `bursty2` anti-phase burst pair;
/// inline specs (`poisson:80;burst:10:400:2:0.4`) and JSON trace files
/// are documented in `docs/WORKLOAD.md`. The controller defaults to on.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut models: Vec<String> = Vec::new();
    let mut trace = "bursty2".to_string();
    let mut controller = ControllerConfig::default().with_enabled(true);
    let mut device_name = "vu9p".to_string();
    let mut precision = Precision::Fix16;
    let mut opts = CoplanOptions::default().with_search_steps(4);
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--models" => {
                let list = it.next().ok_or("--models needs a comma-separated list")?;
                models = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--trace" => {
                trace = it
                    .next()
                    .ok_or("--trace needs a spec or a JSON file path")?
                    .clone();
            }
            "--controller" => {
                let v = it.next().ok_or("--controller needs on or off")?;
                controller = match v.as_str() {
                    "on" => controller.with_enabled(true),
                    "off" => controller.with_enabled(false),
                    other => return Err(format!("--controller must be on or off, got {other:?}")),
                };
            }
            "--device" => {
                device_name = it.next().ok_or("--device needs a device name")?.clone();
            }
            "--precision" => {
                let v = it.next().ok_or("--precision needs 8, 16 or 32")?;
                precision = match v.as_str() {
                    "8" => Precision::Fix8,
                    "16" => Precision::Fix16,
                    "32" => Precision::Float32,
                    other => return Err(format!("unknown precision {other:?} (use 8, 16 or 32)")),
                };
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--steps needs a positive integer, got {v:?}"))?;
                if n < 2 {
                    return Err("--steps must be at least 2".to_string());
                }
                opts = opts.with_search_steps(n);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
            }
            "--json" => json = true,
            other => return Err(format!("unknown workload flag {other:?}")),
        }
    }
    if models.len() < 2 {
        return Err("workload needs --models with at least two zoo names".to_string());
    }
    let device =
        Device::by_name(&device_name).ok_or_else(|| format!("unknown device {device_name:?}"))?;
    let mut tenants = Vec::with_capacity(models.len());
    for name in &models {
        let graph = lcmm_graph::zoo::by_name(name).ok_or_else(|| {
            format!(
                "unknown model {name:?} (zoo: {})",
                lcmm_graph::zoo::names().join(", ")
            )
        })?;
        tenants.push(TenantSpec::new(name.clone(), graph, precision));
    }
    let harness = Harness::new(jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }));
    let report = run_workload(&harness, &device, &tenants, &trace, &controller, &opts)
        .map_err(|e| format!("workload failed: {e}"))?;
    if json {
        let line = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("report failed to serialise: {e}"))?;
        println!("{line}");
        return Ok(());
    }
    print_report(&report);
    Ok(())
}

/// Human-readable rendering of a [`run_workload`] report.
fn print_report(report: &Value) {
    let f = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
    let u = |v: &Value, key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let ctl = &report["controller"];
    let enabled = ctl.get("enabled").and_then(Value::as_bool).unwrap_or(false);
    println!(
        "workload on {}: trace {}, horizon {}, controller {}",
        report.get("device").and_then(Value::as_str).unwrap_or("?"),
        report["trace"]
            .get("spec")
            .and_then(Value::as_str)
            .unwrap_or("?"),
        ms(f(&report["trace"], "horizon_seconds")),
        if enabled { "on" } else { "off" },
    );
    if enabled {
        let beats = report
            .get("controller_beats_best_static")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        println!(
            "controller: {} switch(es) in budget {}, worst p99 {} ({} best static share)",
            u(ctl, "replans"),
            u(ctl, "replan_budget"),
            ms(f(report, "worst_p99_seconds")),
            if beats { "beats" } else { "does not beat" },
        );
    } else {
        println!(
            "best static share: worst p99 {}",
            ms(f(report, "worst_p99_seconds"))
        );
    }
    println!();
    let mut table = Table::new([
        "model", "arrivals", "batches", "dropped", "p50", "p99", "mean", "SLO miss",
    ]);
    if let Some(tenants) = report.get("tenants").and_then(Value::as_array) {
        for t in tenants {
            // The `1.0×` anchor point of the violation curve.
            let miss = t
                .get("slo_violation_curve")
                .and_then(Value::as_array)
                .and_then(|c| c.get(1))
                .map_or(f64::NAN, |p| f(p, "fraction"));
            table.row([
                t.get("model")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                u(t, "arrivals").to_string(),
                u(t, "batches").to_string(),
                u(t, "dropped").to_string(),
                ms(f(t, "p50_seconds")),
                ms(f(t, "p99_seconds")),
                ms(f(t, "mean_seconds")),
                format!("{:.1}%", 100.0 * miss),
            ]);
        }
    }
    table.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn rejects_bad_flags_and_tenant_lists() {
        assert!(run(&s(&["--frob"])).is_err());
        assert!(run(&s(&["--models", "alexnet"])).is_err(), "one model");
        assert!(run(&s(&["--models", "alexnet,unknown-net"])).is_err());
        assert!(run(&s(&["--models", "alexnet,squeezenet", "--steps", "1"])).is_err());
        assert!(run(&s(&[
            "--models",
            "alexnet,squeezenet",
            "--controller",
            "maybe"
        ]))
        .is_err());
        assert!(run(&s(&["--models", "alexnet,squeezenet", "--device", "asic"])).is_err());
    }

    #[test]
    fn runs_an_inline_replay_trace() {
        run(&s(&[
            "--models",
            "alexnet,squeezenet",
            "--trace",
            "replay:0,0.01,0.02;replay:0.005",
            "--steps",
            "2",
            "--jobs",
            "2",
        ]))
        .expect("a tiny replay trace runs");
    }
}
