//! Minimal flag parsing (no external dependencies).

use lcmm_fpga::Precision;
use lcmm_graph::Graph;

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// `--model <name>`.
    pub model: Option<String>,
    /// `--precision <8|16|32>`.
    pub precision: Option<Precision>,
    /// `--block <label>` (footprint).
    pub block: Option<String>,
    /// `--json` — emit machine-readable output where supported.
    pub json: bool,
}

impl Opts {
    /// Parses `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--model" => {
                    opts.model =
                        Some(it.next().ok_or("--model needs a value")?.clone());
                }
                "--precision" => {
                    let v = it.next().ok_or("--precision needs a value")?;
                    opts.precision = Some(match v.as_str() {
                        "8" => Precision::Fix8,
                        "16" => Precision::Fix16,
                        "32" => Precision::Float32,
                        other => return Err(format!("unknown precision {other:?}")),
                    });
                }
                "--block" => {
                    opts.block =
                        Some(it.next().ok_or("--block needs a value")?.clone());
                }
                "--json" => opts.json = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Resolves `--model`, defaulting to `default_name`.
    pub fn model_or(&self, default_name: &str) -> Result<Graph, String> {
        let name = self.model.as_deref().unwrap_or(default_name);
        lcmm_graph::zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))
    }

    /// Resolves `--precision`, defaulting to `default`.
    pub fn precision_or(&self, default: Precision) -> Precision {
        self.precision.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let o = Opts::parse(&s(&["--model", "googlenet", "--precision", "8", "--json"])).unwrap();
        assert_eq!(o.model.as_deref(), Some("googlenet"));
        assert_eq!(o.precision, Some(Precision::Fix8));
        assert!(o.json);
    }

    #[test]
    fn rejects_unknown() {
        assert!(Opts::parse(&s(&["--frob"])).is_err());
        assert!(Opts::parse(&s(&["--precision", "7"])).is_err());
        assert!(Opts::parse(&s(&["--model"])).is_err());
    }

    #[test]
    fn model_resolution() {
        let o = Opts::default();
        assert!(o.model_or("googlenet").is_ok());
        assert!(o.model_or("nonexistent").is_err());
    }
}
