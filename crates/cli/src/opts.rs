//! Minimal flag parsing (no external dependencies).

use lcmm_fpga::Precision;
use lcmm_graph::Graph;

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// `--model <name>`.
    pub model: Option<String>,
    /// `--precision <8|16|32>`.
    pub precision: Option<Precision>,
    /// `--block <label>` (footprint).
    pub block: Option<String>,
    /// `--json` — emit machine-readable output where supported.
    pub json: bool,
    /// `--jobs <N>` — harness worker threads (default: all cores).
    pub jobs: Option<usize>,
    /// `--profile` — per-pass timing/counter JSON on stderr.
    pub profile: bool,
    /// `--seeds <N>` — random audit graphs (audit command).
    pub seeds: Option<usize>,
    /// `--tiny-sram <N>` — tiny-SRAM streaming audit cases (audit
    /// command).
    pub tiny_sram: Option<usize>,
    /// `--repros <dir>` — repro corpus directory (audit command).
    pub repros: Option<String>,
    /// `--fractions <a/b,c/d,…>` — SRAM budget fractions
    /// (sweep-budgets / sweep-fusion commands).
    pub fractions: Option<Vec<(u64, u64)>>,
    /// `--fusion <N>` — fused-plan audit cases (audit command; 0
    /// disables the fused batch).
    pub fusion: Option<usize>,
}

/// Parses one budget fraction: `a/b` (exact rational) or a bare
/// integer `n` (meaning `n/1`). Zero denominators and zero-valued
/// fractions are rejected — a zero budget is a degenerate case the
/// sweep covers explicitly, not via flag typos.
fn parse_fraction(text: &str) -> Result<(u64, u64), String> {
    let (num, den) = match text.split_once('/') {
        Some((n, d)) => (n.trim(), d.trim()),
        None => (text.trim(), "1"),
    };
    let num: u64 = num
        .parse()
        .map_err(|_| format!("bad fraction numerator in {text:?}"))?;
    let den: u64 = den
        .parse()
        .map_err(|_| format!("bad fraction denominator in {text:?}"))?;
    if den == 0 {
        return Err(format!("zero denominator in fraction {text:?}"));
    }
    if num == 0 {
        return Err(format!("zero-valued fraction {text:?}"));
    }
    Ok((num, den))
}

impl Opts {
    /// Parses `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--model" => {
                    opts.model = Some(it.next().ok_or("--model needs a value")?.clone());
                }
                "--precision" => {
                    let v = it.next().ok_or("--precision needs a value")?;
                    opts.precision = Some(match v.as_str() {
                        "8" => Precision::Fix8,
                        "16" => Precision::Fix16,
                        "32" => Precision::Float32,
                        other => return Err(format!("unknown precision {other:?}")),
                    });
                }
                "--block" => {
                    opts.block = Some(it.next().ok_or("--block needs a value")?.clone());
                }
                "--json" => opts.json = true,
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--jobs needs a positive integer, got {v:?}"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                    opts.jobs = Some(n);
                }
                "--profile" => opts.profile = true,
                "--seeds" => {
                    let v = it.next().ok_or("--seeds needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--seeds needs a non-negative integer, got {v:?}"))?;
                    opts.seeds = Some(n);
                }
                "--tiny-sram" => {
                    let v = it.next().ok_or("--tiny-sram needs a value")?;
                    let n: usize = v.parse().map_err(|_| {
                        format!("--tiny-sram needs a non-negative integer, got {v:?}")
                    })?;
                    opts.tiny_sram = Some(n);
                }
                "--repros" => {
                    opts.repros = Some(it.next().ok_or("--repros needs a value")?.clone());
                }
                "--fusion" => {
                    let v = it.next().ok_or("--fusion needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--fusion needs a non-negative integer, got {v:?}"))?;
                    opts.fusion = Some(n);
                }
                "--fractions" => {
                    let v = it.next().ok_or("--fractions needs a value")?;
                    let mut fractions = Vec::new();
                    for part in v.split(',') {
                        fractions.push(parse_fraction(part)?);
                    }
                    if fractions.is_empty() {
                        return Err("--fractions needs at least one fraction".to_string());
                    }
                    opts.fractions = Some(fractions);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Resolves `--model`, defaulting to `default_name`.
    pub fn model_or(&self, default_name: &str) -> Result<Graph, String> {
        let name = self.model.as_deref().unwrap_or(default_name);
        lcmm_graph::zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}"))
    }

    /// Resolves `--precision`, defaulting to `default`.
    pub fn precision_or(&self, default: Precision) -> Precision {
        self.precision.unwrap_or(default)
    }

    /// Resolves `--jobs`, defaulting to the machine's core count.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }

    /// The models to report on: `--model` or the whole benchmark suite.
    pub fn models_or_suite(&self) -> Result<Vec<lcmm_graph::Graph>, String> {
        match &self.model {
            Some(name) => {
                Ok(vec![lcmm_graph::zoo::by_name(name)
                    .ok_or_else(|| format!("unknown model {name:?}"))?])
            }
            None => Ok(lcmm_graph::zoo::benchmark_suite()),
        }
    }

    /// The precisions to report on: `--precision` or all three.
    pub fn precisions_or_all(&self) -> Vec<Precision> {
        match self.precision {
            Some(p) => vec![p],
            None => Precision::ALL.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let o = Opts::parse(&s(&[
            "--model",
            "googlenet",
            "--precision",
            "8",
            "--json",
            "--jobs",
            "3",
            "--profile",
            "--seeds",
            "4",
            "--repros",
            "checks/repros",
        ]))
        .unwrap();
        assert_eq!(o.model.as_deref(), Some("googlenet"));
        assert_eq!(o.precision, Some(Precision::Fix8));
        assert!(o.json);
        assert_eq!(o.jobs, Some(3));
        assert_eq!(o.jobs(), 3);
        assert!(o.profile);
        assert_eq!(o.seeds, Some(4));
        assert_eq!(o.repros.as_deref(), Some("checks/repros"));
    }

    #[test]
    fn rejects_unknown() {
        assert!(Opts::parse(&s(&["--frob"])).is_err());
        assert!(Opts::parse(&s(&["--precision", "7"])).is_err());
        assert!(Opts::parse(&s(&["--model"])).is_err());
        assert!(Opts::parse(&s(&["--jobs"])).is_err());
        assert!(Opts::parse(&s(&["--jobs", "0"])).is_err());
        assert!(Opts::parse(&s(&["--jobs", "many"])).is_err());
        assert!(Opts::parse(&s(&["--seeds"])).is_err());
        assert!(Opts::parse(&s(&["--seeds", "-1"])).is_err());
        assert!(Opts::parse(&s(&["--repros"])).is_err());
        assert!(Opts::parse(&s(&["--tiny-sram"])).is_err());
        assert!(Opts::parse(&s(&["--tiny-sram", "x"])).is_err());
        assert!(Opts::parse(&s(&["--fusion"])).is_err());
        assert!(Opts::parse(&s(&["--fusion", "x"])).is_err());
        assert!(Opts::parse(&s(&["--fractions"])).is_err());
        assert!(Opts::parse(&s(&["--fractions", "1/0"])).is_err());
        assert!(Opts::parse(&s(&["--fractions", "0/4"])).is_err());
        assert!(Opts::parse(&s(&["--fractions", "a/4"])).is_err());
    }

    #[test]
    fn parses_fractions_and_tiny_sram() {
        let o = Opts::parse(&s(&[
            "--fractions",
            "1/16, 1/8,1",
            "--tiny-sram",
            "2",
            "--fusion",
            "0",
        ]))
        .unwrap();
        assert_eq!(
            o.fractions,
            Some(vec![(1, 16), (1, 8), (1, 1)]),
            "exact rational parsing"
        );
        assert_eq!(o.tiny_sram, Some(2));
        assert_eq!(o.fusion, Some(0));
    }

    #[test]
    fn jobs_defaults_to_cores() {
        let o = Opts::default();
        assert!(o.jobs() >= 1);
    }

    #[test]
    fn model_resolution() {
        let o = Opts::default();
        assert!(o.model_or("googlenet").is_ok());
        assert!(o.model_or("nonexistent").is_err());
    }
}
