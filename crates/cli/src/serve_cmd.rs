//! The `lcmm serve` daemon and `lcmm request` client subcommands.
//!
//! These deliberately bypass the report-style [`crate::opts::Opts`]
//! parser: a daemon has sizing flags (`--workers`, `--queue`,
//! `--cache`) and a listen target, a client has an endpoint and a
//! request to send — none of which overlap the grid-report options.

use lcmm_serve::client::{request as send_request, Endpoint};
use lcmm_serve::{serve_stdio, serve_tcp, serve_unix, FsyncPolicy, ServerConfig};
use serde_json::Value;
use std::path::PathBuf;
use std::time::Duration;

/// Where `lcmm serve` listens.
enum Listen {
    Stdio,
    Tcp(String),
    Unix(PathBuf),
}

/// Runs `lcmm serve [--stdio | --listen <addr> | --socket <path>]
/// [--workers N] [--queue N] [--cache N] [--wal-dir <dir>]
/// [--fsync always|os] [--no-recover] [--stall-ms N|off]
/// [--debug-hooks]`.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut listen = Listen::Stdio;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stdio" => listen = Listen::Stdio,
            "--listen" => {
                let addr = it.next().ok_or("--listen needs an address")?;
                listen = Listen::Tcp(addr.clone());
            }
            "--socket" => {
                let path = it.next().ok_or("--socket needs a path")?;
                listen = Listen::Unix(PathBuf::from(path));
            }
            "--workers" => config = config.with_workers(count(&mut it, "--workers")?),
            "--queue" => config = config.with_queue_capacity(count(&mut it, "--queue")?),
            "--cache" => {
                let v = it.next().ok_or("--cache needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--cache needs a non-negative integer, got {v:?}"))?;
                config = config.with_cache_capacity(n);
            }
            "--wal-dir" => {
                let dir = it.next().ok_or("--wal-dir needs a directory")?;
                config = config.with_wal_dir(PathBuf::from(dir));
            }
            "--fsync" => {
                let policy = it.next().ok_or("--fsync needs always or os")?;
                config = config.with_fsync(FsyncPolicy::parse(policy)?);
            }
            "--no-recover" => config = config.with_recover(false),
            "--stall-ms" => {
                let v = it.next().ok_or("--stall-ms needs a value or off")?;
                let budget = if v == "off" {
                    None
                } else {
                    let ms: u64 = v.parse().map_err(|_| {
                        format!("--stall-ms needs a positive integer or off, got {v:?}")
                    })?;
                    if ms == 0 {
                        return Err("--stall-ms must be at least 1 (or off)".to_string());
                    }
                    Some(Duration::from_millis(ms))
                };
                config = config.with_stall_budget(budget);
            }
            "--debug-hooks" => config = config.with_debug_hooks(true),
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    if config.wal_dir.is_none() && !config.recover {
        return Err("--no-recover only makes sense together with --wal-dir".to_string());
    }
    let served = match listen {
        Listen::Stdio => serve_stdio(config),
        Listen::Tcp(addr) => serve_tcp(config, &addr),
        Listen::Unix(path) => serve_unix(config, &path),
    };
    served.map_err(|e| format!("serve failed: {e}"))
}

/// Runs `lcmm request --connect <endpoint> (<json-line> | --graph <name>
/// [--device <name>] [--precision <8|16|32>] [--allocator <name>]
/// [--deadline-ms <N>] [--stats] | --op <ping|stats|shutdown>)`.
pub fn run_request(args: &[String]) -> Result<(), String> {
    let mut connect: Option<String> = None;
    let mut raw: Option<String> = None;
    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(it.next().ok_or("--connect needs an endpoint")?.clone());
            }
            "--graph" => {
                let name = it.next().ok_or("--graph needs a model name")?;
                fields.push(("graph".to_string(), Value::Str(name.clone())));
            }
            "--device" => {
                let name = it.next().ok_or("--device needs a device name")?;
                fields.push(("device".to_string(), Value::Str(name.clone())));
            }
            "--precision" => {
                let v = it.next().ok_or("--precision needs a value")?;
                fields.push(("precision".to_string(), Value::Str(v.clone())));
            }
            "--allocator" => {
                let v = it.next().ok_or("--allocator needs a name")?;
                fields.push(("allocator".to_string(), Value::Str(v.clone())));
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--deadline-ms needs an integer, got {v:?}"))?;
                fields.push(("deadline_ms".to_string(), Value::U64(ms)));
            }
            "--stats" => fields.push(("include_stats".to_string(), Value::Bool(true))),
            "--op" => {
                let op = it.next().ok_or("--op needs ping, stats or shutdown")?;
                fields.push(("op".to_string(), Value::Str(op.clone())));
            }
            other if other.starts_with('{') => raw = Some(other.to_string()),
            other => return Err(format!("unknown request flag {other:?}")),
        }
    }
    let endpoint = Endpoint::parse(&connect.ok_or("request needs --connect <endpoint>")?);
    let line = match (raw, fields.is_empty()) {
        (Some(raw), true) => raw,
        (Some(_), false) => {
            return Err("pass either a raw JSON line or request flags, not both".to_string())
        }
        (None, true) => return Err("nothing to send: pass a JSON line or --graph/--op".to_string()),
        (None, false) => serde_json::to_string(&Value::Map(fields))
            .map_err(|e| format!("request failed to serialise: {e}"))?,
    };
    let response =
        send_request(&endpoint, &line).map_err(|e| format!("request to {endpoint} failed: {e}"))?;
    println!("{response}");
    let ok = serde_json::from_str::<Value>(&response)
        .ok()
        .and_then(|v| v.get("ok").and_then(Value::as_bool))
        .unwrap_or(false);
    if ok {
        Ok(())
    } else {
        Err("daemon answered with an error (see response above)".to_string())
    }
}

/// Parses a positive-integer flag value.
fn count<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    let n: usize = v
        .parse()
        .map_err(|_| format!("{flag} needs a positive integer, got {v:?}"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(run_serve(&s(&["--frob"])).is_err());
        assert!(run_serve(&s(&["--workers", "0"])).is_err());
        assert!(run_serve(&s(&["--listen"])).is_err());
        assert!(run_serve(&s(&["--cache", "lots"])).is_err());
        assert!(run_serve(&s(&["--wal-dir"])).is_err());
        assert!(run_serve(&s(&["--fsync", "sometimes"])).is_err());
        assert!(run_serve(&s(&["--stall-ms", "0"])).is_err());
        assert!(run_serve(&s(&["--stall-ms", "soon"])).is_err());
        assert!(run_serve(&s(&["--no-recover"]))
            .unwrap_err()
            .contains("--wal-dir"));
    }

    #[test]
    fn request_requires_connect_and_payload() {
        assert!(run_request(&s(&["--graph", "alexnet"]))
            .unwrap_err()
            .contains("--connect"));
        assert!(run_request(&s(&["--connect", "127.0.0.1:1"]))
            .unwrap_err()
            .contains("nothing to send"));
        assert!(run_request(&s(&[
            "--connect",
            "127.0.0.1:1",
            "{\"op\":\"ping\"}",
            "--graph",
            "alexnet"
        ]))
        .unwrap_err()
        .contains("not both"));
    }
}
