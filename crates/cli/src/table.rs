//! Plain-text table rendering.

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds as milliseconds with three decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats ops/s as Tops with three decimals.
pub fn tops(ops_per_sec: f64) -> String {
    format!("{:.3}", ops_per_sec / 1e12)
}

/// Formats a fraction as a percentage without decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.0}", fraction * 100.0)
}

/// Formats bytes as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["123", "4"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[0].contains('a'));
        assert!(lines[2].contains("123"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.001234), "1.234");
        assert_eq!(tops(1.5e12), "1.500");
        assert_eq!(pct(0.873), "87");
        assert_eq!(mib(2 << 20), "2.0");
    }
}
