//! `lcmm` — the experiment harness.
//!
//! Each subcommand regenerates one table or figure of the DAC'19 paper
//! from the model and simulator in this repository:
//!
//! ```text
//! lcmm roofline       Fig. 2(a): per-layer roofline of Inception-v4
//! lcmm design-space   Fig. 2(b): block-level residency design space
//! lcmm footprint      Fig. 3:    memory footprint of inception_c1
//! lcmm table1                      UMM vs LCMM across the suite
//! lcmm table2                      on-chip memory utilisation + POL
//! lcmm table3                      vs state-of-the-art analogues
//! lcmm fig8           Fig. 8:    GoogLeNet per-block pass ablation
//! lcmm validate       A3:        analytic model vs simulator
//! lcmm audit          A4:        differential audit with repro shrinking
//! lcmm ablation       A1/A2:     allocators and splitting
//! lcmm summary                     model zoo statistics
//! lcmm all                         everything above, in order
//! ```
//!
//! Options: `--model <name>`, `--precision <8|16|32>` where relevant;
//! `--jobs <N>` sizes the parallel evaluation harness (output is
//! byte-identical for any `N`) and `--profile` dumps per-pass
//! timing/counter JSON on stderr.

mod multi_cmd;
mod opts;
mod report;
mod serve_cmd;
mod table;
mod workload_cmd;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // The daemon/client subcommands have their own flag sets; dispatch
    // them before the grid-report option parser sees (and rejects) them.
    if let "serve" | "request" | "multi" | "workload" = command.as_str() {
        let run = match command.as_str() {
            "serve" => serve_cmd::run_serve(rest),
            "multi" => multi_cmd::run(rest),
            "workload" => workload_cmd::run(rest),
            _ => serve_cmd::run_request(rest),
        };
        return match run {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match opts::Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // One shared harness per invocation: the grid reports fan out over
    // `--jobs` threads and share memoized designs/profiles/results.
    let harness = lcmm_core::Harness::new(opts.jobs());
    let result = match command.as_str() {
        "roofline" => report::fig2a::run(&opts),
        "design-space" => report::fig2b::run(&opts),
        "footprint" => report::fig3::run(&opts),
        "table1" => report::table1::run(&opts, &harness),
        "table2" => report::table2::run(&opts, &harness),
        "table3" => report::table3::run(&opts, &harness),
        "fig7" => report::fig7::run(&opts),
        "fig8" => report::fig8::run(&opts, &harness),
        "validate" => report::validate::run(&opts),
        "audit" => report::audit_cmd::run(&opts),
        "ablation" => report::ablation::run(&opts),
        "sensitivity" => report::sensitivity::run_bandwidth(&opts, &harness),
        "batch-study" => report::sensitivity::run_batch(&opts, &harness),
        "devices" => report::sensitivity::run_devices(&opts, &harness),
        "granular" => report::sensitivity::run_granular(&opts, &harness),
        "energy" => report::energy_cmd::run(&opts),
        "calibrate" => report::calibrate_cmd::run(&opts),
        "summary" => report::summary::run(&opts, &harness),
        "sweep-budgets" => report::sweep_budgets::run(&opts, &harness),
        "sweep-fusion" => report::sweep_fusion::run(&opts, &harness),
        "export" => report::export::run(&opts),
        "manifest" => report::manifest_cmd::run(&opts),
        "trace" => report::trace_cmd::run(&opts),
        "all" => report::all(&opts, &harness),
        _ => {
            eprintln!("error: unknown command {command:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if opts.profile {
        // Stderr, so `--json` stdout stays byte-identical with and
        // without profiling.
        match serde_json::to_string_pretty(&harness.profile_report()) {
            Ok(json) => eprintln!("{json}"),
            Err(e) => eprintln!("error: profile report failed to serialise: {e}"),
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: lcmm <command> [--model <name>] [--precision <8|16|32>]
                    [--jobs <N>] [--profile] [--json]

options:
  --model <name>       restrict grid reports to one model
  --precision <8|16|32> restrict grid reports to one precision
  --jobs <N>           harness worker threads (default: all cores);
                       output is byte-identical for any N
  --profile            per-pass timing/counter JSON on stderr
  --json               machine-readable output where supported
  --seeds <N>          audit: number of seeded random graphs (default 8)
  --tiny-sram <N>      audit: tiny-SRAM streaming cases (default 2)
  --repros <dir>       audit: repro corpus directory (default checks/repros)
  --fractions <list>   sweep-budgets/sweep-fusion: comma-separated budget
                       fractions, e.g. 1/16,1/8,1 (default 1/16,1/8,1/4,1/2,1)
  --fusion <N>         audit: fused-plan audit cases (default 2, 0 disables)

commands:
  roofline      Fig. 2(a)  per-layer roofline characterisation
  design-space  Fig. 2(b)  block-level residency design space
  footprint     Fig. 3     memory footprint timeline (UMM vs LCMM)
  table1        Table 1    UMM vs LCMM: latency/throughput/resources
  table2        Table 2    on-chip memory utilisation and POL
  table3        Table 3    comparison with state-of-the-art analogues
  fig7          Fig. 7     DNNK metric tables (buffers/tensors/ops)
  fig8          Fig. 8     GoogLeNet per-block pass ablation
  validate      A3         analytic model vs event-driven simulator
  audit         A4         differential audit: invariants + classified
                           model-vs-simulator divergences over a grid;
                           failing random graphs are shrunk into
                           checks/repros/ (see --seeds, --repros)
  ablation      A1/A2      allocator and splitting ablations
  sensitivity   S1         DDR-efficiency calibration sweep
  batch-study   S2         batch-size scaling of the LCMM advantage
  devices       S3         embedded / VU9P / VU13P device scaling
  granular      S4         uniform vs granularity-derived DRAM model
  energy        S5         energy breakdown of UMM vs LCMM
  sweep-budgets S6         AutoWS study: UMM vs pinned vs streaming
                           LCMM across SRAM budgets (see --fractions)
  sweep-fusion  S7         fused-layer study: fusion off vs auto across
                           SRAM budgets (see --fractions)
  calibrate     S0         re-derive the DDR-efficiency calibration
  summary                  model zoo statistics
  export                   dump a model as DOT (or JSON with --json)
  manifest                 allocation manifest (buffers/addresses/prefetches)
  trace                    Chrome-trace JSON of one simulated inference
  all                      run every report in order
  serve                    planning daemon (JSON-lines; see docs/SERVE.md):
                           --stdio | --listen <addr> | --socket <path>,
                           --workers <N> --queue <N> --cache <N>,
                           --wal-dir <dir> [--fsync always|os] [--no-recover]
                           (crash-safe registry/cache recovery),
                           --stall-ms <N|off> (worker stall budget),
                           --debug-hooks (fault-injection for tests)
  request                  one-shot client for a running daemon:
                           --connect <addr|path> and either a raw JSON
                           line or --graph/--device/--precision/
                           --allocator/--deadline-ms/--stats/--op
  multi                    co-plan several networks on one device:
                           --models <a,b,...> [--shares <s,s,...>]
                           [--device <name>] [--precision <8|16|32>]
                           [--steps <N>] [--jobs <N>] [--json]
  workload                 trace-driven traffic simulation over a share
                           grid (see docs/WORKLOAD.md):
                           --models <a,b,...> [--trace <spec|file>]
                           [--controller on|off] [--device <name>]
                           [--precision <8|16|32>] [--steps <N>]
                           [--jobs <N>] [--json]

models: alexnet mobilenet squeezenet vgg16 resnet50 resnet101 resnet152 googlenet
        inception_v4 inception_resnet_v2 densenet121";
