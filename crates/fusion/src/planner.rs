//! Candidate enumeration, the per-tile cost model and the deterministic
//! group-selection DP.

use crate::model::{ExternalReload, FusedGroup, FusionPlan, MemberFactor};
use lcmm_fpga::{AccelDesign, GraphProfile};
use lcmm_graph::{Graph, NodeId, OpKind};

/// Upper bound on the number of layers in a single fused group. Longer
/// runs compound the halo growth of stacked strided layers until the
/// recomputation factor dwarfs the eliminated transfers, so candidates
/// beyond this depth are never worth costing.
pub const MAX_GROUP_NODES: usize = 8;

/// Tile counts tried per candidate, smallest (least recomputation,
/// largest staging footprint) first.
const TILE_CHOICES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Benefit below this threshold is treated as zero so float noise never
/// flips group selection between runs.
const MIN_BENEFIT_SECONDS: f64 = 1e-12;

/// Hardware parameters the per-tile cost model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// On-chip staging capacity available to hold the per-member tile
    /// rows of a fused group (bytes).
    pub staging_bytes: u64,
    /// Bytes per tensor element at the design's precision.
    pub bytes_per_elem: u64,
}

impl FusionConfig {
    /// Derives the config from an accelerator design point: staging is
    /// the double-buffered tile capacity, element width follows the
    /// design precision.
    #[must_use]
    pub fn from_design(design: &AccelDesign) -> Self {
        Self {
            staging_bytes: design.tile_budget.total_double_buffered(),
            bytes_per_elem: design.precision.bytes(),
        }
    }
}

/// Enumerates candidate fused groups over `graph`, costs each against
/// `profile` with the per-tile halo model, and selects a non-overlapping
/// set maximising total modelled benefit via a deterministic
/// weighted-interval DP.
///
/// Only groups that strictly reduce **both** the summed Eq. 1 row
/// latency (under empty residency) and the summed off-chip transfer
/// time survive costing, so an applied plan never trades transfers up.
/// The same `(graph, profile, config)` always yields the same plan.
#[must_use]
pub fn plan(graph: &Graph, profile: &GraphProfile, config: &FusionConfig) -> FusionPlan {
    let candidates = enumerate(graph, profile, config);
    select(graph.len(), candidates)
}

/// All positively-scored candidate groups, in ascending `(start, end)`
/// order.
fn enumerate(graph: &Graph, profile: &GraphProfile, config: &FusionConfig) -> Vec<FusedGroup> {
    let n = graph.len();
    let mut out = Vec::new();
    for a in 0..n {
        if !fusable(graph, NodeId::new(a)) {
            continue;
        }
        let upper = (a + MAX_GROUP_NODES).min(n);
        for b in (a + 1)..upper {
            if !fusable(graph, NodeId::new(b)) {
                break;
            }
            if !contained(graph, a, b) {
                continue;
            }
            if let Some(group) = cost_group(graph, profile, config, a, b) {
                out.push(group);
            }
        }
    }
    out
}

/// Whether `id` may be a member of a fused group: it must be a
/// spatially-tileable layer (conv / pool / element-wise add) and none
/// of its inputs may be a concat node — concat is address aliasing, so
/// profile rows list the concat's *sources*, which would no longer line
/// up with the raw graph edges the halo model walks.
fn fusable(graph: &Graph, id: NodeId) -> bool {
    let node = graph.node(id);
    if !matches!(
        node.op(),
        OpKind::Conv(_) | OpKind::Pool(_) | OpKind::EltwiseAdd
    ) {
        return false;
    }
    node.inputs()
        .iter()
        .all(|&s| !matches!(graph.node(s).op(), OpKind::Concat))
}

/// Whether every non-last member of `[a..=b]` is consumed only inside
/// the interval (so its output tensor can be eliminated entirely).
fn contained(graph: &Graph, a: usize, b: usize) -> bool {
    (a..b).all(|m| {
        let consumers = graph.consumers(NodeId::new(m));
        !consumers.is_empty() && consumers.iter().all(|c| c.index() <= b)
    })
}

/// Costs `[a..=b]` with the per-tile halo model. Returns the group at
/// the smallest tile count whose staging footprint fits, or `None` when
/// no tile count fits or fusing does not strictly win on both latency
/// and transfer time.
fn cost_group(
    graph: &Graph,
    profile: &GraphProfile,
    config: &FusionConfig,
    a: usize,
    b: usize,
) -> Option<FusedGroup> {
    let out_height = graph.node(NodeId::new(b)).output_shape().height;
    for &tiles in &TILE_CHOICES {
        if tiles > out_height {
            break;
        }
        let Some(rows) = tile_rows(graph, a, b, tiles) else {
            continue;
        };
        if footprint_bytes(graph, config, a, &rows.need) > config.staging_bytes {
            continue;
        }
        let group = build_group(graph, profile, a, b, tiles, &rows);
        if group.benefit_seconds > MIN_BENEFIT_SECONDS && group.transfer_saved_seconds > 0.0 {
            return Some(group);
        }
        // A fitting tile count that still loses never improves by
        // tiling finer (recomputation only grows), so stop here.
        return None;
    }
    None
}

/// Per-member output rows needed per tile (`need`, indexed by offset
/// from `a`) and per-external-edge halo rows, derived by walking the
/// interval in reverse id order from the group output.
struct TileRows {
    need: Vec<usize>,
    external: Vec<(NodeId, NodeId, usize)>,
}

fn tile_rows(graph: &Graph, a: usize, b: usize, tiles: usize) -> Option<TileRows> {
    let mut need = vec![0usize; b - a + 1];
    need[b - a] = graph
        .node(NodeId::new(b))
        .output_shape()
        .height
        .div_ceil(tiles);
    let mut external = Vec::new();
    for m in (a..=b).rev() {
        let id = NodeId::new(m);
        let node = graph.node(id);
        let out_rows = need[m - a];
        if out_rows == 0 {
            // Unreachable from the output inside the interval: the
            // interval is not a single dataflow region; reject it.
            return None;
        }
        for &src in node.inputs() {
            let src_height = graph.node(src).output_shape().height;
            let rows = halo_rows(node.op(), out_rows).min(src_height);
            if src.index() >= a && src.index() < m {
                let slot = &mut need[src.index() - a];
                *slot = (*slot).max(rows);
            } else if src.index() < a {
                external.push((id, src, rows));
            } else {
                // A forward or self edge would violate topological order.
                return None;
            }
        }
    }
    Some(TileRows { need, external })
}

/// Input rows a single tile of `out_rows` output rows requires.
fn halo_rows(op: &OpKind, out_rows: usize) -> usize {
    match op {
        OpKind::Conv(p) => (out_rows - 1) * p.stride_h + p.kernel_h,
        OpKind::Pool(p) => (out_rows - 1) * p.stride + p.kernel,
        _ => out_rows,
    }
}

/// Bytes of staging needed to hold one tile's rows of every member.
fn footprint_bytes(graph: &Graph, config: &FusionConfig, a: usize, need: &[usize]) -> u64 {
    need.iter()
        .enumerate()
        .map(|(off, &rows)| {
            let shape = graph.node(NodeId::new(a + off)).output_shape();
            rows as u64 * (shape.channels * shape.width) as u64 * config.bytes_per_elem
        })
        .sum()
}

/// Assembles the group with its factors and scores it against the
/// original profile rows.
fn build_group(
    graph: &Graph,
    profile: &GraphProfile,
    a: usize,
    b: usize,
    tiles: usize,
    rows: &TileRows,
) -> FusedGroup {
    let output = NodeId::new(b);
    let nodes: Vec<NodeId> = (a..=b).map(NodeId::new).collect();
    let compute_factors: Vec<MemberFactor> = nodes
        .iter()
        .map(|&m| {
            let factor = if m == output {
                1.0
            } else {
                let height = graph.node(m).output_shape().height;
                ((tiles * rows.need[m.index() - a]) as f64 / height as f64).max(1.0)
            };
            MemberFactor { node: m, factor }
        })
        .collect();
    let external_reloads: Vec<ExternalReload> = rows
        .external
        .iter()
        .map(|&(consumer, source, halo)| {
            let src_height = graph.node(source).output_shape().height;
            ExternalReload {
                consumer,
                source,
                factor: ((tiles * halo) as f64 / src_height as f64).max(1.0),
            }
        })
        .collect();

    let mut orig_latency = 0.0;
    let mut fused_latency = 0.0;
    let mut orig_transfer = 0.0;
    let mut fused_transfer = 0.0;
    for &m in &nodes {
        let row = &profile.per_node[m.index()];
        let factor = compute_factors[m.index() - a].factor;
        let fused_compute = row.compute * factor;
        let fused_inputs: f64 = row
            .inputs
            .iter()
            .map(|&(src, term)| {
                if src.index() >= a && src.index() <= b {
                    0.0
                } else {
                    let reload = external_reloads
                        .iter()
                        .find(|e| e.consumer == m && e.source == src)
                        .map_or(1.0, |e| e.factor);
                    term * reload
                }
            })
            .sum();
        let fused_output = if m == output { row.output } else { 0.0 };
        orig_latency += row.off_chip_latency();
        fused_latency += fused_compute
            .max(fused_inputs)
            .max(row.weight)
            .max(fused_output);
        orig_transfer += row.input_total() + row.weight + row.output;
        fused_transfer += fused_inputs + row.weight + fused_output;
    }

    FusedGroup {
        nodes,
        output,
        tiles,
        compute_factors,
        external_reloads,
        benefit_seconds: orig_latency - fused_latency,
        transfer_saved_seconds: orig_transfer - fused_transfer,
    }
}

/// Weighted-interval-scheduling DP over the candidate intervals. Strict
/// improvement (`>`) on every transition keeps ties resolved toward the
/// earliest-enumerated candidate, so selection is deterministic.
fn select(n: usize, candidates: Vec<FusedGroup>) -> FusionPlan {
    if candidates.is_empty() {
        return FusionPlan::default();
    }
    let mut by_end: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, g) in candidates.iter().enumerate() {
        by_end[g.output.index()].push(i);
    }
    let mut best = vec![0.0f64; n + 1];
    let mut choice: Vec<Option<usize>> = vec![None; n + 1];
    for i in 0..n {
        best[i + 1] = best[i];
        for &ci in &by_end[i] {
            let start = candidates[ci].nodes[0].index();
            let total = best[start] + candidates[ci].benefit_seconds;
            if total > best[i + 1] {
                best[i + 1] = total;
                choice[i + 1] = Some(ci);
            }
        }
    }
    let mut selected = Vec::new();
    let mut i = n;
    while i > 0 {
        match choice[i] {
            Some(ci) => {
                i = candidates[ci].nodes[0].index();
                selected.push(candidates[ci].clone());
            }
            None => i -= 1,
        }
    }
    FusionPlan::from_groups(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_fpga::{Device, Precision};
    use lcmm_graph::zoo;

    fn setup(graph: &Graph) -> (AccelDesign, GraphProfile, FusionConfig) {
        let design = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(graph);
        let config = FusionConfig::from_design(&design);
        (design, profile, config)
    }

    #[test]
    fn chain_networks_yield_groups() {
        for graph in [zoo::vgg16(), zoo::resnet50(), zoo::mobilenet()] {
            let (_, profile, config) = setup(&graph);
            let plan = plan(&graph, &profile, &config);
            assert!(
                !plan.is_empty(),
                "expected fused groups on a chain/residual net"
            );
            for g in &plan.groups {
                assert!(g.nodes.len() >= 2);
                assert!(g.benefit_seconds > 0.0);
                assert!(g.transfer_saved_seconds > 0.0);
                assert_eq!(*g.nodes.last().unwrap(), g.output);
            }
        }
    }

    #[test]
    fn groups_never_overlap() {
        for graph in [zoo::resnet50(), zoo::googlenet(), zoo::mobilenet()] {
            let (_, profile, config) = setup(&graph);
            let plan = plan(&graph, &profile, &config);
            let mut seen = std::collections::HashSet::new();
            for g in &plan.groups {
                for &m in &g.nodes {
                    assert!(seen.insert(m), "node {m:?} appears in two groups");
                }
            }
        }
    }

    #[test]
    fn applied_plan_strictly_reduces_profile_totals() {
        for graph in [zoo::resnet50(), zoo::mobilenet()] {
            let (_, profile, config) = setup(&graph);
            let plan = plan(&graph, &profile, &config);
            assert!(!plan.is_empty());
            let fused = plan.apply(&profile);
            assert!(fused.validate().is_ok());
            assert!(
                fused.total_latency() < profile.total_latency(),
                "fused worst-case latency must strictly drop"
            );
            let transfer = |p: &GraphProfile| -> f64 {
                p.per_node
                    .iter()
                    .map(|r| r.input_total() + r.weight + r.output)
                    .sum()
            };
            assert!(transfer(&fused) < transfer(&profile));
        }
    }

    #[test]
    fn interior_tensors_carry_no_transfers_after_apply() {
        let graph = zoo::resnet50();
        let (_, profile, config) = setup(&graph);
        let plan = plan(&graph, &profile, &config);
        let fused = plan.apply(&profile);
        for &id in plan.eliminated() {
            assert_eq!(fused.per_node[id.index()].output, 0.0);
            for row in &fused.per_node {
                for &(src, term) in &row.inputs {
                    if src == id {
                        assert_eq!(term, 0.0, "eliminated tensor still read off-chip");
                    }
                }
            }
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let graph = zoo::resnet50();
        let (_, profile, config) = setup(&graph);
        let first = plan(&graph, &profile, &config);
        for _ in 0..3 {
            assert_eq!(plan(&graph, &profile, &config), first);
        }
    }

    #[test]
    fn tiny_staging_budget_rejects_all_groups() {
        let graph = zoo::vgg16();
        let (_, profile, mut config) = setup(&graph);
        config.staging_bytes = 1;
        assert!(plan(&graph, &profile, &config).is_empty());
    }

    #[test]
    fn residual_diamonds_fuse_with_external_shortcut_reload() {
        let graph = zoo::resnet50();
        let (_, profile, config) = setup(&graph);
        let plan = plan(&graph, &profile, &config);
        let diamond = plan.groups.iter().find(|g| {
            matches!(graph.node(g.output).op(), OpKind::EltwiseAdd)
                || g.nodes
                    .iter()
                    .any(|&m| matches!(graph.node(m).op(), OpKind::EltwiseAdd))
        });
        assert!(
            diamond.is_some(),
            "resnet should fuse at least one residual join"
        );
        for g in &plan.groups {
            for e in &g.external_reloads {
                assert!(e.factor >= 1.0);
                assert!(e.source.index() < g.nodes[0].index());
            }
        }
    }
}
