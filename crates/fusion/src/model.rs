//! The fused-group data model and the profile transform it induces.

use lcmm_fpga::GraphProfile;
use lcmm_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Compute-inflation factor of one group member: executing the group
/// tile-by-tile recomputes this member's halo rows once per tile, so
/// its compute term scales by `factor >= 1` (the group output itself is
/// never recomputed and carries factor 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberFactor {
    /// The member node.
    pub node: NodeId,
    /// Compute multiplier, `>= 1`.
    pub factor: f64,
}

/// Halo re-load factor of one external input edge: every tile re-reads
/// the consumer's input halo from the (group-external) source tensor,
/// so the corresponding input transfer term scales by `factor >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExternalReload {
    /// The in-group consumer node.
    pub consumer: NodeId,
    /// The group-external source whose rows are re-loaded.
    pub source: NodeId,
    /// Input-transfer multiplier, `>= 1`.
    pub factor: f64,
}

/// One selected fused group: a contiguous (in `NodeId` order) run of
/// layers with a single output node, executed as one tile loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedGroup {
    /// Member nodes in id (= topological) order; the last is `output`.
    pub nodes: Vec<NodeId>,
    /// The single node whose output leaves the group.
    pub output: NodeId,
    /// Number of row-band tiles the group output is split into.
    pub tiles: usize,
    /// Per-member compute inflation, aligned with `nodes`.
    pub compute_factors: Vec<MemberFactor>,
    /// Halo re-load factors of the group's external input edges.
    pub external_reloads: Vec<ExternalReload>,
    /// Modelled latency reduction of fusing this group (seconds, Eq. 1
    /// row latency under empty residency).
    pub benefit_seconds: f64,
    /// Modelled off-chip transfer time eliminated (seconds, strictly
    /// positive for every selected group).
    pub transfer_saved_seconds: f64,
}

impl FusedGroup {
    /// The interior members whose output tensors are eliminated (every
    /// member except the group output).
    pub fn interior(&self) -> impl Iterator<Item = NodeId> + '_ {
        let output = self.output;
        self.nodes.iter().copied().filter(move |&n| n != output)
    }
}

/// A non-overlapping set of fused groups plus the index structures the
/// pipeline needs to apply them. Empty plans (`FusionPlan::default()`)
/// behave as "fusion off" everywhere.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FusionPlan {
    /// Selected groups in ascending id order; member intervals never
    /// overlap.
    pub groups: Vec<FusedGroup>,
    /// Sorted ids of all eliminated interior tensors, for membership
    /// queries.
    eliminated: Vec<NodeId>,
}

impl FusionPlan {
    /// Builds a plan from already-selected groups (the planner's
    /// constructor; also useful in tests).
    #[must_use]
    pub fn from_groups(mut groups: Vec<FusedGroup>) -> Self {
        groups.sort_by_key(|g| g.nodes[0]);
        let mut eliminated: Vec<NodeId> = groups.iter().flat_map(FusedGroup::interior).collect();
        eliminated.sort_unstable();
        Self { groups, eliminated }
    }

    /// Whether no groups were selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Whether `node`'s output tensor is eliminated by a fused group
    /// (i.e. it is an interior member and never materialises).
    #[must_use]
    pub fn eliminates(&self, node: NodeId) -> bool {
        self.eliminated.binary_search(&node).is_ok()
    }

    /// Ids of all eliminated interior tensors, ascending.
    #[must_use]
    pub fn eliminated(&self) -> &[NodeId] {
        &self.eliminated
    }

    /// Total member count across all groups.
    #[must_use]
    pub fn fused_nodes(&self) -> usize {
        self.groups.iter().map(|g| g.nodes.len()).sum()
    }

    /// Modelled latency reduction summed over all groups, seconds.
    #[must_use]
    pub fn benefit_seconds(&self) -> f64 {
        self.groups.iter().map(|g| g.benefit_seconds).sum()
    }

    /// Modelled transfer time eliminated summed over all groups, seconds.
    #[must_use]
    pub fn transfer_saved_seconds(&self) -> f64 {
        self.groups.iter().map(|g| g.transfer_saved_seconds).sum()
    }

    /// `(member, tiles)` for every member of every group — the
    /// simulator's tile table (members of unfused layers are absent).
    pub fn tile_table(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.groups
            .iter()
            .flat_map(|g| g.nodes.iter().map(move |&n| (n, g.tiles)))
    }

    /// Rewrites `profile` rows per the plan:
    ///
    /// - interior members: `output` term → 0 (the tensor never
    ///   materialises), compute term × recomputation factor;
    /// - in-group consumers of interior tensors: the matching `inputs`
    ///   entries → 0;
    /// - external input edges: the matching `inputs` entries × the halo
    ///   re-load factor;
    /// - weight terms and all rows outside fused groups: unchanged.
    ///
    /// An empty plan returns an identical clone.
    #[must_use]
    pub fn apply(&self, profile: &GraphProfile) -> GraphProfile {
        let mut fused = profile.clone();
        for group in &self.groups {
            for mf in &group.compute_factors {
                let row = &mut fused.per_node[mf.node.index()];
                row.compute *= mf.factor;
                if mf.node != group.output {
                    row.output = 0.0;
                }
            }
            for &member in &group.nodes {
                let row = &mut fused.per_node[member.index()];
                for entry in &mut row.inputs {
                    if group.nodes.contains(&entry.0) && entry.0 != group.output {
                        entry.1 = 0.0;
                    }
                }
            }
            for reload in &group.external_reloads {
                let row = &mut fused.per_node[reload.consumer.index()];
                for entry in &mut row.inputs {
                    if entry.0 == reload.source {
                        entry.1 *= reload.factor;
                    }
                }
            }
        }
        fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::zoo;

    fn chain_group(nodes: &[usize], tiles: usize) -> FusedGroup {
        let ids: Vec<NodeId> = nodes.iter().map(|&i| NodeId::new(i)).collect();
        let output = *ids.last().unwrap();
        FusedGroup {
            compute_factors: ids
                .iter()
                .map(|&n| MemberFactor {
                    node: n,
                    factor: if n == output { 1.0 } else { 1.25 },
                })
                .collect(),
            external_reloads: Vec::new(),
            nodes: ids,
            output,
            tiles,
            benefit_seconds: 1e-4,
            transfer_saved_seconds: 1e-4,
        }
    }

    #[test]
    fn empty_plan_is_an_identity_transform() {
        let g = zoo::alexnet();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = d.profile(&g);
        let plan = FusionPlan::default();
        assert!(plan.is_empty());
        let applied = plan.apply(&profile);
        assert_eq!(applied.per_node, profile.per_node);
    }

    #[test]
    fn apply_zeroes_interior_terms_and_inflates_compute() {
        let g = zoo::vgg16();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = d.profile(&g);
        // conv1_1 (id 1) -> conv1_2 (id 2): fuse the first two convs.
        let plan = FusionPlan::from_groups(vec![chain_group(&[1, 2], 4)]);
        assert!(plan.eliminates(NodeId::new(1)));
        assert!(!plan.eliminates(NodeId::new(2)));
        let fused = plan.apply(&profile);
        let interior = &fused.per_node[1];
        assert_eq!(interior.output, 0.0, "interior output never materialises");
        assert!(
            interior.compute > profile.per_node[1].compute,
            "halo recomputation inflates interior compute"
        );
        let consumer = &fused.per_node[2];
        let from_interior: f64 = consumer
            .inputs
            .iter()
            .filter(|(s, _)| *s == NodeId::new(1))
            .map(|(_, t)| *t)
            .sum();
        assert_eq!(from_interior, 0.0, "in-group edge carries no transfer");
        // Weight terms and the group output's output term are untouched.
        assert_eq!(consumer.weight, profile.per_node[2].weight);
        assert_eq!(consumer.output, profile.per_node[2].output);
        assert!(fused.validate().is_ok());
    }

    #[test]
    fn tile_table_covers_every_member() {
        let plan = FusionPlan::from_groups(vec![chain_group(&[3, 4, 5], 8)]);
        let table: Vec<(NodeId, usize)> = plan.tile_table().collect();
        assert_eq!(table.len(), 3);
        assert!(table.iter().all(|&(_, t)| t == 8));
        assert_eq!(plan.fused_nodes(), 3);
        assert_eq!(plan.eliminated().len(), 2);
    }

    #[test]
    fn plan_serialises_roundtrip() {
        let plan = FusionPlan::from_groups(vec![chain_group(&[1, 2], 2)]);
        let json = serde_json::to_string(&plan).expect("serialises");
        let back: FusionPlan = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, plan);
    }
}
