//! Fused-layer planning: execute adjacent layers tile-by-tile so their
//! intermediate feature maps never materialise in URAM or DRAM.
//!
//! LCMM eliminates transfers by keeping tensors on-chip; fusion
//! eliminates the tensors themselves. A *fused group* is a small run of
//! adjacent layers (conv→conv→pool chains, residual diamonds ending in
//! an element-wise add) executed as one tile loop over the group
//! output's rows: each tile pulls a halo of external input rows, runs
//! every member layer on the rows the tile needs, and only the group
//! output ever touches a buffer. The price is bounded *recomputation* —
//! overlapping halo rows of interior layers are recomputed once per
//! tile — and a halo re-load factor on the group's external inputs.
//!
//! The subsystem is a pure **profile transform**: a [`FusionPlan`]
//! rewrites [`GraphProfile`] rows (interior output/input transfer terms
//! go to zero, compute terms inflate by the recomputation factor,
//! external input terms inflate by the halo re-load factor) and
//! everything downstream of the profile — Eq. 1 evaluation, liveness,
//! the DNNK knapsack, delta replans, the joint multi-tenant DP — stays
//! consistent without knowing fusion exists. Eliminated interior
//! tensors additionally drop out of the feature-candidate set, which
//! shrinks the interference graph (see `lcmm_core`).
//!
//! [`plan`] enumerates candidate groups, costs each with the per-tile
//! model in [`planner`], and selects a non-overlapping set with a
//! deterministic weighted-interval DP. Only groups that *strictly*
//! reduce both modelled latency and off-chip transfer time survive, so
//! fusion never trades transfers up.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod model;
mod planner;

pub use model::{ExternalReload, FusedGroup, FusionPlan, MemberFactor};
pub use planner::{plan, FusionConfig, MAX_GROUP_NODES};

use serde::{Deserialize, Serialize};

/// Whether the fusion-grouping pass runs ahead of liveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionMode {
    /// No fusion: the legacy pipeline, bit-identical to pre-fusion
    /// output (the default).
    #[default]
    Off,
    /// Enumerate, cost and select fused groups automatically; only
    /// groups that strictly reduce both modelled latency and transfer
    /// time are taken.
    Auto,
}

impl FusionMode {
    /// Canonical lowercase wire/CLI name (`"off"` / `"auto"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FusionMode::Off => "off",
            FusionMode::Auto => "auto",
        }
    }
}
