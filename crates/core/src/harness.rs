//! The evaluation harness: parallel, memoized, instrumented runs of the
//! zoo × precision × allocator × ablation grid.
//!
//! The CLI report commands all walk the same grid and recompute the
//! same expensive shared artefacts — explored [`AccelDesign`]s,
//! [`GraphProfile`]s, UMM baselines, LCMM results. The harness gives
//! them three things:
//!
//! 1. **Memoization** — every artefact is cached behind a concurrent
//!    map keyed by a deterministic JSON fingerprint of its inputs, so
//!    e.g. the three Fig. 8 ablation variants share one profile of the
//!    common derated design.
//! 2. **Parallelism** — [`Harness::par_map`] fans a work list out over
//!    `jobs` OS threads while preserving input order, so report output
//!    is byte-identical between `--jobs 1` and any parallel run (the
//!    cached artefacts themselves are deterministic values; only *who*
//!    computes them varies).
//! 3. **Instrumentation** — each pipeline run's [`PassStats`] is
//!    recorded under a human-readable label, and cache hit/miss
//!    counters are tracked per artefact kind ([`Harness::profile_report`]).
//!
//! Thread fan-out uses `std::thread::scope`; the crate deliberately has
//! no external runtime dependency (the build environment is offline).

use crate::cancel::CancelToken;
use crate::delta::PlanArtifacts;
use crate::error::LcmmError;
use crate::pipeline::{LcmmOptions, LcmmResult, Pipeline};
use crate::profiling::PassStats;
use crate::umm::UmmBaseline;
use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
use lcmm_graph::Graph;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A concurrent memo table: one `OnceLock` per key so a value is
/// computed exactly once even when several workers request it at the
/// same moment (late arrivals block on the in-flight computation
/// instead of redoing it).
struct Cache<T> {
    map: Mutex<HashMap<String, Arc<OnceLock<Arc<T>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<T> Cache<T> {
    fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn get_or_compute(&self, key: String, compute: impl FnOnce() -> T) -> Arc<T> {
        let cell = {
            let mut map = self.map.lock().expect("cache lock poisoned");
            map.entry(key)
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                Arc::new(compute())
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Fallible variant: a hit returns the cached value; a miss runs
    /// `compute` and stores the value **only on success**, so errors
    /// (cancellation, timeout) are never cached and a retry recomputes.
    /// Concurrent misses may compute twice; artefacts are deterministic
    /// values, so both threads still observe one shared `Arc`.
    fn try_get_or_compute<E>(
        &self,
        key: String,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        let cell = {
            let mut map = self.map.lock().expect("cache lock poisoned");
            map.entry(key)
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        if let Some(value) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(value.clone());
        }
        let value = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        match cell.set(value.clone()) {
            Ok(()) => Ok(value),
            Err(_) => Ok(cell.get().expect("cell observed as set").clone()),
        }
    }

    /// Drops every entry whose key starts with `prefix`, returning how
    /// many were removed. Every harness key starts with the graph's
    /// fingerprint followed by `\u{1}`, so a graph-fingerprint prefix
    /// evicts exactly that graph's artefacts.
    fn remove_prefix(&self, prefix: &str) -> usize {
        let mut map = self.map.lock().expect("cache lock poisoned");
        let before = map.len();
        map.retain(|key, _| !key.starts_with(prefix));
        before - map.len()
    }

    fn counts(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Hit/miss counters of every artefact cache, for `--profile`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CacheStats {
    /// Explored-design cache hits.
    pub design_hits: usize,
    /// Explored-design cache misses (designs actually explored).
    pub design_misses: usize,
    /// Profile cache hits.
    pub profile_hits: usize,
    /// Profile cache misses (latency tables actually built).
    pub profile_misses: usize,
    /// UMM-baseline cache hits.
    pub baseline_hits: usize,
    /// UMM-baseline cache misses.
    pub baseline_misses: usize,
    /// LCMM-result cache hits.
    pub result_hits: usize,
    /// LCMM-result cache misses (pipelines actually run).
    pub result_misses: usize,
    /// Delta-plan artifact cache hits (budget-only replans that reused
    /// passes 1–2).
    pub artifact_hits: usize,
    /// Delta-plan artifact cache misses (front ends actually built).
    pub artifact_misses: usize,
}

/// One recorded pipeline run for the `--profile` report.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// `model|precision|options` label of the run.
    pub label: String,
    /// Its per-pass timings and counters.
    pub stats: PassStats,
}

/// The machine-readable `--profile` report.
#[derive(Debug, Clone, Serialize)]
pub struct HarnessProfile {
    /// Worker-thread count the harness was created with.
    pub jobs: usize,
    /// Artefact-cache hit/miss counters.
    pub cache: CacheStats,
    /// Every pipeline run, sorted by label for stable output.
    pub runs: Vec<RunRecord>,
}

/// The parallel, memoized evaluation harness.
pub struct Harness {
    jobs: usize,
    designs: Cache<AccelDesign>,
    profiles: Cache<GraphProfile>,
    baselines: Cache<UmmBaseline>,
    results: Cache<LcmmResult>,
    artifacts: Cache<PlanArtifacts>,
    runs: Mutex<Vec<RunRecord>>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("jobs", &self.jobs)
            .finish_non_exhaustive()
    }
}

/// Deterministic JSON fingerprint of a cache-key part. The vendored
/// serializer emits maps and sets in sorted order, so equal values
/// always fingerprint identically.
fn fp<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| format!("<unserializable:{e}>"))
}

/// Short human label for one pipeline run.
fn run_label(graph: &Graph, design: &AccelDesign, options: &LcmmOptions) -> String {
    format!(
        "{}|{}|fr={} wp={} sp={} alloc={:?}",
        graph.name(),
        design.precision.label(),
        options.feature_reuse,
        options.weight_prefetch,
        options.splitting,
        options.allocator,
    )
}

impl Harness {
    /// Creates a harness that fans work out over `jobs` threads
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            designs: Cache::new(),
            profiles: Cache::new(),
            baselines: Cache::new(),
            results: Cache::new(),
            artifacts: Cache::new(),
            runs: Mutex::new(Vec::new()),
        }
    }

    /// The worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` using up to `jobs` worker threads,
    /// returning results in input order. With `jobs == 1` this is a
    /// plain serial map — the parallel path produces the same vector
    /// because workers write into per-index slots.
    pub fn par_map<T: Sync, U: Send>(&self, items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(&f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&items[i]);
                    *slots[i].lock().expect("slot lock poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// The explored (UMM) design for a graph/device/precision triple,
    /// memoized.
    pub fn design(&self, graph: &Graph, device: &Device, precision: Precision) -> Arc<AccelDesign> {
        self.try_design(graph, device, precision)
            .expect("device DSP budget admits no systolic array")
    }

    /// Fallible variant of [`Harness::design`]: an infeasible DSP
    /// budget is [`LcmmError::BudgetInfeasible`] instead of a panic.
    /// Failures are not cached, so a later feasible request with the
    /// same graph recomputes.
    pub fn try_design(
        &self,
        graph: &Graph,
        device: &Device,
        precision: Precision,
    ) -> Result<Arc<AccelDesign>, LcmmError> {
        let key = format!("{}\u{1}{}\u{1}{}", fp(graph), fp(device), fp(&precision));
        self.designs.try_get_or_compute(key, || {
            AccelDesign::try_explore(graph, device, precision).map_err(LcmmError::BudgetInfeasible)
        })
    }

    /// The operation latency table of `design` on `graph`, memoized.
    pub fn profile(&self, graph: &Graph, design: &AccelDesign) -> Arc<GraphProfile> {
        let key = format!("{}\u{1}{}", fp(graph), fp(design));
        self.profiles.get_or_compute(key, || design.profile(graph))
    }

    /// The UMM baseline for a graph/device/precision triple, memoized
    /// (the explored design is shared through the design cache).
    pub fn baseline(
        &self,
        graph: &Graph,
        device: &Device,
        precision: Precision,
    ) -> Arc<UmmBaseline> {
        let design = self.design(graph, device, precision);
        self.baseline_from_design(graph, &design)
    }

    /// The UMM baseline of an explicit design (batch studies, granular
    /// DDR variants), memoized.
    pub fn baseline_from_design(&self, graph: &Graph, design: &AccelDesign) -> Arc<UmmBaseline> {
        let key = format!("{}\u{1}{}", fp(graph), fp(design));
        self.baselines
            .get_or_compute(key, || UmmBaseline::from_design(graph, design.clone()))
    }

    /// The LCMM result for a graph/device/precision triple under
    /// `options`, memoized end to end.
    pub fn lcmm(
        &self,
        graph: &Graph,
        device: &Device,
        precision: Precision,
        options: LcmmOptions,
    ) -> Arc<LcmmResult> {
        let design = self.design(graph, device, precision);
        self.lcmm_with_design(graph, &design, options)
    }

    /// Fallible, cancellable variant of [`Harness::lcmm`]: the whole
    /// chain (design exploration → profile → pipeline) reports errors
    /// instead of panicking, and `cancel` is polled at every pass
    /// boundary. This is the entry point the serve daemon uses.
    pub fn try_lcmm(
        &self,
        graph: &Graph,
        device: &Device,
        precision: Precision,
        options: LcmmOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<LcmmResult>, LcmmError> {
        let design = self.try_design(graph, device, precision)?;
        self.try_lcmm_with_design(graph, &design, options, cancel)
    }

    /// The LCMM result starting from an explored design, memoized. The
    /// derated design's profile comes from the shared profile cache, so
    /// ablation variants of one design profile the graph only once.
    pub fn lcmm_with_design(
        &self,
        graph: &Graph,
        base: &AccelDesign,
        options: LcmmOptions,
    ) -> Arc<LcmmResult> {
        self.try_lcmm_with_design(graph, base, options, None)
            .expect("uncancellable run cannot fail")
    }

    /// Fallible, cancellable variant of [`Harness::lcmm_with_design`].
    /// Cancellations and timeouts are **not** cached — a retry of the
    /// same request recomputes from the shared design/profile caches.
    pub fn try_lcmm_with_design(
        &self,
        graph: &Graph,
        base: &AccelDesign,
        options: LcmmOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<LcmmResult>, LcmmError> {
        let pipeline = Pipeline::new(options);
        let design = pipeline.lcmm_design(base.clone());
        let key = format!("{}\u{1}{}\u{1}{}", fp(graph), fp(&design), fp(&options));
        self.results.try_get_or_compute(key, || {
            let profile = self.profile(graph, &design);
            let result =
                pipeline.run_with_profile_checked(graph, design.clone(), &profile, cancel)?;
            self.runs
                .lock()
                .expect("runs lock poisoned")
                .push(RunRecord {
                    label: run_label(graph, &design, &options),
                    stats: result.stats,
                });
            Ok(result)
        })
    }

    /// Budget-invariant delta-plan artifacts (passes 1–2 + gain-curve
    /// memo) for `graph` on the derated form of `base` under `options`,
    /// memoized. The key normalises `options.tensor_budget` to `None`,
    /// so every budget variant of a request shares one artifact set —
    /// the cache key is effectively `(graph digest, design point,
    /// precision, allocator, pass toggles)`.
    pub fn try_artifacts(
        &self,
        graph: &Graph,
        base: &AccelDesign,
        options: LcmmOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<PlanArtifacts>, LcmmError> {
        let options = options.with_tensor_budget(None);
        let design = Pipeline::new(options).lcmm_design(base.clone());
        let key = format!("{}\u{1}{}\u{1}{}", fp(graph), fp(&design), fp(&options));
        self.artifacts_keyed(key, graph, &design, options, cancel)
    }

    /// [`Harness::try_artifacts`] with a precomputed cache key, so
    /// callers that already fingerprinted the request (the replan hot
    /// path) do not serialise the graph and design a second time.
    fn artifacts_keyed(
        &self,
        key: String,
        graph: &Graph,
        design: &AccelDesign,
        options: LcmmOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<PlanArtifacts>, LcmmError> {
        self.artifacts.try_get_or_compute(key, || {
            let profile = self.profile(graph, design);
            PlanArtifacts::from_parts(graph, design.clone(), profile, options, cancel)
        })
    }

    /// Budget-only replan through the artifact cache: bit-identical to
    /// [`Harness::try_lcmm_with_design`] with
    /// `options.with_tensor_budget(budget)`, and cached under the
    /// **same** result key, so the two entry points interoperate — a
    /// replan can hit a result a scratch run cached and vice versa.
    pub fn try_replan_with_budget(
        &self,
        graph: &Graph,
        base: &AccelDesign,
        options: LcmmOptions,
        budget: Option<u64>,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<LcmmResult>, LcmmError> {
        let options = options.with_tensor_budget(budget);
        let normalised = options.with_tensor_budget(None);
        // The derated design is budget-independent, so one derate (and
        // one graph/design fingerprint) serves both the result key and
        // the artifact key — fingerprinting is the replan hot path's
        // only per-call cost once the artifact cache is warm.
        let design = Pipeline::new(options).lcmm_design(base.clone());
        let graph_fp = fp(graph);
        let design_fp = fp(&design);
        let key = format!("{graph_fp}\u{1}{design_fp}\u{1}{}", fp(&options));
        let artifact_key = format!("{graph_fp}\u{1}{design_fp}\u{1}{}", fp(&normalised));
        self.results.try_get_or_compute(key, || {
            let artifacts =
                self.artifacts_keyed(artifact_key, graph, &design, normalised, cancel)?;
            let result = artifacts.replan_with_budget(graph, budget, cancel)?;
            self.runs
                .lock()
                .expect("runs lock poisoned")
                .push(RunRecord {
                    label: run_label(graph, &design, &options),
                    stats: result.stats,
                });
            Ok(result)
        })
    }

    /// Evicts every cached artefact derived from `graph` — designs,
    /// profiles, baselines, results, and delta-plan artifacts —
    /// returning how many entries were dropped. The serve daemon calls
    /// this when a registered model's graph *content* changes, so a
    /// re-registered digest never serves stale artifacts.
    pub fn invalidate_graph(&self, graph: &Graph) -> usize {
        let prefix = format!("{}\u{1}", fp(graph));
        self.designs.remove_prefix(&prefix)
            + self.profiles.remove_prefix(&prefix)
            + self.baselines.remove_prefix(&prefix)
            + self.results.remove_prefix(&prefix)
            + self.artifacts.remove_prefix(&prefix)
    }

    /// UMM baseline and full-LCMM result side by side (the memoized
    /// equivalent of [`crate::pipeline::compare`]).
    pub fn compare(
        &self,
        graph: &Graph,
        device: &Device,
        precision: Precision,
    ) -> (Arc<UmmBaseline>, Arc<LcmmResult>) {
        let umm = self.baseline(graph, device, precision);
        let lcmm = self.lcmm_with_design(graph, &umm.design, LcmmOptions::default());
        (umm, lcmm)
    }

    /// Cache hit/miss counters so far.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let (design_hits, design_misses) = self.designs.counts();
        let (profile_hits, profile_misses) = self.profiles.counts();
        let (baseline_hits, baseline_misses) = self.baselines.counts();
        let (result_hits, result_misses) = self.results.counts();
        let (artifact_hits, artifact_misses) = self.artifacts.counts();
        CacheStats {
            design_hits,
            design_misses,
            profile_hits,
            profile_misses,
            baseline_hits,
            baseline_misses,
            result_hits,
            result_misses,
            artifact_hits,
            artifact_misses,
        }
    }

    /// The full `--profile` report: cache counters plus every recorded
    /// pipeline run, sorted by label for stable output.
    #[must_use]
    pub fn profile_report(&self) -> HarnessProfile {
        let mut runs = self.runs.lock().expect("runs lock poisoned").clone();
        runs.sort_by(|a, b| a.label.cmp(&b.label));
        HarnessProfile {
            jobs: self.jobs,
            cache: self.cache_stats(),
            runs,
        }
    }
}

// par_map shares the harness across worker threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Harness>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    fn small_graph() -> Graph {
        zoo::alexnet()
    }

    #[test]
    fn memoizes_designs_and_profiles() {
        let h = Harness::new(1);
        let g = small_graph();
        let device = Device::vu9p();
        let d1 = h.design(&g, &device, Precision::Fix16);
        let d2 = h.design(&g, &device, Precision::Fix16);
        assert!(Arc::ptr_eq(&d1, &d2), "same key must share one artefact");
        let stats = h.cache_stats();
        assert_eq!(stats.design_misses, 1);
        assert_eq!(stats.design_hits, 1);
    }

    #[test]
    fn ablation_variants_share_one_profile() {
        let h = Harness::new(1);
        let g = small_graph();
        let device = Device::vu9p();
        let base = h.design(&g, &device, Precision::Fix16);
        // All three default-clock variants derate to the same design.
        for options in [
            LcmmOptions::default(),
            LcmmOptions::feature_reuse_only(),
            LcmmOptions::weight_prefetch_only(),
        ] {
            let _ = h.lcmm_with_design(&g, &base, options);
        }
        let stats = h.cache_stats();
        assert_eq!(stats.profile_misses, 1, "one shared derated profile");
        assert_eq!(stats.result_misses, 3, "three distinct option sets");
        assert_eq!(h.profile_report().runs.len(), 3);
    }

    #[test]
    fn harness_result_matches_direct_pipeline() {
        let h = Harness::new(1);
        let g = small_graph();
        let device = Device::vu9p();
        let direct = crate::PlanRequest::new(&g, &device, Precision::Fix16)
            .run()
            .expect("feasible");
        let via = h.lcmm(&g, &device, Precision::Fix16, LcmmOptions::default());
        assert_eq!(via.latency, direct.latency);
        assert_eq!(via.residency, direct.residency);
        assert_eq!(via.chosen, direct.chosen);
    }

    #[test]
    fn cancelled_runs_are_not_cached() {
        let h = Harness::new(1);
        let g = small_graph();
        let device = Device::vu9p();
        let token = CancelToken::new();
        token.cancel();
        let err = h
            .try_lcmm(
                &g,
                &device,
                Precision::Fix16,
                LcmmOptions::default(),
                Some(&token),
            )
            .unwrap_err();
        assert_eq!(err, LcmmError::Cancelled);
        // The failure must not poison the result cache: a retry without
        // the token recomputes (a miss, not a bogus hit).
        let before = h.cache_stats();
        assert_eq!(before.result_misses, 0);
        h.try_lcmm(&g, &device, Precision::Fix16, LcmmOptions::default(), None)
            .expect("retry succeeds");
        let after = h.cache_stats();
        assert_eq!(after.result_misses, 1);
    }

    #[test]
    fn infeasible_design_is_an_error_not_a_panic() {
        let h = Harness::new(1);
        let g = small_graph();
        let mut device = Device::vu9p();
        device.dsp_slices = 1;
        let err = h.try_design(&g, &device, Precision::Fix16).unwrap_err();
        assert!(matches!(err, LcmmError::BudgetInfeasible(_)));
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        for jobs in [1, 2, 5] {
            let h = Harness::new(jobs);
            let items: Vec<u64> = (0..23).collect();
            let out = h.par_map(&items, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_and_serial_compares_agree() {
        let g = small_graph();
        let device = Device::vu9p();
        let grid: Vec<Precision> = Precision::ALL.to_vec();

        let serial = Harness::new(1);
        let s: Vec<(f64, f64)> = serial.par_map(&grid, |&p| {
            let (umm, lcmm) = serial.compare(&g, &device, p);
            (umm.latency, lcmm.latency)
        });
        let parallel = Harness::new(4);
        let r: Vec<(f64, f64)> = parallel.par_map(&grid, |&p| {
            let (umm, lcmm) = parallel.compare(&g, &device, p);
            (umm.latency, lcmm.latency)
        });
        assert_eq!(s, r);
    }

    #[test]
    fn replans_share_one_artifact_set() {
        let h = Harness::new(1);
        let g = small_graph();
        let base = h.design(&g, &Device::vu9p(), Precision::Fix16);
        let full = base.tensor_sram_budget();
        for budget in [None, Some(full / 2), Some(full / 4)] {
            h.try_replan_with_budget(&g, &base, LcmmOptions::default(), budget, None)
                .expect("replan succeeds");
        }
        let stats = h.cache_stats();
        assert_eq!(stats.artifact_misses, 1, "one front end for all budgets");
        assert_eq!(stats.artifact_hits, 2);
        assert_eq!(stats.result_misses, 3, "three distinct budgets");
    }

    #[test]
    fn replan_and_scratch_share_the_result_cache() {
        let h = Harness::new(1);
        let g = small_graph();
        let base = h.design(&g, &Device::vu9p(), Precision::Fix16);
        let full = base.tensor_sram_budget();
        let opts = LcmmOptions::default();
        let scratch = h
            .try_lcmm_with_design(&g, &base, opts.with_tensor_budget(Some(full / 2)), None)
            .unwrap();
        let replay = h
            .try_replan_with_budget(&g, &base, opts, Some(full / 2), None)
            .unwrap();
        assert!(
            Arc::ptr_eq(&scratch, &replay),
            "same key, same cached result"
        );
        let stats = h.cache_stats();
        assert_eq!(stats.result_misses, 1);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.artifact_misses, 0, "replay hit the result cache");
    }

    #[test]
    fn invalidate_graph_forces_recompute_with_identical_results() {
        let h = Harness::new(1);
        let g = small_graph();
        let base = h.design(&g, &Device::vu9p(), Precision::Fix16);
        let before = h
            .try_replan_with_budget(&g, &base, LcmmOptions::default(), None, None)
            .unwrap();
        let dropped = h.invalidate_graph(&g);
        assert!(dropped >= 3, "design + profile + result + artifacts");
        let after = h
            .try_replan_with_budget(&g, &base, LcmmOptions::default(), None, None)
            .unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "entry was really evicted");
        assert_eq!(before.latency.to_bits(), after.latency.to_bits());
        assert_eq!(before.chosen, after.chosen);
        // Unrelated graphs are untouched.
        let other = zoo::squeezenet();
        h.try_replan_with_budget(
            &other,
            &h.design(&other, &Device::vu9p(), Precision::Fix16),
            LcmmOptions::default(),
            None,
            None,
        )
        .unwrap();
        let misses = h.cache_stats().artifact_misses;
        h.invalidate_graph(&g);
        h.try_replan_with_budget(
            &other,
            &h.design(&other, &Device::vu9p(), Precision::Fix16),
            LcmmOptions::default(),
            Some(1 << 20),
            None,
        )
        .unwrap();
        assert_eq!(
            h.cache_stats().artifact_misses,
            misses,
            "other graph's artifacts survived the invalidation"
        );
    }

    #[test]
    fn pass_stats_are_populated() {
        let h = Harness::new(1);
        let g = small_graph();
        let lcmm = h.lcmm(
            &g,
            &Device::vu9p(),
            Precision::Fix16,
            LcmmOptions::default(),
        );
        let s = lcmm.stats;
        assert!(s.total_seconds > 0.0);
        assert!(s.evaluator_calls > 0, "evaluator must be consulted");
        assert!(s.allocator_invocations > 0, "allocator must run");
        assert!(s.dnnk_dp_cells > 0, "DNNK DP must visit cells");
        let report = h.profile_report();
        assert_eq!(report.runs.len(), 1);
        assert!(report.runs[0].label.starts_with("alexnet|"));
        // The report serializes (what --profile prints).
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("dnnk_dp_cells"));
    }
}
