//! Integration seam between the fusion subsystem (`lcmm_fusion`) and
//! the pipeline.
//!
//! Fusion runs ahead of liveness as a *profile transform*: when
//! [`crate::LcmmOptions::fusion`] is [`FusionMode::Auto`], [`prepare`]
//! plans fused groups over the **unfused** latency table and applies
//! them, and everything downstream — liveness, interference, DNNK,
//! splitting, delta replays, gain curves — runs against the fused
//! table. Eliminated interior tensors are additionally dropped from the
//! feature-candidate set (see `pipeline::build_front_end`), shrinking
//! the interference graph.
//!
//! Every public entry point of the crate (the pipeline itself,
//! [`crate::PlanArtifacts`], [`crate::tenant_gain_curve`]) takes the
//! unfused profile and derives fusion here. This is deliberate: fusion
//! is **not idempotent** — re-planning over an already-fused table
//! could re-select groups the first pass rejected for overlap (a group
//! output's transfers are still present after apply), producing wrong
//! plans. Centralising the derivation makes double application
//! structurally impossible, and keeps the plan a pure function of
//! `(graph, profile, design, options)` so delta replays and memoised
//! gain curves stay bit-identical to scratch runs.

use crate::pipeline::LcmmOptions;
use lcmm_fpga::{AccelDesign, GraphProfile};
use lcmm_fusion::FusionConfig;
use lcmm_graph::Graph;

pub use lcmm_fusion::{ExternalReload, FusedGroup, FusionMode, FusionPlan, MemberFactor};

/// Plans fusion for one `(graph, profile, design, options)` point and
/// applies it to the profile. Returns `None` when fusion is off or no
/// group survives costing — callers then run the legacy pipeline on
/// the original profile, byte-identical to pre-fusion builds.
///
/// `profile` must be the **unfused** latency table (see the module
/// docs for why re-fusing a fused table is unsound).
pub(crate) fn prepare(
    graph: &Graph,
    profile: &GraphProfile,
    design: &AccelDesign,
    options: &LcmmOptions,
) -> Option<(FusionPlan, GraphProfile)> {
    if options.fusion != FusionMode::Auto {
        return None;
    }
    let config = FusionConfig::from_design(design);
    let plan = lcmm_fusion::plan(graph, profile, &config);
    if plan.is_empty() {
        return None;
    }
    let fused = plan.apply(profile);
    Some((plan, fused))
}
