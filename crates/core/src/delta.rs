//! Incremental delta-planning: budget-only replans from cached pass
//! artifacts.
//!
//! The expensive intermediates of the LCMM pipeline — the liveness
//! intervals folded into the feature interference graph (pass 1), the
//! prefetch plan and weight interference graph (pass 2), and each
//! tenant's DNNK gain curve — depend only on `(graph, profile, design,
//! options − tensor_budget)`. The budget enters the pipeline for the
//! first time in pass 3's capacity DP. [`PlanArtifacts`] captures that
//! invariant: build the passes 1–2 artifacts once per `(graph digest,
//! precision, allocator, design point)`, then
//! [`PlanArtifacts::replan_with_budget`]
//! replays only the capacity DP + pivot compensation + splitting +
//! reporting for any number of budgets.
//!
//! The replay is **bit-identical** to a from-scratch
//! [`crate::PlanRequest`] at every budget because both routes execute
//! the same code: [`crate::pipeline`]'s `build_front_end` produces the
//! artifacts and `run_back_end` consumes them, whether called
//! back-to-back (scratch) or across a cache boundary (delta). The
//! property tests in `crates/core/tests/delta_props.rs` and the
//! delta-equivalence gate in `checks/ci.sh` enforce this.
//!
//! See `docs/DELTA.md` for the artifact keys, the invariance argument,
//! and the invalidation rules the harness layers on top.

use crate::cancel::CancelToken;
use crate::coplan::{curve_from_buffers, initial_coloring, GainCurve, CAPACITY_UNIT_BYTES};
use crate::error::LcmmError;
use crate::eval::Evaluator;
use crate::pipeline::{build_front_end, run_back_end, FrontEnd, LcmmOptions, Pipeline};
use crate::profiling;
use crate::LcmmResult;
use lcmm_fpga::{AccelDesign, GraphProfile};
use lcmm_graph::Graph;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Budget-invariant pass artifacts for one `(graph, design, options)`
/// point, plus a per-pool memo of DNNK gain curves.
///
/// The stored options have `tensor_budget` normalised to `None`: the
/// budget is the one degree of freedom a replay varies, so two requests
/// that differ only in budget share one artifact set (and one cache
/// entry, see [`crate::Harness::try_artifacts`]).
#[derive(Debug)]
pub struct PlanArtifacts {
    design: AccelDesign,
    profile: Arc<GraphProfile>,
    /// The fused latency table when `options.fusion` selected groups;
    /// `None` otherwise. Replans and gain curves run against this
    /// (falling back to `profile`), while [`Self::profile`] keeps
    /// returning the unfused table — the form every external consumer
    /// (e.g. [`crate::tenant_gain_curve`], which derives fusion itself)
    /// expects.
    fused_profile: Option<Arc<GraphProfile>>,
    options: LcmmOptions,
    front: FrontEnd,
    graph_name: String,
    graph_nodes: usize,
    colored: std::sync::OnceLock<Vec<crate::interference::VirtualBuffer>>,
    curves: Mutex<HashMap<u64, Arc<GainCurve>>>,
}

impl PlanArtifacts {
    /// Builds artifacts from a *base* (undegraded) design: derates it
    /// exactly as [`crate::PlanRequest::with_design`] would, profiles
    /// the graph, and runs passes 1–2.
    ///
    /// Any `tensor_budget` in `options` is ignored (normalised away) —
    /// pass the budget to [`Self::replan_with_budget`] instead.
    pub fn build(
        graph: &Graph,
        base: AccelDesign,
        options: LcmmOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, LcmmError> {
        let design = Pipeline::new(options).lcmm_design(base);
        let profile = Arc::new(design.profile(graph));
        Self::from_parts(graph, design, profile, options, cancel)
    }

    /// Builds artifacts from an already-derated design and its profile
    /// (the harness uses this to share its profile cache).
    pub fn from_parts(
        graph: &Graph,
        design: AccelDesign,
        profile: Arc<GraphProfile>,
        options: LcmmOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<Self, LcmmError> {
        let options = options.with_tensor_budget(None);
        let (fusion, fused_profile) =
            match crate::fusion::prepare(graph, &profile, &design, &options) {
                Some((plan, fused)) => (plan, Some(Arc::new(fused))),
                None => (crate::fusion::FusionPlan::default(), None),
            };
        let effective = fused_profile.as_ref().unwrap_or(&profile);
        let evaluator = Evaluator::new(graph, effective);
        let front = build_front_end(
            graph, effective, &evaluator, &design, &options, &fusion, cancel,
        )?;
        Ok(Self {
            design,
            profile,
            fused_profile,
            options,
            front,
            graph_name: graph.name().to_string(),
            graph_nodes: graph.len(),
            colored: std::sync::OnceLock::new(),
            curves: Mutex::new(HashMap::new()),
        })
    }

    /// The derated design the artifacts were built against.
    #[must_use]
    pub fn design(&self) -> &AccelDesign {
        &self.design
    }

    /// The (unfused) graph profile the artifacts were built against.
    #[must_use]
    pub fn profile(&self) -> &Arc<GraphProfile> {
        &self.profile
    }

    /// The latency table replays actually evaluate: the fused table
    /// when fusion selected groups, the base profile otherwise.
    fn effective_profile(&self) -> &Arc<GraphProfile> {
        self.fused_profile.as_ref().unwrap_or(&self.profile)
    }

    /// The fused groups the artifacts were built under (empty when
    /// fusion is off or selected nothing).
    #[must_use]
    pub fn fusion(&self) -> &crate::fusion::FusionPlan {
        &self.front.fusion
    }

    /// The normalised options (`tensor_budget` is always `None` here).
    #[must_use]
    pub fn options(&self) -> &LcmmOptions {
        &self.options
    }

    /// Guards against replaying artifacts built for a different graph.
    /// A full structural comparison would defeat the purpose of the
    /// cache, so this checks the cheap invariants; the harness key
    /// (graph digest) is the real guarantee.
    fn check_graph(&self, graph: &Graph) -> Result<(), LcmmError> {
        if graph.name() != self.graph_name || graph.len() != self.graph_nodes {
            return Err(LcmmError::InvalidRequest(format!(
                "plan artifacts were built for '{}' ({} nodes), not '{}' ({} nodes)",
                self.graph_name,
                self.graph_nodes,
                graph.name(),
                graph.len()
            )));
        }
        Ok(())
    }

    /// Replays passes 3–4 + reporting at `budget` (bytes; `None` = the
    /// design's full SRAM budget).
    ///
    /// Bit-identical to running [`crate::PlanRequest`] from scratch
    /// with the same design and `options.with_tensor_budget(budget)`:
    /// the scratch route computes the same front end this struct
    /// cached, then calls the same back end this method calls.
    pub fn replan_with_budget(
        &self,
        graph: &Graph,
        budget: Option<u64>,
        cancel: Option<&CancelToken>,
    ) -> Result<LcmmResult, LcmmError> {
        self.check_graph(graph)?;
        profiling::reset_counters();
        let t_total = Instant::now();
        let options = self.options.with_tensor_budget(budget);
        let profile = self.effective_profile();
        let evaluator = Evaluator::new(graph, profile);
        run_back_end(
            graph,
            self.design.clone(),
            profile,
            &evaluator,
            &options,
            self.front.clone(),
            t_total,
            cancel,
        )
    }

    /// The tenant's DNNK gain curve against a capacity pool of
    /// `pool_bytes`, memoised per pool size.
    ///
    /// Bit-identical to [`crate::tenant_gain_curve`] on the same
    /// inputs — both routes colour the cached interference graphs and
    /// run the same DNNK DP.
    pub fn gain_curve(&self, graph: &Graph, pool_bytes: u64) -> Result<Arc<GainCurve>, LcmmError> {
        self.check_graph(graph)?;
        let mut curves = self.curves.lock().expect("curve memo poisoned");
        if let Some(curve) = curves.get(&pool_bytes) {
            return Ok(Arc::clone(curve));
        }
        // A wider memoised curve subsumes this pool: entry `u` of the
        // DNNK value row depends only on columns `<= u`, never on the
        // column count (the standard knapsack prefix property), so the
        // prefix is bitwise the curve a fresh DP at this pool produces.
        let units = (pool_bytes / CAPACITY_UNIT_BYTES) as usize;
        let curve = if let Some(wider) = curves.values().find(|c| c.units() >= units) {
            GainCurve::from_values(wider.values()[..=units].to_vec())
        } else {
            let evaluator = Evaluator::new(graph, self.effective_profile());
            let buffers = self.colored.get_or_init(|| initial_coloring(&self.front));
            curve_from_buffers(
                &evaluator,
                &self.front,
                buffers,
                self.options.weight_streaming,
                pool_bytes,
            )
        };
        let curve = Arc::new(curve);
        curves.insert(pool_bytes, Arc::clone(&curve));
        Ok(curve)
    }

    /// Number of distinct pool sizes with a memoised gain curve.
    #[must_use]
    pub fn cached_curves(&self) -> usize {
        self.curves.lock().expect("curve memo poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coplan::tenant_gain_curve;
    use crate::request::PlanRequest;
    use crate::StreamingMode;
    use lcmm_fpga::{Device, Precision};
    use lcmm_graph::zoo;

    fn base(graph: &Graph) -> AccelDesign {
        AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16)
    }

    #[test]
    fn replan_matches_scratch_at_several_budgets() {
        let g = zoo::alexnet();
        let artifacts = PlanArtifacts::build(&g, base(&g), LcmmOptions::default(), None).unwrap();
        let full = artifacts.design().tensor_sram_budget();
        for budget in [None, Some(0), Some(full / 3), Some(full), Some(full * 2)] {
            let delta = artifacts.replan_with_budget(&g, budget, None).unwrap();
            let scratch = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(LcmmOptions::default().with_tensor_budget(budget))
                .with_design(base(&g))
                .run()
                .unwrap();
            assert_eq!(delta.latency.to_bits(), scratch.latency.to_bits());
            assert_eq!(delta.chosen, scratch.chosen);
            assert_eq!(delta.buffers, scratch.buffers);
            assert_eq!(delta.residency, scratch.residency);
            assert_eq!(delta.split_iterations, scratch.split_iterations);
            assert_eq!(delta.resources, scratch.resources);
        }
    }

    #[test]
    fn replan_with_streaming_matches_scratch_at_several_budgets() {
        // The mode variants are derived from budget-invariant artifacts
        // (buffers + prefetch plan), so a delta replay with AutoWS must
        // reproduce the from-scratch streaming plan bit-for-bit at any
        // budget — including degenerate ones where streaming carries
        // the whole plan.
        let g = zoo::alexnet();
        let opts = LcmmOptions::default().with_weight_streaming(StreamingMode::Auto);
        let artifacts = PlanArtifacts::build(&g, base(&g), opts, None).unwrap();
        let full = artifacts.design().tensor_sram_budget();
        for budget in [
            Some(0),
            Some(crate::coplan::CAPACITY_UNIT_BYTES),
            Some(full / 8),
            Some(full / 3),
            None,
        ] {
            let delta = artifacts.replan_with_budget(&g, budget, None).unwrap();
            let scratch = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(opts.with_tensor_budget(budget))
                .with_design(base(&g))
                .run()
                .unwrap();
            assert_eq!(delta.latency.to_bits(), scratch.latency.to_bits());
            assert_eq!(delta.chosen, scratch.chosen);
            assert_eq!(delta.weight_modes, scratch.weight_modes);
            assert_eq!(delta.residency, scratch.residency);
        }
    }

    #[test]
    fn gain_curve_matches_coplan_and_memoises() {
        let g = zoo::alexnet();
        let artifacts = PlanArtifacts::build(&g, base(&g), LcmmOptions::default(), None).unwrap();
        let pool = artifacts.design().tensor_sram_budget();
        let via_artifacts = artifacts.gain_curve(&g, pool).unwrap();
        let scratch = tenant_gain_curve(
            &g,
            artifacts.profile(),
            artifacts.design(),
            artifacts.options(),
            pool,
        );
        let a: Vec<u64> = via_artifacts.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = scratch.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        // Second request for the same pool hits the memo.
        let again = artifacts.gain_curve(&g, pool).unwrap();
        assert!(Arc::ptr_eq(&via_artifacts, &again));
        assert_eq!(artifacts.cached_curves(), 1);
    }

    #[test]
    fn narrower_pools_slice_the_widest_cached_curve_bitwise() {
        let g = zoo::alexnet();
        let artifacts = PlanArtifacts::build(&g, base(&g), LcmmOptions::default(), None).unwrap();
        let full = artifacts.design().tensor_sram_budget();
        let wide = artifacts.gain_curve(&g, full).unwrap();
        for pool in [0, crate::coplan::CAPACITY_UNIT_BYTES, full / 2, full - 1] {
            let sliced = artifacts.gain_curve(&g, pool).unwrap();
            let fresh = tenant_gain_curve(
                &g,
                artifacts.profile(),
                artifacts.design(),
                artifacts.options(),
                pool,
            );
            let a: Vec<u64> = sliced.values().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = fresh.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "prefix diverged at pool {pool}");
            assert!(sliced.units() <= wide.units());
        }
        // Every pool size got its own memo entry.
        assert_eq!(artifacts.cached_curves(), 5);
    }

    #[test]
    fn wrong_graph_is_rejected() {
        let g = zoo::alexnet();
        let other = zoo::squeezenet();
        let artifacts = PlanArtifacts::build(&g, base(&g), LcmmOptions::default(), None).unwrap();
        let err = artifacts
            .replan_with_budget(&other, None, None)
            .unwrap_err();
        assert!(matches!(err, LcmmError::InvalidRequest(_)));
    }

    #[test]
    fn budget_in_build_options_is_normalised_away() {
        let g = zoo::alexnet();
        let opts = LcmmOptions::default().with_tensor_budget(Some(1));
        let artifacts = PlanArtifacts::build(&g, base(&g), opts, None).unwrap();
        assert_eq!(artifacts.options().tensor_budget, None);
        // The replay budget is the caller's, not the build-time one.
        let full = artifacts.replan_with_budget(&g, None, None).unwrap();
        let scratch = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
            .options(LcmmOptions::default())
            .with_design(base(&g))
            .run()
            .unwrap();
        assert_eq!(full.latency.to_bits(), scratch.latency.to_bits());
    }
}
