//! Per-pass instrumentation of the LCMM pipeline.
//!
//! Every [`crate::Pipeline`] run produces a [`PassStats`]: wall-clock
//! timings of the four passes plus the algorithmic counters that tell
//! you *why* a run was slow (DP cells visited, gain-cache hit rate,
//! split iterations accepted vs rejected, evaluator calls).
//!
//! The counters live in thread-local cells rather than in a context
//! struct because the allocator boundary is a plain `fn` pointer
//! ([`crate::splitting::AllocatorFn`]) with no room to thread state
//! through — and because the parallel harness runs one pipeline per
//! worker thread, so thread-locals give each run its own counter set
//! for free.

use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Timings and counters of one pipeline run.
///
/// Timings are wall-clock seconds and therefore vary run to run; the
/// counters are deterministic for a given graph/design/options triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PassStats {
    /// Building the operation latency table (`AccelDesign::profile`).
    pub profile_seconds: f64,
    /// Pass 1: feature lifespans + interference graph construction.
    pub liveness_seconds: f64,
    /// Pass 2: weight prefetch planning + weight interference graph.
    pub prefetch_seconds: f64,
    /// Passes 3+4: the whole allocate/split refinement loop.
    pub alloc_split_seconds: f64,
    /// Graph-coloring time inside the refinement loop (subset of
    /// `alloc_split_seconds`).
    pub coloring_seconds: f64,
    /// Post-pass reporting: POL, resource report.
    pub reporting_seconds: f64,
    /// The whole run, profile included.
    pub total_seconds: f64,
    /// `Evaluator::total_latency` / `gain_of` invocations.
    pub evaluator_calls: u64,
    /// Allocator invocations by the refinement loop.
    pub allocator_invocations: u64,
    /// DNNK DP cells visited (buffers × capacity columns).
    pub dnnk_dp_cells: u64,
    /// DNNK gain-cache hits.
    pub gain_cache_hits: u64,
    /// DNNK gain-cache misses (gains actually computed).
    pub gain_cache_misses: u64,
    /// Gains computed exactly because the buffer's relevant set exceeds
    /// the 62-bit cache-key capacity (the cache is skipped, never
    /// allowed to collide).
    pub gain_exact_recomputes: u64,
    /// Split iterations that improved latency and were kept.
    pub splits_accepted: u64,
    /// Split iterations that did not improve latency (tried, discarded).
    pub splits_rejected: u64,
}

/// The thread-local counter set the passes increment.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Counters {
    pub evaluator_calls: u64,
    pub allocator_invocations: u64,
    pub dnnk_dp_cells: u64,
    pub gain_cache_hits: u64,
    pub gain_cache_misses: u64,
    pub gain_exact_recomputes: u64,
    pub splits_accepted: u64,
    pub splits_rejected: u64,
    pub coloring_seconds: f64,
}

thread_local! {
    static COUNTERS: Cell<Counters> = const { Cell::new(Counters {
        evaluator_calls: 0,
        allocator_invocations: 0,
        dnnk_dp_cells: 0,
        gain_cache_hits: 0,
        gain_cache_misses: 0,
        gain_exact_recomputes: 0,
        splits_accepted: 0,
        splits_rejected: 0,
        coloring_seconds: 0.0,
    }) };
}

fn bump(f: impl FnOnce(&mut Counters)) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// Zeroes this thread's counters (start of a pipeline run).
pub(crate) fn reset_counters() {
    COUNTERS.with(|c| c.set(Counters::default()));
}

/// Reads this thread's counters (end of a pipeline run).
pub(crate) fn snapshot_counters() -> Counters {
    COUNTERS.with(Cell::get)
}

pub(crate) fn count_evaluator_call() {
    bump(|c| c.evaluator_calls += 1);
}

pub(crate) fn count_allocator_invocation() {
    bump(|c| c.allocator_invocations += 1);
}

pub(crate) fn add_dnnk_dp_cells(n: u64) {
    bump(|c| c.dnnk_dp_cells += n);
}

pub(crate) fn count_gain_cache_hit() {
    bump(|c| c.gain_cache_hits += 1);
}

pub(crate) fn count_gain_cache_miss() {
    bump(|c| c.gain_cache_misses += 1);
}

pub(crate) fn count_gain_exact_recompute() {
    bump(|c| c.gain_exact_recomputes += 1);
}

pub(crate) fn count_split_accepted() {
    bump(|c| c.splits_accepted += 1);
}

pub(crate) fn count_split_rejected() {
    bump(|c| c.splits_rejected += 1);
}

pub(crate) fn add_coloring_seconds(seconds: f64) {
    bump(|c| c.coloring_seconds += seconds);
}

impl PassStats {
    /// Folds the thread-local counters into a stats record.
    pub(crate) fn from_counters(c: Counters) -> Self {
        Self {
            evaluator_calls: c.evaluator_calls,
            allocator_invocations: c.allocator_invocations,
            dnnk_dp_cells: c.dnnk_dp_cells,
            gain_cache_hits: c.gain_cache_hits,
            gain_cache_misses: c.gain_cache_misses,
            gain_exact_recomputes: c.gain_exact_recomputes,
            splits_accepted: c.splits_accepted,
            splits_rejected: c.splits_rejected,
            coloring_seconds: c.coloring_seconds,
            ..Self::default()
        }
    }

    /// Gain-cache hit rate in `[0, 1]` (0 when the cache was never
    /// consulted).
    #[must_use]
    pub fn gain_cache_hit_rate(&self) -> f64 {
        let total = self.gain_cache_hits + self.gain_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.gain_cache_hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reset_and_accumulate() {
        reset_counters();
        count_evaluator_call();
        count_evaluator_call();
        count_gain_cache_hit();
        count_gain_cache_miss();
        add_dnnk_dp_cells(7);
        add_coloring_seconds(0.25);
        let c = snapshot_counters();
        assert_eq!(c.evaluator_calls, 2);
        assert_eq!(c.gain_cache_hits, 1);
        assert_eq!(c.gain_cache_misses, 1);
        assert_eq!(c.dnnk_dp_cells, 7);
        assert!((c.coloring_seconds - 0.25).abs() < 1e-12);
        reset_counters();
        assert_eq!(snapshot_counters().evaluator_calls, 0);
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        assert_eq!(PassStats::default().gain_cache_hit_rate(), 0.0);
        let s = PassStats {
            gain_cache_hits: 3,
            gain_cache_misses: 1,
            ..PassStats::default()
        };
        assert!((s.gain_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let s = PassStats {
            profile_seconds: 0.5,
            evaluator_calls: 42,
            splits_accepted: 2,
            ..PassStats::default()
        };
        let json = serde_json::to_string(&s).expect("serialises");
        let back: PassStats = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, s);
    }
}
