//! Iterated DNNK: fixed-point refinement of the knapsack.
//!
//! Single-pass DNNK scores buffer gains against the "chosen earlier in
//! this DP row" approximation. Re-running the DP with gains computed
//! against the *previous solution's* residency tightens that
//! approximation; iterating to a fixed point (or a small cap) never
//! returns anything worse than the best solution seen, because every
//! candidate is re-scored by the exact evaluator.

use super::{dnnk, AllocOutcome, AllocProblem, CAPACITY_UNIT_BYTES};

/// Iteration cap: in practice the fixed point arrives in 2–3 rounds.
pub const MAX_ROUNDS: usize = 4;

/// Runs DNNK, then refines: each round re-solves a plain knapsack whose
/// per-buffer gains are marginals against the previous round's chosen
/// set, keeping the best exact-scored solution across rounds.
#[must_use]
pub fn allocate(problem: &AllocProblem<'_>) -> AllocOutcome {
    let mut best = dnnk::allocate(problem);
    let n = problem.buffers.len();
    let units = (problem.budget_bytes / CAPACITY_UNIT_BYTES) as usize;
    if n == 0 || units == 0 {
        return best;
    }
    let sizes: Vec<usize> = problem
        .buffers
        .iter()
        .map(|b| (b.bytes.div_ceil(CAPACITY_UNIT_BYTES)) as usize)
        .collect();

    let mut reference = best.residency.clone();
    for _ in 0..MAX_ROUNDS {
        // Marginal gain of each buffer against the reference residency,
        // with the buffer's own members removed from the reference so a
        // currently-chosen buffer is valued by what dropping it costs.
        let gains: Vec<f64> = problem
            .buffers
            .iter()
            .map(|buf| {
                let mut without = reference.clone();
                for &m in &buf.members {
                    without.remove(m);
                }
                problem.evaluator.gain_of(&mut without, &buf.members)
            })
            .collect();

        // Plain 0/1 knapsack over the frozen gains.
        let mut dp = vec![0.0f64; units + 1];
        let mut take = vec![false; n * (units + 1)];
        for i in 0..n {
            let s = sizes[i];
            if s == 0 || s > units || gains[i] <= 0.0 {
                continue;
            }
            for j in (s..=units).rev() {
                let candidate = dp[j - s] + gains[i];
                if candidate > dp[j] {
                    dp[j] = candidate;
                    take[i * (units + 1) + j] = true;
                }
            }
        }
        // Backtrace (items were processed forward with reverse capacity
        // sweep, so walk items backward).
        let mut chosen = vec![false; n];
        let mut j = units;
        for i in (0..n).rev() {
            if take[i * (units + 1) + j] {
                chosen[i] = true;
                j -= sizes[i];
            }
        }
        let candidate = AllocOutcome::from_chosen(problem, chosen);
        let converged = candidate.chosen == best.chosen;
        if candidate.latency < best.latency {
            best = candidate;
        }
        if converged {
            break;
        }
        reference = best.residency.clone();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::test_support::*;
    use crate::eval::Evaluator;
    use crate::prefetch::PrefetchPlan;

    #[test]
    fn never_worse_than_single_pass() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        for budget in [2u64 << 20, 6 << 20, 16 << 20] {
            let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
            let single = dnnk::allocate(&problem);
            let iterated = allocate(&problem);
            assert!(
                iterated.latency <= single.latency + 1e-15,
                "budget {budget}: {} > {}",
                iterated.latency,
                single.latency
            );
            assert!(iterated.bytes <= budget);
        }
    }

    #[test]
    fn zero_budget_is_identity() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 0, &PrefetchPlan::default());
        assert!(allocate(&problem).residency.is_empty());
    }
}
