//! Greedy gain-density allocator (ablation baseline for DNNK).
//!
//! Repeatedly takes the buffer with the highest marginal latency
//! reduction per byte, recomputing marginals after every pick (the
//! pivot interaction makes stale gains wrong). Stops when no remaining
//! buffer both fits and helps.

use super::{AllocOutcome, AllocProblem};

/// Runs the greedy allocator.
#[must_use]
pub fn allocate(problem: &AllocProblem<'_>) -> AllocOutcome {
    let n = problem.buffers.len();
    let mut chosen = vec![false; n];
    let mut remaining = problem.budget_bytes;
    loop {
        let mut residency = problem.residency_for(&chosen);
        let mut best: Option<(f64, usize)> = None;
        for (i, buffer) in problem.buffers.iter().enumerate() {
            if chosen[i] || buffer.bytes > remaining {
                continue;
            }
            let gain = problem.evaluator.gain_of(&mut residency, &buffer.members);
            if gain <= 0.0 {
                continue;
            }
            let density = gain / buffer.bytes.max(1) as f64;
            if best.is_none_or(|(d, _)| density > d) {
                best = Some((density, i));
            }
        }
        match best {
            Some((_, i)) => {
                chosen[i] = true;
                remaining -= problem.buffers[i].bytes;
            }
            None => break,
        }
    }
    AllocOutcome::from_chosen(problem, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::test_support::*;
    use crate::eval::Evaluator;
    use crate::prefetch::PrefetchPlan;

    #[test]
    fn respects_budget_and_improves() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let budget = 8 << 20;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.bytes <= budget);
        assert!(out.latency <= problem.latency_of(&vec![false; bufs.len()]));
    }

    #[test]
    fn stops_when_nothing_helps() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        // Tiny budget below the smallest buffer.
        let smallest = bufs.iter().map(|b| b.bytes).min().unwrap();
        let problem = AllocProblem::new(&ev, &bufs, smallest - 1, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.residency.is_empty());
    }
}
