//! On-chip memory allocators for virtual buffers.
//!
//! Four allocators share one problem formulation ([`AllocProblem`]):
//!
//! * [`dnnk`] — the paper's DNN-Knapsack dynamic program (Alg. 1) with
//!   pivot compensation;
//! * [`dnnk_iterative`] — DNNK plus fixed-point marginal refinement
//!   (extension; never worse than single-pass);
//! * [`greedy`] — marginal-gain-density greedy, a natural baseline;
//! * [`exhaustive`] — exact subset enumeration for small instances,
//!   used to bound the heuristics' optimality gap in tests and the
//!   allocator ablation bench.

pub mod dnnk;
pub mod dnnk_iterative;
pub mod exhaustive;
pub mod greedy;

use crate::eval::{Evaluator, Residency};
use crate::interference::VirtualBuffer;
use crate::prefetch::{ModeOption, PrefetchPlan, StreamingMode, WeightMode};
use crate::value::ValueId;
use std::collections::HashMap;

/// SRAM quantum for the DNNK capacity axis: one URAM block.
pub const CAPACITY_UNIT_BYTES: u64 = 36 * 1024;

/// An allocation problem: which virtual buffers get physical on-chip
/// storage, subject to the SRAM budget.
#[derive(Debug)]
pub struct AllocProblem<'a> {
    /// Ground-truth latency evaluator.
    pub evaluator: &'a Evaluator<'a>,
    /// The candidate virtual buffers (features and weights mixed).
    pub buffers: &'a [VirtualBuffer],
    /// On-chip bytes available for tensor buffers.
    pub budget_bytes: u64,
    /// Residual exposed load time per weight value (from the prefetch
    /// plan); weights absent from the map are fully hidden when
    /// resident.
    exposure: HashMap<ValueId, f64>,
    /// Per-buffer weight-mode variants: `None` is a legacy binary row;
    /// `Some` rows (single-member weight buffers under a streaming-
    /// aware run) let the allocator choose between pinning, partial
    /// residency, and streaming. Entry 0 of a `Some` list is always
    /// the pinned option.
    modes: Vec<Option<Vec<ModeOption>>>,
}

impl<'a> AllocProblem<'a> {
    /// Builds a problem; `plan` supplies the weight-load exposure.
    /// Equivalent to [`AllocProblem::with_streaming`] at
    /// [`StreamingMode::Off`].
    #[must_use]
    pub fn new(
        evaluator: &'a Evaluator<'a>,
        buffers: &'a [VirtualBuffer],
        budget_bytes: u64,
        plan: &PrefetchPlan,
    ) -> Self {
        Self::with_streaming(evaluator, buffers, budget_bytes, plan, StreamingMode::Off)
    }

    /// Builds a problem with per-buffer weight-mode variants derived
    /// from the prefetch plan. Only single-member weight buffers are
    /// moded: a multi-member (time-shared) buffer already reloads its
    /// weights each inference and charging a stream on top of that
    /// reload would double-pay the exposure, so shared buffers stay
    /// binary pinned rows.
    #[must_use]
    pub fn with_streaming(
        evaluator: &'a Evaluator<'a>,
        buffers: &'a [VirtualBuffer],
        budget_bytes: u64,
        plan: &PrefetchPlan,
        streaming: StreamingMode,
    ) -> Self {
        let exposure = plan
            .iter()
            .filter(|(_, e)| !e.fully_hidden())
            .map(|(&id, e)| (id, e.exposed_seconds))
            .collect();
        let modes = buffers
            .iter()
            .map(|buf| match (streaming, buf.members.as_slice()) {
                (StreamingMode::Off, _) => None,
                (_, &[id @ ValueId::Weight(_)]) => {
                    Some(plan.mode_options(id, buf.bytes, streaming))
                }
                _ => None,
            })
            .collect();
        Self {
            evaluator,
            buffers,
            budget_bytes,
            exposure,
            modes,
        }
    }

    /// The mode variants of buffer `i`, or `None` for a legacy binary
    /// row.
    #[must_use]
    pub fn variants_of(&self, i: usize) -> Option<&[ModeOption]> {
        self.modes[i].as_deref()
    }

    /// The selected option of a moded buffer, if buffer `i` is moded
    /// and offers `mode`.
    fn option_for(&self, i: usize, mode: WeightMode) -> Option<&ModeOption> {
        self.modes[i].as_deref()?.iter().find(|o| o.mode == mode)
    }

    /// Materialises the residency implied by a chosen buffer set.
    ///
    /// Exposure is a *reload* cost: only weights in shared
    /// (multi-member) buffers are re-fetched each inference, so only
    /// they pay their plan exposure in the steady state. A
    /// single-member weight buffer is persistent — loaded once, free
    /// thereafter — and charging it per-inference exposure made the
    /// analytic model up to ~15% pessimistic against the simulator on
    /// allocations with many unshared weight buffers.
    #[must_use]
    pub fn residency_for(&self, chosen: &[bool]) -> Residency {
        let mut r = Residency::new();
        for (buf, _) in self.buffers.iter().zip(chosen).filter(|(_, &c)| c) {
            let shared = buf.members.len() > 1;
            for &member in &buf.members {
                r.insert(member);
                if !shared {
                    continue;
                }
                if let (ValueId::Weight(node), Some(&exp)) = (member, self.exposure.get(&member)) {
                    r.set_exposed_weight(node, exp);
                }
            }
        }
        r
    }

    /// [`AllocProblem::residency_for`] with per-buffer weight modes: a
    /// pinned single-member weight is persistent (no steady exposure,
    /// exactly as in the legacy path), while streamed and partially
    /// resident weights pay their selected option's steady exposure
    /// every inference. Shared (multi-member) buffers keep the legacy
    /// reload exposure and never a mode surcharge on top — a weight
    /// pays for its re-streaming exactly once.
    #[must_use]
    pub fn residency_for_modes(&self, chosen: &[bool], modes: &[WeightMode]) -> Residency {
        let mut r = Residency::new();
        for (i, buf) in self.buffers.iter().enumerate() {
            if !chosen[i] {
                continue;
            }
            let shared = buf.members.len() > 1;
            let moded = !shared && self.modes[i].is_some();
            for &member in &buf.members {
                r.insert(member);
                let ValueId::Weight(node) = member else {
                    continue;
                };
                if moded {
                    if modes[i] == WeightMode::Pinned {
                        continue; // persistent: loaded once, free thereafter
                    }
                    if let Some(o) = self.option_for(i, modes[i]) {
                        r.set_exposed_weight(node, o.exposed_seconds);
                    }
                } else if shared {
                    if let Some(&exp) = self.exposure.get(&member) {
                        r.set_exposed_weight(node, exp);
                    }
                }
            }
        }
        r
    }

    /// Exact end-to-end latency of a chosen buffer set.
    #[must_use]
    pub fn latency_of(&self, chosen: &[bool]) -> f64 {
        self.evaluator.total_latency(&self.residency_for(chosen))
    }

    /// Total bytes of a chosen buffer set.
    #[must_use]
    pub fn bytes_of(&self, chosen: &[bool]) -> u64 {
        self.buffers
            .iter()
            .zip(chosen)
            .filter(|(_, &c)| c)
            .map(|(b, _)| b.bytes)
            .sum()
    }

    /// Total bytes of a chosen buffer set under per-buffer weight
    /// modes: a moded buffer consumes its selected option's bytes
    /// (e.g. only the ping-pong footprint when streamed).
    #[must_use]
    pub fn bytes_of_modes(&self, chosen: &[bool], modes: &[WeightMode]) -> u64 {
        self.buffers
            .iter()
            .enumerate()
            .filter(|&(i, _)| chosen[i])
            .map(|(i, b)| self.option_for(i, modes[i]).map_or(b.bytes, |o| o.bytes))
            .sum()
    }

    /// Whether a chosen set fits the budget.
    #[must_use]
    pub fn fits(&self, chosen: &[bool]) -> bool {
        self.bytes_of(chosen) <= self.budget_bytes
    }

    /// Exposed seconds for a weight value (0 when fully hidden).
    #[must_use]
    pub fn exposure_of(&self, id: ValueId) -> f64 {
        self.exposure.get(&id).copied().unwrap_or(0.0)
    }
}

/// The outcome of running an allocator.
#[derive(Debug, Clone)]
pub struct AllocOutcome {
    /// `chosen[i]` — whether buffer `i` received physical storage.
    pub chosen: Vec<bool>,
    /// `modes[i]` — the weight mode of buffer `i` (aligned with
    /// `chosen`; [`WeightMode::Pinned`] for features, unchosen buffers,
    /// and every buffer of a non-streaming run).
    pub modes: Vec<WeightMode>,
    /// The implied residency.
    pub residency: Residency,
    /// Exact end-to-end latency under that residency.
    pub latency: f64,
    /// On-chip bytes consumed.
    pub bytes: u64,
}

impl AllocOutcome {
    /// Assembles the outcome for a chosen vector (all modes pinned).
    #[must_use]
    pub fn from_chosen(problem: &AllocProblem<'_>, chosen: Vec<bool>) -> Self {
        let residency = problem.residency_for(&chosen);
        let latency = problem.evaluator.total_latency(&residency);
        let bytes = problem.bytes_of(&chosen);
        let modes = vec![WeightMode::Pinned; chosen.len()];
        Self {
            chosen,
            modes,
            residency,
            latency,
            bytes,
        }
    }

    /// Assembles the outcome for a chosen vector with per-buffer weight
    /// modes.
    #[must_use]
    pub fn from_modes(
        problem: &AllocProblem<'_>,
        chosen: Vec<bool>,
        modes: Vec<WeightMode>,
    ) -> Self {
        let residency = problem.residency_for_modes(&chosen, &modes);
        let latency = problem.evaluator.total_latency(&residency);
        let bytes = problem.bytes_of_modes(&chosen, &modes);
        Self {
            chosen,
            modes,
            residency,
            latency,
            bytes,
        }
    }

    /// Indices of the allocated buffers.
    #[must_use]
    pub fn allocated_indices(&self) -> Vec<usize> {
        self.chosen
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A small synthetic fixture shared by the allocator tests.

    use crate::eval::Evaluator;
    use crate::interference::VirtualBuffer;
    use crate::value::ValueId;
    use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
    use lcmm_graph::{ConvParams, FeatureShape, Graph, GraphBuilder};

    /// A 10-conv linear network that is strongly weight-transfer bound
    /// at fp32: pointwise convolutions over many channels at a tiny
    /// spatial extent have far more weight bytes than arithmetic.
    pub fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.input(FeatureShape::new(512, 7, 7)).expect("input");
        for i in 0..10 {
            cur = b
                .conv(format!("c{i}"), cur, ConvParams::pointwise(512))
                .expect("valid conv");
        }
        b.finish(cur).expect("chain is valid")
    }

    pub fn setup(graph: &Graph) -> (AccelDesign, GraphProfile) {
        let d = AccelDesign::explore(graph, &Device::vu9p(), Precision::Float32);
        let p = d.profile(graph);
        (d, p)
    }

    /// One single-member buffer per conv weight + feature.
    pub fn singleton_buffers(graph: &Graph, evaluator: &Evaluator<'_>) -> Vec<VirtualBuffer> {
        let b = 4; // fp32 bytes
        let mut bufs = Vec::new();
        for n in graph.conv_layers() {
            bufs.push(VirtualBuffer {
                members: vec![ValueId::Weight(n.id())],
                bytes: graph.node_weight_elems(n.id()) * b,
            });
            bufs.push(VirtualBuffer {
                members: vec![ValueId::Feature(n.id())],
                bytes: n.output_shape().elems() * b,
            });
        }
        let _ = evaluator;
        bufs
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::prefetch::PrefetchPlan;

    #[test]
    fn residency_and_bytes_track_choice() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, u64::MAX, &PrefetchPlan::default());
        let mut chosen = vec![false; bufs.len()];
        chosen[0] = true;
        chosen[3] = true;
        let out = AllocOutcome::from_chosen(&problem, chosen);
        assert_eq!(out.residency.len(), 2);
        assert_eq!(out.bytes, bufs[0].bytes + bufs[3].bytes);
        assert_eq!(out.allocated_indices(), vec![0, 3]);
    }

    #[test]
    fn more_budget_never_hurts_latency() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, u64::MAX, &PrefetchPlan::default());
        let none = problem.latency_of(&vec![false; bufs.len()]);
        let all = problem.latency_of(&vec![true; bufs.len()]);
        assert!(all <= none);
    }
}
