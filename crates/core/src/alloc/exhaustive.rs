//! Exact subset enumeration, for bounding the heuristics on small
//! instances.

use super::{AllocOutcome, AllocProblem};

/// Largest instance the exhaustive allocator accepts.
pub const MAX_BUFFERS: usize = 20;

/// Enumerates all feasible subsets and returns the latency-optimal one.
///
/// # Panics
///
/// Panics if the problem has more than [`MAX_BUFFERS`] buffers — beyond
/// that the 2^n enumeration is no longer a test-time tool.
#[must_use]
pub fn allocate(problem: &AllocProblem<'_>) -> AllocOutcome {
    let n = problem.buffers.len();
    assert!(
        n <= MAX_BUFFERS,
        "exhaustive allocator limited to {MAX_BUFFERS} buffers, got {n}"
    );
    let mut best_mask = 0u32;
    let mut best_latency = f64::INFINITY;
    for mask in 0..(1u32 << n) {
        let chosen: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        if !problem.fits(&chosen) {
            continue;
        }
        let latency = problem.latency_of(&chosen);
        if latency < best_latency {
            best_latency = latency;
            best_mask = mask;
        }
    }
    let chosen: Vec<bool> = (0..n).map(|i| best_mask >> i & 1 == 1).collect();
    AllocOutcome::from_chosen(problem, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{dnnk, greedy};
    use crate::eval::Evaluator;
    use crate::interference::VirtualBuffer;
    use crate::prefetch::PrefetchPlan;
    use crate::value::ValueId;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::{ConvParams, FeatureShape, GraphBuilder};

    fn small_problem_graph() -> lcmm_graph::Graph {
        // Weight-bound pointwise chain with unequal weight sizes so the
        // knapsack has real choices to make.
        let mut b = GraphBuilder::new("small");
        let mut cur = b.input(FeatureShape::new(512, 7, 7)).expect("input");
        for (i, out) in [512usize, 640, 768, 512, 640, 768].iter().enumerate() {
            cur = b
                .conv(format!("c{i}"), cur, ConvParams::pointwise(*out))
                .expect("valid");
        }
        b.finish(cur).expect("valid")
    }

    #[test]
    fn heuristics_within_factor_of_optimal() {
        let g = small_problem_graph();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Float32);
        let p = d.profile(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs: Vec<VirtualBuffer> = g
            .conv_layers()
            .flat_map(|n| {
                [
                    VirtualBuffer {
                        members: vec![ValueId::Weight(n.id())],
                        bytes: g.node_weight_elems(n.id()) * 4,
                    },
                    VirtualBuffer {
                        members: vec![ValueId::Feature(n.id())],
                        bytes: n.output_shape().elems() * 4,
                    },
                ]
            })
            .collect();
        assert!(bufs.len() <= MAX_BUFFERS);
        let budget = 10 << 20;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let exact = allocate(&problem);
        let dn = dnnk::allocate(&problem);
        let gr = greedy::allocate(&problem);
        let umm = problem.latency_of(&vec![false; bufs.len()]);
        assert!(exact.latency <= dn.latency + 1e-12);
        assert!(exact.latency <= gr.latency + 1e-12);
        // Heuristic gains should recover most of the exact gain.
        let exact_gain = umm - exact.latency;
        let dnnk_gain = umm - dn.latency;
        assert!(
            dnnk_gain >= 0.75 * exact_gain,
            "dnnk {dnnk_gain} vs exact {exact_gain}"
        );
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn rejects_large_instances() {
        let g = small_problem_graph();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let p = d.profile(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs: Vec<VirtualBuffer> = (0..MAX_BUFFERS + 1)
            .map(|i| VirtualBuffer {
                members: vec![ValueId::Feature(lcmm_graph::NodeId::new(i % g.len()))],
                bytes: 1,
            })
            .collect();
        let problem = AllocProblem::new(&ev, &bufs, 1 << 20, &PrefetchPlan::default());
        let _ = allocate(&problem);
    }
}
