//! DNNK: the DNN-Knapsack allocator (paper Alg. 1).
//!
//! A 0/1-knapsack dynamic program over virtual buffers with the capacity
//! axis quantised to URAM blocks. The twist over the classic knapsack is
//! *pivot compensation* (paper Eq. 4): a layer's latency is the max of
//! its compute and per-tensor transfer terms, so the gain of putting one
//! tensor on chip depends on which of the layer's other tensors are
//! already on chip — the largest remaining off-chip term is the *pivot*,
//! and gains below it are worthless.
//!
//! Where the paper subtracts pivot terms symbolically (Eq. 2/4), this
//! implementation evaluates each affected layer's Eq.-1 latency exactly
//! under the "already chosen at this capacity" approximation that Alg. 1
//! encodes through its `pbuf_table` lookups. The final allocation is
//! re-scored with the exact evaluator.

use super::{AllocOutcome, AllocProblem, CAPACITY_UNIT_BYTES};
use crate::value::ValueId;
use lcmm_graph::NodeId;
use std::collections::HashMap;

/// Per-node latency terms, with each term tagged by the value whose
/// residency controls it (the paper's operation latency table rows).
#[derive(Debug, Clone)]
struct OpTerms {
    compute: f64,
    /// `(controlling value, seconds)` for each input source.
    inputs: Vec<(ValueId, f64)>,
    /// `(controlling value, seconds, exposed-when-resident seconds)`.
    weight: Option<(ValueId, f64, f64)>,
    /// `(controlling value, seconds)` for the produced tensor.
    output: (ValueId, f64),
}

impl OpTerms {
    /// Eq. 1 with residency decided by `on_chip`.
    fn latency(&self, on_chip: &dyn Fn(ValueId) -> bool) -> f64 {
        let if_term: f64 = self
            .inputs
            .iter()
            .filter(|(v, _)| !on_chip(*v))
            .map(|(_, t)| *t)
            .sum();
        let wt_term = match self.weight {
            Some((v, t, exposed)) => {
                if on_chip(v) {
                    exposed
                } else {
                    t
                }
            }
            None => 0.0,
        };
        let of_term = if on_chip(self.output.0) { 0.0 } else { self.output.1 };
        self.compute.max(if_term).max(wt_term).max(of_term)
    }
}

/// Runs DNNK and returns the allocation.
#[must_use]
pub fn allocate(problem: &AllocProblem<'_>) -> AllocOutcome {
    let n = problem.buffers.len();
    let units = (problem.budget_bytes / CAPACITY_UNIT_BYTES) as usize;
    if n == 0 || units == 0 {
        return AllocOutcome::from_chosen(problem, vec![false; n]);
    }

    // --- Static tables -------------------------------------------------
    let owner: HashMap<ValueId, usize> = problem
        .buffers
        .iter()
        .enumerate()
        .flat_map(|(i, b)| b.members.iter().map(move |&m| (m, i)))
        .collect();

    let graph = problem.evaluator.graph();
    let profile = problem.evaluator.profile();
    let op_terms: Vec<OpTerms> = graph
        .iter()
        .map(|node| {
            let row = profile.node(node.id());
            OpTerms {
                compute: row.compute,
                inputs: row
                    .inputs
                    .iter()
                    .map(|&(src, t)| (ValueId::Feature(src), t))
                    .collect(),
                weight: (row.weight > 0.0).then(|| {
                    let v = ValueId::Weight(node.id());
                    (v, row.weight, problem.exposure_of(v))
                }),
                output: (ValueId::Feature(node.id()), row.output),
            }
        })
        .collect();

    // Ops touched by each buffer.
    let touched: Vec<Vec<NodeId>> = problem
        .buffers
        .iter()
        .map(|b| problem.evaluator.touched_nodes(&b.members))
        .collect();

    let sizes: Vec<usize> = problem
        .buffers
        .iter()
        .map(|b| (b.bytes.div_ceil(CAPACITY_UNIT_BYTES)) as usize)
        .collect();

    // --- DP ------------------------------------------------------------
    // choice[i][j]: buffer i taken in cell (i, j). This doubles as the
    // paper's pbuf_table for pivot lookups.
    let mut choice = vec![false; n * (units + 1)];
    let mut prev_l = vec![0.0f64; units + 1];
    let mut cur_l = vec![0.0f64; units + 1];

    for i in 0..n {
        let s = sizes[i];
        // Which buffers interact with buffer i (own tensors at the same
        // ops)? Their choice bits at column j form the cache key.
        let mut relevant: Vec<usize> = Vec::new();
        for &op in &touched[i] {
            let t = &op_terms[op.index()];
            let mut note = |v: ValueId| {
                if let Some(&o) = owner.get(&v) {
                    if o < i && !relevant.contains(&o) {
                        relevant.push(o);
                    }
                }
            };
            for &(v, _) in &t.inputs {
                note(v);
            }
            if let Some((v, _, _)) = t.weight {
                note(v);
            }
            note(t.output.0);
        }
        relevant.truncate(62); // cache key capacity; beyond this, collide

        let mut gain_cache: HashMap<u64, f64> = HashMap::new();
        for j in 0..=units {
            let l0 = prev_l[j];
            if s > j || s == 0 {
                cur_l[j] = l0;
                continue;
            }
            // Residency context at this capacity (the pbuf_table
            // approximation of Alg. 1).
            let mut key = 0u64;
            for (bit, &r) in relevant.iter().enumerate() {
                if choice[r * (units + 1) + j] {
                    key |= 1 << bit;
                }
            }
            let gain = *gain_cache.entry(key).or_insert_with(|| {
                let ctx_on = |v: ValueId| -> bool {
                    owner
                        .get(&v)
                        .is_some_and(|&o| o < i && choice[o * (units + 1) + j])
                };
                let with_i = |v: ValueId| -> bool {
                    ctx_on(v) || problem.buffers[i].members.contains(&v)
                };
                touched[i]
                    .iter()
                    .map(|&op| {
                        let t = &op_terms[op.index()];
                        t.latency(&ctx_on) - t.latency(&with_i)
                    })
                    .sum()
            });
            let l1 = prev_l[j - s] + gain;
            if l1 > l0 {
                cur_l[j] = l1;
                choice[i * (units + 1) + j] = true;
            } else {
                cur_l[j] = l0;
            }
        }
        std::mem::swap(&mut prev_l, &mut cur_l);
    }

    // --- Backtrace -------------------------------------------------------
    let mut chosen = vec![false; n];
    let mut j = units;
    for i in (0..n).rev() {
        if choice[i * (units + 1) + j] {
            chosen[i] = true;
            j -= sizes[i];
        }
    }
    AllocOutcome::from_chosen(problem, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::test_support::*;
    use crate::eval::Evaluator;
    use crate::prefetch::PrefetchPlan;

    #[test]
    fn respects_budget() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let budget = 4 * CAPACITY_UNIT_BYTES * 10;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.bytes <= budget, "{} > {}", out.bytes, budget);
    }

    #[test]
    fn improves_over_empty_when_budget_allows() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem =
            AllocProblem::new(&ev, &bufs, 16 << 20, &PrefetchPlan::default());
        let out = allocate(&problem);
        let empty = problem.latency_of(&vec![false; bufs.len()]);
        assert!(out.latency < empty, "DNNK found no improvement");
        assert!(!out.residency.is_empty());
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 0, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.residency.is_empty());
        assert_eq!(out.bytes, 0);
    }

    #[test]
    fn huge_budget_takes_everything_useful() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 1 << 40, &PrefetchPlan::default());
        let out = allocate(&problem);
        // With unbounded room the latency must reach the best possible
        // full-residency value.
        let all = problem.latency_of(&vec![true; bufs.len()]);
        assert!((out.latency - all).abs() / all < 0.05, "{} vs {}", out.latency, all);
    }

    #[test]
    fn op_terms_latency_matches_pivot_example() {
        // The paper's worked example (§3.3): three tensors with
        // reductions 0.01, 0.01, 0.05 — putting f7 on chip while w4
        // stays off leaves the pivot at w4.
        use lcmm_graph::NodeId;
        let f7 = ValueId::Feature(NodeId::new(1));
        let w4 = ValueId::Weight(NodeId::new(2));
        let f4 = ValueId::Feature(NodeId::new(2));
        let t = OpTerms {
            compute: 0.0,
            inputs: vec![(f7, 0.01)],
            weight: Some((w4, 0.01, 0.0)),
            output: (f4, 0.05),
        };
        let none = t.latency(&|_| false);
        assert_eq!(none, 0.05);
        // f7 on chip: latency still 0.05 (pivot unaffected).
        let f7_on = t.latency(&|v| v == f7);
        assert_eq!(f7_on, 0.05);
        // f4 additionally on chip: pivot drops to w4's 0.01 — the gain
        // relative to f7_on is 0.04, matching the paper's compensation.
        let f4_on = t.latency(&|v| v == f7 || v == f4);
        assert_eq!(f4_on, 0.01);
        assert!((f7_on - f4_on - 0.04).abs() < 1e-12);
    }

    #[test]
    fn exposed_weight_limits_gain() {
        use lcmm_graph::NodeId;
        let w = ValueId::Weight(NodeId::new(0));
        let f = ValueId::Feature(NodeId::new(0));
        let t = OpTerms {
            compute: 0.02,
            inputs: vec![],
            weight: Some((w, 0.10, 0.06)),
            output: (f, 0.0),
        };
        assert_eq!(t.latency(&|_| false), 0.10);
        // Resident but only partially hidden: the exposed 0.06 remains.
        assert_eq!(t.latency(&|v| v == w), 0.06);
    }
}
