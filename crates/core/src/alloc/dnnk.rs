//! DNNK: the DNN-Knapsack allocator (paper Alg. 1).
//!
//! A 0/1-knapsack dynamic program over virtual buffers with the capacity
//! axis quantised to URAM blocks. The twist over the classic knapsack is
//! *pivot compensation* (paper Eq. 4): a layer's latency is the max of
//! its compute and per-tensor transfer terms, so the gain of putting one
//! tensor on chip depends on which of the layer's other tensors are
//! already on chip — the largest remaining off-chip term is the *pivot*,
//! and gains below it are worthless.
//!
//! Where the paper subtracts pivot terms symbolically (Eq. 2/4), this
//! implementation evaluates each affected layer's Eq.-1 latency exactly
//! under the "already chosen at this capacity" approximation that Alg. 1
//! encodes through its `pbuf_table` lookups. The final allocation is
//! re-scored with the exact evaluator.

use super::{AllocOutcome, AllocProblem, CAPACITY_UNIT_BYTES};
use crate::prefetch::WeightMode;
use crate::profiling;
use crate::value::ValueId;
use lcmm_graph::NodeId;

/// Widest relevant-buffer set whose choice bits fit the `u64` gain-cache
/// key without colliding (bit 63 is left unused as a sanity margin).
const GAIN_CACHE_KEY_BITS: usize = 62;

/// Per-node latency terms, with each term tagged by the value whose
/// residency controls it (the paper's operation latency table rows).
#[derive(Debug, Clone)]
struct OpTerms {
    compute: f64,
    /// `(controlling value, seconds)` for each input source.
    inputs: Vec<(ValueId, f64)>,
    /// `(controlling value, seconds, exposed-when-resident seconds)`.
    weight: Option<(ValueId, f64, f64)>,
    /// `(controlling value, seconds)` for the produced tensor.
    output: (ValueId, f64),
}

impl OpTerms {
    /// Eq. 1 with residency decided by `on_chip`. Generic (not `dyn`)
    /// so the membership probes inline into the DP's hot loop.
    fn latency<F: Fn(ValueId) -> bool>(&self, on_chip: &F) -> f64 {
        let if_term: f64 = self
            .inputs
            .iter()
            .filter(|(v, _)| !on_chip(*v))
            .map(|(_, t)| *t)
            .sum();
        let wt_term = match self.weight {
            Some((v, t, exposed)) => {
                if on_chip(v) {
                    exposed
                } else {
                    t
                }
            }
            None => 0.0,
        };
        let of_term = if on_chip(self.output.0) {
            0.0
        } else {
            self.output.1
        };
        self.compute.max(if_term).max(wt_term).max(of_term)
    }

    /// [`OpTerms::latency`] with the weight term of one specific value
    /// overridden to `member_exposed` when resident — the exact-path
    /// counterpart of the compiled variant evaluation: a moded row
    /// charges its selected option's steady exposure for its own
    /// weight, not the plan's pinned approximation.
    fn latency_with_member<F: Fn(ValueId) -> bool>(
        &self,
        on_chip: &F,
        member: ValueId,
        member_exposed: f64,
    ) -> f64 {
        let if_term: f64 = self
            .inputs
            .iter()
            .filter(|(v, _)| !on_chip(*v))
            .map(|(_, t)| *t)
            .sum();
        let wt_term = match self.weight {
            Some((v, t, exposed)) => {
                if on_chip(v) {
                    if v == member {
                        member_exposed
                    } else {
                        exposed
                    }
                } else {
                    t
                }
            }
            None => 0.0,
        };
        let of_term = if on_chip(self.output.0) {
            0.0
        } else {
            self.output.1
        };
        self.compute.max(if_term).max(wt_term).max(of_term)
    }
}

/// One latency term compiled for the DP's hot loop: the cache-key bit
/// of the buffer owning the controlling value (`u32::MAX` when the
/// context cannot hold it), whether the value belongs to the buffer
/// currently being placed, and the term's transfer seconds.
#[derive(Debug, Clone, Copy)]
struct Term {
    bit: u32,
    member: bool,
    seconds: f64,
}

/// [`OpTerms`] with every value probe pre-resolved against one buffer's
/// DP row; input terms live in a shared arena indexed by range.
#[derive(Debug, Clone, Copy)]
struct OpCompact {
    compute: f64,
    in_start: u32,
    in_len: u32,
    /// `(term, exposed-when-resident seconds)`.
    weight: Option<(Term, f64)>,
    output: Term,
}

/// Runs DNNK and returns the allocation.
#[must_use]
pub fn allocate(problem: &AllocProblem<'_>) -> AllocOutcome {
    let n = problem.buffers.len();
    let units = (problem.budget_bytes / CAPACITY_UNIT_BYTES) as usize;
    if n == 0 || units == 0 {
        return AllocOutcome::from_chosen(problem, vec![false; n]);
    }
    let tables = dp(problem, units);

    // --- Backtrace -------------------------------------------------------
    let mut chosen = vec![false; n];
    let mut modes = vec![WeightMode::Pinned; n];
    let mut any_moded = false;
    let mut j = units;
    for i in (0..n).rev() {
        if tables.choice[i * (units + 1) + j] {
            chosen[i] = true;
            match problem.variants_of(i) {
                Some(opts) => {
                    any_moded = true;
                    let vi = tables.variant_choice[i * (units + 1) + j] as usize;
                    modes[i] = opts[vi].mode;
                    j -= tables.variants[i].as_ref().expect("moded row has variants")[vi].0;
                }
                None => j -= tables.sizes[i],
            }
        } else if problem.variants_of(i).is_some() {
            any_moded = true;
        }
    }
    if any_moded {
        AllocOutcome::from_modes(problem, chosen, modes)
    } else {
        AllocOutcome::from_chosen(problem, chosen)
    }
}

/// The DNNK value curve: entry `u` is the best achievable latency
/// *reduction* (seconds, under the pivot-compensated pbuf approximation
/// of Alg. 1) when the capacity is `u` URAM units. Entry 0 is always
/// `0.0` and the curve is non-decreasing.
///
/// Multi-tenant co-planning combines one curve per tenant in a
/// second-level capacity DP: because tenants' buffers never touch the
/// same ops, the joint knapsack over the union of all buffers decomposes
/// exactly into per-tenant curves plus a split of the shared capacity.
#[must_use]
pub fn gain_curve(problem: &AllocProblem<'_>) -> Vec<f64> {
    let n = problem.buffers.len();
    let units = (problem.budget_bytes / CAPACITY_UNIT_BYTES) as usize;
    if n == 0 || units == 0 {
        return vec![0.0; units + 1];
    }
    dp(problem, units).values
}

/// The tables the shared DP produces: the full `choice` table
/// (row-major, `n × (units+1)`; doubles as the paper's pbuf_table),
/// the selected variant per taken cell of a moded row, the final value
/// row (best gain per capacity), the per-buffer legacy sizes in units,
/// and each moded row's `(size units, member exposed seconds)` variant
/// list.
struct DpTables {
    choice: Vec<bool>,
    variant_choice: Vec<u8>,
    values: Vec<f64>,
    sizes: Vec<usize>,
    variants: Vec<Option<Vec<(usize, f64)>>>,
}

/// The shared DP over `units` capacity columns.
fn dp(problem: &AllocProblem<'_>, units: usize) -> DpTables {
    let n = problem.buffers.len();

    // --- Static tables -------------------------------------------------
    let graph = problem.evaluator.graph();
    // Owning buffer per value, dense by node: coloring partitions values
    // across buffers, so one slot per (node, tensor kind) suffices. The
    // DP probes ownership once per latency term per column — a HashMap
    // here is the allocator's hottest line on thousand-node graphs.
    const NO_OWNER: u32 = u32::MAX;
    let mut feature_owner: Vec<u32> = vec![NO_OWNER; graph.len()];
    let mut weight_owner: Vec<u32> = vec![NO_OWNER; graph.len()];
    for (i, b) in problem.buffers.iter().enumerate() {
        for &m in &b.members {
            match m {
                ValueId::Feature(node) => feature_owner[node.index()] = i as u32,
                ValueId::Weight(node) => weight_owner[node.index()] = i as u32,
            }
        }
    }
    let owner_of = |v: ValueId| -> Option<usize> {
        let o = match v {
            ValueId::Feature(node) => feature_owner[node.index()],
            ValueId::Weight(node) => weight_owner[node.index()],
        };
        (o != NO_OWNER).then_some(o as usize)
    };
    let profile = problem.evaluator.profile();
    let op_terms: Vec<OpTerms> = graph
        .iter()
        .map(|node| {
            let row = profile.node(node.id());
            OpTerms {
                compute: row.compute,
                inputs: row
                    .inputs
                    .iter()
                    .map(|&(src, t)| (ValueId::Feature(src), t))
                    .collect(),
                weight: (row.weight > 0.0).then(|| {
                    let v = ValueId::Weight(node.id());
                    (v, row.weight, problem.exposure_of(v))
                }),
                output: (ValueId::Feature(node.id()), row.output),
            }
        })
        .collect();

    // Ops touched by each buffer.
    let touched: Vec<Vec<NodeId>> = problem
        .buffers
        .iter()
        .map(|b| problem.evaluator.touched_nodes(&b.members))
        .collect();

    let sizes: Vec<usize> = problem
        .buffers
        .iter()
        .map(|b| (b.bytes.div_ceil(CAPACITY_UNIT_BYTES)) as usize)
        .collect();

    // Per-row mode variants compiled to `(size units, member exposed)`.
    // A `None` row is the legacy binary knapsack item; a `Some` row is
    // a multiple-choice item — at most one variant can be taken, each
    // trading SRAM units against the steady exposure charged for the
    // row's own weight.
    let variants: Vec<Option<Vec<(usize, f64)>>> = (0..n)
        .map(|i| {
            problem.variants_of(i).map(|opts| {
                opts.iter()
                    .map(|o| {
                        (
                            o.bytes.div_ceil(CAPACITY_UNIT_BYTES) as usize,
                            o.exposed_seconds,
                        )
                    })
                    .collect()
            })
        })
        .collect();

    // --- DP ------------------------------------------------------------
    // choice[i][j]: buffer i taken in cell (i, j). This doubles as the
    // paper's pbuf_table for pivot lookups. variant_choice[i][j] is the
    // taken variant index of a moded row (0 otherwise).
    let mut choice = vec![false; n * (units + 1)];
    let mut variant_choice = vec![0u8; n * (units + 1)];
    let mut prev_l = vec![0.0f64; units + 1];
    let mut cur_l = vec![0.0f64; units + 1];

    // Key-bit slot per buffer while processing one row of the DP;
    // reset after each row by walking the (short) relevant list.
    const NO_BIT: u32 = u32::MAX;
    let mut bit_of: Vec<u32> = vec![NO_BIT; n];

    for i in 0..n {
        let s = sizes[i];
        // Membership probes in `compute_gain` run once per latency term
        // per cache miss; colored buffers can hold hundreds of members,
        // so a linear `contains` there dominates the whole DP.
        let mut members_sorted: Vec<ValueId> = problem.buffers[i].members.clone();
        members_sorted.sort_unstable();
        // Which buffers interact with buffer i (own tensors at the same
        // ops)? Their choice bits at column j form the cache key. The
        // same sweep records per op the key bits of its *own* term
        // owners (`op_masks[p]`): an op's latency under the column
        // context depends only on those bits, so per-op deltas can be
        // memoized under the masked key. Bits are assigned in first-
        // encounter order, exactly as a plain de-duplicating scan would.
        //
        // Each term is also compiled down to `(bit, member, seconds)`
        // so that a cache miss evaluates straight-line float code — the
        // membership probe and owner lookup are paid once per (buffer,
        // term) here instead of once per evaluated column.
        let mut relevant: Vec<usize> = Vec::new();
        let mut op_masks: Vec<u64> = Vec::with_capacity(touched[i].len());
        let mut ops_compact: Vec<OpCompact> = Vec::with_capacity(touched[i].len());
        let mut in_terms: Vec<Term> = Vec::new();
        for &op in &touched[i] {
            let t = &op_terms[op.index()];
            let mut mask = 0u64;
            let mut term_of = |v: ValueId, seconds: f64, mask: &mut u64| -> Term {
                let mut bit = NO_BIT;
                if let Some(o) = owner_of(v) {
                    if o < i {
                        bit = bit_of[o];
                        if bit == NO_BIT {
                            bit = relevant.len() as u32;
                            bit_of[o] = bit;
                            relevant.push(o);
                        }
                        if bit < 64 {
                            *mask |= 1 << bit;
                        }
                    }
                }
                Term {
                    bit,
                    member: members_sorted.binary_search(&v).is_ok(),
                    seconds,
                }
            };
            let in_start = in_terms.len() as u32;
            for &(v, seconds) in &t.inputs {
                let term = term_of(v, seconds, &mut mask);
                in_terms.push(term);
            }
            let weight = t
                .weight
                .map(|(v, seconds, exposed)| (term_of(v, seconds, &mut mask), exposed));
            let output = term_of(t.output.0, t.output.1, &mut mask);
            ops_compact.push(OpCompact {
                compute: t.compute,
                in_start,
                in_len: in_terms.len() as u32 - in_start,
                weight,
                output,
            });
            op_masks.push(mask);
        }
        for &r in &relevant {
            bit_of[r] = NO_BIT;
        }
        // The cache key has one bit per relevant buffer. When the
        // relevant set does not fit, the cache is skipped and the gain
        // recomputed exactly per column — truncating the set would make
        // distinct residency contexts silently share one key (a wrong
        // gain, not just a slow one), and the masks go unused.
        let use_cache = relevant.len() <= GAIN_CACHE_KEY_BITS;
        // Per-op memo of latency deltas under the op's masked key. A
        // handful of distinct masked keys show up per op across the
        // whole row, so a linear scan beats hashing.
        let mut op_memo: Vec<Vec<(u64, f64)>> = vec![Vec::new(); op_masks.len()];
        // Eq. 1 twice — once under the column context, once with buffer
        // i's members added — from the compiled terms. Same addends in
        // the same order as `OpTerms::latency`, so bit-identical.
        // `member_exposed` overrides the exposed-when-resident seconds
        // of the row's own weight (a moded row's selected variant);
        // `None` charges the compiled plan exposure, exactly the legacy
        // binary behaviour.
        let delta_of = |p: usize, rk: u64, member_exposed: Option<f64>| -> f64 {
            let oc = &ops_compact[p];
            let on = |t: Term| t.bit != NO_BIT && (rk >> t.bit) & 1 == 1;
            let mut if_ctx = 0.0f64;
            let mut if_with = 0.0f64;
            for &t in &in_terms[oc.in_start as usize..(oc.in_start + oc.in_len) as usize] {
                if !on(t) {
                    if_ctx += t.seconds;
                    if !t.member {
                        if_with += t.seconds;
                    }
                }
            }
            let (wt_ctx, wt_with) = match oc.weight {
                Some((t, exposed)) => {
                    let c = on(t);
                    let with = if c {
                        exposed
                    } else if t.member {
                        member_exposed.unwrap_or(exposed)
                    } else {
                        t.seconds
                    };
                    (if c { exposed } else { t.seconds }, with)
                }
                None => (0.0, 0.0),
            };
            let out = oc.output;
            let c = on(out);
            let of_ctx = if c { 0.0 } else { out.seconds };
            let of_with = if c || out.member { 0.0 } else { out.seconds };
            let lat_ctx = oc.compute.max(if_ctx).max(wt_ctx).max(of_ctx);
            let lat_with = oc.compute.max(if_with).max(wt_with).max(of_with);
            lat_ctx - lat_with
        };

        // Context key per column, built by transposing the chosen rows
        // (sequential sweeps) instead of gathering `relevant.len()`
        // scattered bits per cell.
        let keys: Vec<u64> = if use_cache {
            let mut keys = vec![0u64; units + 1];
            for (bit, &r) in relevant.iter().enumerate() {
                let row = &choice[r * (units + 1)..(r + 1) * (units + 1)];
                for (k, &c) in keys.iter_mut().zip(row) {
                    if c {
                        *k |= 1 << bit;
                    }
                }
            }
            keys
        } else {
            Vec::new()
        };

        profiling::add_dnnk_dp_cells((units + 1) as u64);
        if let Some(vars) = &variants[i] {
            // --- Multiple-choice row: one variant may be taken --------
            // Caches are per variant: a variant changes the member
            // weight's exposed seconds, so deltas of ops touching that
            // weight differ between variants under the same context.
            let mut gain_caches: Vec<Vec<(u64, f64)>> = vec![Vec::new(); vars.len()];
            let mut op_memos: Vec<Vec<Vec<(u64, f64)>>> =
                vec![vec![Vec::new(); op_masks.len()]; vars.len()];
            let member = problem.buffers[i].members[0];
            for j in 0..=units {
                let l0 = prev_l[j];
                let mut best = l0;
                let mut best_variant = usize::MAX;
                let ctx_on = |v: ValueId| -> bool {
                    owner_of(v).is_some_and(|o| o < i && choice[o * (units + 1) + j])
                };
                let with_i =
                    |v: ValueId| -> bool { ctx_on(v) || members_sorted.binary_search(&v).is_ok() };
                for (vi, &(sv, member_exposed)) in vars.iter().enumerate() {
                    if sv > j || sv == 0 {
                        continue;
                    }
                    let gain = if use_cache {
                        let key = keys[j];
                        let gain_cache = &mut gain_caches[vi];
                        if let Some(&(_, g)) = gain_cache.iter().find(|&&(k, _)| k == key) {
                            profiling::count_gain_cache_hit();
                            g
                        } else {
                            profiling::count_gain_cache_miss();
                            let op_memo = &mut op_memos[vi];
                            let g: f64 = (0..touched[i].len())
                                .map(|p| {
                                    let rk = key & op_masks[p];
                                    if let Some(&(_, d)) =
                                        op_memo[p].iter().find(|&&(k, _)| k == rk)
                                    {
                                        d
                                    } else {
                                        let d = delta_of(p, rk, Some(member_exposed));
                                        op_memo[p].push((rk, d));
                                        d
                                    }
                                })
                                .sum();
                            gain_cache.push((key, g));
                            g
                        }
                    } else {
                        profiling::count_gain_exact_recompute();
                        touched[i]
                            .iter()
                            .map(|&op| {
                                let t = &op_terms[op.index()];
                                t.latency(&ctx_on)
                                    - t.latency_with_member(&with_i, member, member_exposed)
                            })
                            .sum()
                    };
                    let l1 = prev_l[j - sv] + gain;
                    if l1 > best {
                        best = l1;
                        best_variant = vi;
                    }
                }
                cur_l[j] = best;
                if best_variant != usize::MAX {
                    choice[i * (units + 1) + j] = true;
                    variant_choice[i * (units + 1) + j] = best_variant as u8;
                }
            }
        } else {
            // --- Legacy binary row ------------------------------------
            // Distinct context keys per buffer are few (the DP fills
            // columns left to right, so the same prefix choices
            // repeat); a linear scan over a tiny vec beats any hash
            // map here.
            let mut gain_cache: Vec<(u64, f64)> = Vec::new();
            for j in 0..=units {
                let l0 = prev_l[j];
                if s > j || s == 0 {
                    cur_l[j] = l0;
                    continue;
                }
                // Residency context at this capacity (the pbuf_table
                // approximation of Alg. 1).
                let ctx_on = |v: ValueId| -> bool {
                    owner_of(v).is_some_and(|o| o < i && choice[o * (units + 1) + j])
                };
                let with_i =
                    |v: ValueId| -> bool { ctx_on(v) || members_sorted.binary_search(&v).is_ok() };
                let gain = if use_cache {
                    let key = keys[j];
                    if let Some(&(_, g)) = gain_cache.iter().find(|&&(k, _)| k == key) {
                        profiling::count_gain_cache_hit();
                        g
                    } else {
                        profiling::count_gain_cache_miss();
                        let g: f64 = (0..touched[i].len())
                            .map(|p| {
                                let rk = key & op_masks[p];
                                if let Some(&(_, d)) = op_memo[p].iter().find(|&&(k, _)| k == rk) {
                                    d
                                } else {
                                    let d = delta_of(p, rk, None);
                                    op_memo[p].push((rk, d));
                                    d
                                }
                            })
                            .sum();
                        gain_cache.push((key, g));
                        g
                    }
                } else {
                    profiling::count_gain_exact_recompute();
                    touched[i]
                        .iter()
                        .map(|&op| {
                            let t = &op_terms[op.index()];
                            t.latency(&ctx_on) - t.latency(&with_i)
                        })
                        .sum()
                };
                let l1 = prev_l[j - s] + gain;
                if l1 > l0 {
                    cur_l[j] = l1;
                    choice[i * (units + 1) + j] = true;
                } else {
                    cur_l[j] = l0;
                }
            }
        }
        std::mem::swap(&mut prev_l, &mut cur_l);
    }

    DpTables {
        choice,
        variant_choice,
        values: prev_l,
        sizes,
        variants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::test_support::*;
    use crate::eval::Evaluator;
    use crate::prefetch::PrefetchPlan;

    #[test]
    fn respects_budget() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let budget = 4 * CAPACITY_UNIT_BYTES * 10;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.bytes <= budget, "{} > {}", out.bytes, budget);
    }

    #[test]
    fn improves_over_empty_when_budget_allows() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 16 << 20, &PrefetchPlan::default());
        let out = allocate(&problem);
        let empty = problem.latency_of(&vec![false; bufs.len()]);
        assert!(out.latency < empty, "DNNK found no improvement");
        assert!(!out.residency.is_empty());
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 0, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.residency.is_empty());
        assert_eq!(out.bytes, 0);
    }

    #[test]
    fn huge_budget_takes_everything_useful() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 1 << 40, &PrefetchPlan::default());
        let out = allocate(&problem);
        // With unbounded room the latency must reach the best possible
        // full-residency value.
        let all = problem.latency_of(&vec![true; bufs.len()]);
        assert!(
            (out.latency - all).abs() / all < 0.05,
            "{} vs {}",
            out.latency,
            all
        );
    }

    /// Regression test for the silent cache-key collision: with more
    /// than 62 relevant buffers the key used to be truncated, letting
    /// distinct residency contexts share one cached gain. The allocator
    /// must now bypass the cache (exact per-column recomputation) and
    /// stay sound.
    #[test]
    fn wide_fanout_skips_gain_cache_instead_of_colliding() {
        use lcmm_graph::{ConvParams, FeatureShape, GraphBuilder};
        let mut b = GraphBuilder::new("fanout");
        let x = b.input(FeatureShape::new(8, 4, 4)).expect("input");
        let branches: Vec<_> = (0..64)
            .map(|i| {
                b.conv(format!("b{i}"), x, ConvParams::pointwise(4))
                    .expect("valid conv")
            })
            .collect();
        let cat = b.concat("cat", &branches).expect("same spatial");
        let out = b
            .conv("out", cat, ConvParams::pointwise(8))
            .expect("valid conv");
        let g = b.finish(out).expect("valid graph");

        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        // 65 convs × (weight + feature): the concat's last input sees 63
        // earlier feature owners plus its own weight — past the 62-bit
        // key capacity.
        assert!(bufs.len() > 2 * GAIN_CACHE_KEY_BITS);
        let budget = 64 * CAPACITY_UNIT_BYTES;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());

        crate::profiling::reset_counters();
        let out = allocate(&problem);
        let counters = crate::profiling::snapshot_counters();
        assert!(
            counters.gain_exact_recomputes > 0,
            "wide relevant sets must bypass the gain cache"
        );
        assert!(out.bytes <= budget, "{} > {}", out.bytes, budget);
        let empty = problem.latency_of(&vec![false; bufs.len()]);
        assert!(out.latency <= empty + 1e-12);
    }

    #[test]
    fn gain_curve_is_anchored_and_nonnegative() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let budget = 16 << 20;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let curve = gain_curve(&problem);
        let units = (budget / CAPACITY_UNIT_BYTES) as usize;
        assert_eq!(curve.len(), units + 1);
        assert_eq!(curve[0], 0.0);
        assert!(curve.iter().all(|&v| v >= 0.0));
        assert!(
            *curve.last().unwrap() > 0.0,
            "a generous budget must find some gain"
        );
    }

    #[test]
    fn gain_curve_final_value_matches_allocate_choice() {
        // The DP behind gain_curve is the one allocate backtraces, so
        // the curve's final entry must equal the DP value of allocate's
        // chosen set under the same pbuf approximation (which in turn is
        // within re-scoring distance of the exact outcome latency).
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let budget = 16 << 20;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let curve = gain_curve(&problem);
        let out = allocate(&problem);
        let empty = problem.latency_of(&vec![false; bufs.len()]);
        let exact_gain = empty - out.latency;
        let dp_gain = *curve.last().unwrap();
        assert!(
            (dp_gain - exact_gain).abs() / exact_gain.max(1e-12) < 0.2,
            "dp {dp_gain} vs exact {exact_gain}"
        );
    }

    #[test]
    fn op_terms_latency_matches_pivot_example() {
        // The paper's worked example (§3.3): three tensors with
        // reductions 0.01, 0.01, 0.05 — putting f7 on chip while w4
        // stays off leaves the pivot at w4.
        use lcmm_graph::NodeId;
        let f7 = ValueId::Feature(NodeId::new(1));
        let w4 = ValueId::Weight(NodeId::new(2));
        let f4 = ValueId::Feature(NodeId::new(2));
        let t = OpTerms {
            compute: 0.0,
            inputs: vec![(f7, 0.01)],
            weight: Some((w4, 0.01, 0.0)),
            output: (f4, 0.05),
        };
        let none = t.latency(&|_| false);
        assert_eq!(none, 0.05);
        // f7 on chip: latency still 0.05 (pivot unaffected).
        let f7_on = t.latency(&|v| v == f7);
        assert_eq!(f7_on, 0.05);
        // f4 additionally on chip: pivot drops to w4's 0.01 — the gain
        // relative to f7_on is 0.04, matching the paper's compensation.
        let f4_on = t.latency(&|v| v == f7 || v == f4);
        assert_eq!(f4_on, 0.01);
        assert!((f7_on - f4_on - 0.04).abs() < 1e-12);
    }

    #[test]
    fn exposed_weight_limits_gain() {
        use lcmm_graph::NodeId;
        let w = ValueId::Weight(NodeId::new(0));
        let f = ValueId::Feature(NodeId::new(0));
        let t = OpTerms {
            compute: 0.02,
            inputs: vec![],
            weight: Some((w, 0.10, 0.06)),
            output: (f, 0.0),
        };
        assert_eq!(t.latency(&|_| false), 0.10);
        // Resident but only partially hidden: the exposed 0.06 remains.
        assert_eq!(t.latency(&|v| v == w), 0.06);
    }

    /// A real prefetch plan for the fixture (the default plan has no
    /// edges, so streaming modes would never be offered).
    fn real_plan(
        g: &lcmm_graph::Graph,
        design: &lcmm_fpga::AccelDesign,
        p: &lcmm_fpga::GraphProfile,
    ) -> PrefetchPlan {
        use crate::liveness::Schedule;
        use crate::value::ValueTable;
        let ev = Evaluator::new(g, p);
        let values = ValueTable::build_batched(g, p, design.precision, design.batch);
        let schedule = Schedule::new(g);
        PrefetchPlan::build(
            &ev,
            &schedule,
            &crate::eval::Residency::new(),
            values.weight_candidates(),
        )
    }

    #[test]
    fn forced_pinned_matches_off_bit_for_bit() {
        use crate::prefetch::StreamingMode;
        let g = chain_graph();
        let (d, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = real_plan(&g, &d, &p);
        let bufs = singleton_buffers(&g, &ev);
        for budget in [
            0,
            CAPACITY_UNIT_BYTES,
            8 * CAPACITY_UNIT_BYTES,
            16 << 20,
            1 << 40,
        ] {
            let off = allocate(&AllocProblem::new(&ev, &bufs, budget, &plan));
            let pinned = allocate(&AllocProblem::with_streaming(
                &ev,
                &bufs,
                budget,
                &plan,
                StreamingMode::Pinned,
            ));
            assert_eq!(off.chosen, pinned.chosen, "budget {budget}");
            assert_eq!(
                off.latency.to_bits(),
                pinned.latency.to_bits(),
                "budget {budget}: {} vs {}",
                off.latency,
                pinned.latency
            );
            assert_eq!(off.bytes, pinned.bytes);
            assert!(pinned.modes.iter().all(|&m| m == WeightMode::Pinned));
        }
    }

    #[test]
    fn auto_streams_weights_when_pinning_cannot_fit() {
        use crate::prefetch::StreamingMode;
        let g = chain_graph();
        let (d, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = real_plan(&g, &d, &p);
        let bufs = singleton_buffers(&g, &ev);
        // Each fp32 weight is 1 MiB (~30 units); at 8 units nothing can
        // be pinned, but a stream needs only the 2-unit ping-pong.
        let budget = 8 * CAPACITY_UNIT_BYTES;
        let off = allocate(&AllocProblem::new(&ev, &bufs, budget, &plan));
        let auto = allocate(&AllocProblem::with_streaming(
            &ev,
            &bufs,
            budget,
            &plan,
            StreamingMode::Auto,
        ));
        assert!(auto.bytes <= budget, "{} > {budget}", auto.bytes);
        assert!(
            auto.latency <= off.latency + 1e-15,
            "auto {} worse than off {}",
            auto.latency,
            off.latency
        );
        let streamed = auto
            .modes
            .iter()
            .zip(&auto.chosen)
            .filter(|&(&m, &c)| c && m != WeightMode::Pinned)
            .count();
        assert!(streamed > 0, "auto never chose a non-pinned mode");
    }

    #[test]
    fn auto_respects_budget_across_scales() {
        use crate::prefetch::StreamingMode;
        let g = chain_graph();
        let (d, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = real_plan(&g, &d, &p);
        let bufs = singleton_buffers(&g, &ev);
        for budget in [
            0,
            CAPACITY_UNIT_BYTES - 1,
            CAPACITY_UNIT_BYTES,
            3 * CAPACITY_UNIT_BYTES,
            2 << 20,
            16 << 20,
            1 << 40,
        ] {
            let problem =
                AllocProblem::with_streaming(&ev, &bufs, budget, &plan, StreamingMode::Auto);
            let out = allocate(&problem);
            assert!(out.bytes <= budget, "budget {budget}: used {}", out.bytes);
            let empty = problem.latency_of(&vec![false; bufs.len()]);
            assert!(
                out.latency <= empty + 1e-15,
                "budget {budget}: {} vs empty {empty}",
                out.latency
            );
        }
    }
}
