//! DNNK: the DNN-Knapsack allocator (paper Alg. 1).
//!
//! A 0/1-knapsack dynamic program over virtual buffers with the capacity
//! axis quantised to URAM blocks. The twist over the classic knapsack is
//! *pivot compensation* (paper Eq. 4): a layer's latency is the max of
//! its compute and per-tensor transfer terms, so the gain of putting one
//! tensor on chip depends on which of the layer's other tensors are
//! already on chip — the largest remaining off-chip term is the *pivot*,
//! and gains below it are worthless.
//!
//! Where the paper subtracts pivot terms symbolically (Eq. 2/4), this
//! implementation evaluates each affected layer's Eq.-1 latency exactly
//! under the "already chosen at this capacity" approximation that Alg. 1
//! encodes through its `pbuf_table` lookups. The final allocation is
//! re-scored with the exact evaluator.

use super::{AllocOutcome, AllocProblem, CAPACITY_UNIT_BYTES};
use crate::profiling;
use crate::value::ValueId;
use lcmm_graph::NodeId;
use std::collections::HashMap;

/// Widest relevant-buffer set whose choice bits fit the `u64` gain-cache
/// key without colliding (bit 63 is left unused as a sanity margin).
const GAIN_CACHE_KEY_BITS: usize = 62;

/// Per-node latency terms, with each term tagged by the value whose
/// residency controls it (the paper's operation latency table rows).
#[derive(Debug, Clone)]
struct OpTerms {
    compute: f64,
    /// `(controlling value, seconds)` for each input source.
    inputs: Vec<(ValueId, f64)>,
    /// `(controlling value, seconds, exposed-when-resident seconds)`.
    weight: Option<(ValueId, f64, f64)>,
    /// `(controlling value, seconds)` for the produced tensor.
    output: (ValueId, f64),
}

impl OpTerms {
    /// Eq. 1 with residency decided by `on_chip`.
    fn latency(&self, on_chip: &dyn Fn(ValueId) -> bool) -> f64 {
        let if_term: f64 = self
            .inputs
            .iter()
            .filter(|(v, _)| !on_chip(*v))
            .map(|(_, t)| *t)
            .sum();
        let wt_term = match self.weight {
            Some((v, t, exposed)) => {
                if on_chip(v) {
                    exposed
                } else {
                    t
                }
            }
            None => 0.0,
        };
        let of_term = if on_chip(self.output.0) {
            0.0
        } else {
            self.output.1
        };
        self.compute.max(if_term).max(wt_term).max(of_term)
    }
}

/// Runs DNNK and returns the allocation.
#[must_use]
pub fn allocate(problem: &AllocProblem<'_>) -> AllocOutcome {
    let n = problem.buffers.len();
    let units = (problem.budget_bytes / CAPACITY_UNIT_BYTES) as usize;
    if n == 0 || units == 0 {
        return AllocOutcome::from_chosen(problem, vec![false; n]);
    }

    // --- Static tables -------------------------------------------------
    let owner: HashMap<ValueId, usize> = problem
        .buffers
        .iter()
        .enumerate()
        .flat_map(|(i, b)| b.members.iter().map(move |&m| (m, i)))
        .collect();

    let graph = problem.evaluator.graph();
    let profile = problem.evaluator.profile();
    let op_terms: Vec<OpTerms> = graph
        .iter()
        .map(|node| {
            let row = profile.node(node.id());
            OpTerms {
                compute: row.compute,
                inputs: row
                    .inputs
                    .iter()
                    .map(|&(src, t)| (ValueId::Feature(src), t))
                    .collect(),
                weight: (row.weight > 0.0).then(|| {
                    let v = ValueId::Weight(node.id());
                    (v, row.weight, problem.exposure_of(v))
                }),
                output: (ValueId::Feature(node.id()), row.output),
            }
        })
        .collect();

    // Ops touched by each buffer.
    let touched: Vec<Vec<NodeId>> = problem
        .buffers
        .iter()
        .map(|b| problem.evaluator.touched_nodes(&b.members))
        .collect();

    let sizes: Vec<usize> = problem
        .buffers
        .iter()
        .map(|b| (b.bytes.div_ceil(CAPACITY_UNIT_BYTES)) as usize)
        .collect();

    // --- DP ------------------------------------------------------------
    // choice[i][j]: buffer i taken in cell (i, j). This doubles as the
    // paper's pbuf_table for pivot lookups.
    let mut choice = vec![false; n * (units + 1)];
    let mut prev_l = vec![0.0f64; units + 1];
    let mut cur_l = vec![0.0f64; units + 1];

    for i in 0..n {
        let s = sizes[i];
        // Which buffers interact with buffer i (own tensors at the same
        // ops)? Their choice bits at column j form the cache key.
        let mut relevant: Vec<usize> = Vec::new();
        for &op in &touched[i] {
            let t = &op_terms[op.index()];
            let mut note = |v: ValueId| {
                if let Some(&o) = owner.get(&v) {
                    if o < i && !relevant.contains(&o) {
                        relevant.push(o);
                    }
                }
            };
            for &(v, _) in &t.inputs {
                note(v);
            }
            if let Some((v, _, _)) = t.weight {
                note(v);
            }
            note(t.output.0);
        }
        // The cache key has one bit per relevant buffer. When the
        // relevant set does not fit, the cache is skipped and the gain
        // recomputed exactly per column — truncating the set would make
        // distinct residency contexts silently share one key (a wrong
        // gain, not just a slow one).
        let use_cache = relevant.len() <= GAIN_CACHE_KEY_BITS;

        let mut gain_cache: HashMap<u64, f64> = HashMap::new();
        profiling::add_dnnk_dp_cells((units + 1) as u64);
        for j in 0..=units {
            let l0 = prev_l[j];
            if s > j || s == 0 {
                cur_l[j] = l0;
                continue;
            }
            // Residency context at this capacity (the pbuf_table
            // approximation of Alg. 1).
            let compute_gain = || -> f64 {
                let ctx_on = |v: ValueId| -> bool {
                    owner
                        .get(&v)
                        .is_some_and(|&o| o < i && choice[o * (units + 1) + j])
                };
                let with_i =
                    |v: ValueId| -> bool { ctx_on(v) || problem.buffers[i].members.contains(&v) };
                touched[i]
                    .iter()
                    .map(|&op| {
                        let t = &op_terms[op.index()];
                        t.latency(&ctx_on) - t.latency(&with_i)
                    })
                    .sum()
            };
            let gain = if use_cache {
                let mut key = 0u64;
                for (bit, &r) in relevant.iter().enumerate() {
                    if choice[r * (units + 1) + j] {
                        key |= 1 << bit;
                    }
                }
                if let Some(&g) = gain_cache.get(&key) {
                    profiling::count_gain_cache_hit();
                    g
                } else {
                    profiling::count_gain_cache_miss();
                    let g = compute_gain();
                    gain_cache.insert(key, g);
                    g
                }
            } else {
                profiling::count_gain_exact_recompute();
                compute_gain()
            };
            let l1 = prev_l[j - s] + gain;
            if l1 > l0 {
                cur_l[j] = l1;
                choice[i * (units + 1) + j] = true;
            } else {
                cur_l[j] = l0;
            }
        }
        std::mem::swap(&mut prev_l, &mut cur_l);
    }

    // --- Backtrace -------------------------------------------------------
    let mut chosen = vec![false; n];
    let mut j = units;
    for i in (0..n).rev() {
        if choice[i * (units + 1) + j] {
            chosen[i] = true;
            j -= sizes[i];
        }
    }
    AllocOutcome::from_chosen(problem, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::test_support::*;
    use crate::eval::Evaluator;
    use crate::prefetch::PrefetchPlan;

    #[test]
    fn respects_budget() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let budget = 4 * CAPACITY_UNIT_BYTES * 10;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.bytes <= budget, "{} > {}", out.bytes, budget);
    }

    #[test]
    fn improves_over_empty_when_budget_allows() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 16 << 20, &PrefetchPlan::default());
        let out = allocate(&problem);
        let empty = problem.latency_of(&vec![false; bufs.len()]);
        assert!(out.latency < empty, "DNNK found no improvement");
        assert!(!out.residency.is_empty());
    }

    #[test]
    fn zero_budget_allocates_nothing() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 0, &PrefetchPlan::default());
        let out = allocate(&problem);
        assert!(out.residency.is_empty());
        assert_eq!(out.bytes, 0);
    }

    #[test]
    fn huge_budget_takes_everything_useful() {
        let g = chain_graph();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        let problem = AllocProblem::new(&ev, &bufs, 1 << 40, &PrefetchPlan::default());
        let out = allocate(&problem);
        // With unbounded room the latency must reach the best possible
        // full-residency value.
        let all = problem.latency_of(&vec![true; bufs.len()]);
        assert!(
            (out.latency - all).abs() / all < 0.05,
            "{} vs {}",
            out.latency,
            all
        );
    }

    /// Regression test for the silent cache-key collision: with more
    /// than 62 relevant buffers the key used to be truncated, letting
    /// distinct residency contexts share one cached gain. The allocator
    /// must now bypass the cache (exact per-column recomputation) and
    /// stay sound.
    #[test]
    fn wide_fanout_skips_gain_cache_instead_of_colliding() {
        use lcmm_graph::{ConvParams, FeatureShape, GraphBuilder};
        let mut b = GraphBuilder::new("fanout");
        let x = b.input(FeatureShape::new(8, 4, 4));
        let branches: Vec<_> = (0..64)
            .map(|i| {
                b.conv(format!("b{i}"), x, ConvParams::pointwise(4))
                    .expect("valid conv")
            })
            .collect();
        let cat = b.concat("cat", &branches).expect("same spatial");
        let out = b
            .conv("out", cat, ConvParams::pointwise(8))
            .expect("valid conv");
        let g = b.finish(out).expect("valid graph");

        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let bufs = singleton_buffers(&g, &ev);
        // 65 convs × (weight + feature): the concat's last input sees 63
        // earlier feature owners plus its own weight — past the 62-bit
        // key capacity.
        assert!(bufs.len() > 2 * GAIN_CACHE_KEY_BITS);
        let budget = 64 * CAPACITY_UNIT_BYTES;
        let problem = AllocProblem::new(&ev, &bufs, budget, &PrefetchPlan::default());

        crate::profiling::reset_counters();
        let out = allocate(&problem);
        let counters = crate::profiling::snapshot_counters();
        assert!(
            counters.gain_exact_recomputes > 0,
            "wide relevant sets must bypass the gain cache"
        );
        assert!(out.bytes <= budget, "{} > {}", out.bytes, budget);
        let empty = problem.latency_of(&vec![false; bufs.len()]);
        assert!(out.latency <= empty + 1e-12);
    }

    #[test]
    fn op_terms_latency_matches_pivot_example() {
        // The paper's worked example (§3.3): three tensors with
        // reductions 0.01, 0.01, 0.05 — putting f7 on chip while w4
        // stays off leaves the pivot at w4.
        use lcmm_graph::NodeId;
        let f7 = ValueId::Feature(NodeId::new(1));
        let w4 = ValueId::Weight(NodeId::new(2));
        let f4 = ValueId::Feature(NodeId::new(2));
        let t = OpTerms {
            compute: 0.0,
            inputs: vec![(f7, 0.01)],
            weight: Some((w4, 0.01, 0.0)),
            output: (f4, 0.05),
        };
        let none = t.latency(&|_| false);
        assert_eq!(none, 0.05);
        // f7 on chip: latency still 0.05 (pivot unaffected).
        let f7_on = t.latency(&|v| v == f7);
        assert_eq!(f7_on, 0.05);
        // f4 additionally on chip: pivot drops to w4's 0.01 — the gain
        // relative to f7_on is 0.04, matching the paper's compensation.
        let f4_on = t.latency(&|v| v == f7 || v == f4);
        assert_eq!(f4_on, 0.01);
        assert!((f7_on - f4_on - 0.04).abs() < 1e-12);
    }

    #[test]
    fn exposed_weight_limits_gain() {
        use lcmm_graph::NodeId;
        let w = ValueId::Weight(NodeId::new(0));
        let f = ValueId::Feature(NodeId::new(0));
        let t = OpTerms {
            compute: 0.02,
            inputs: vec![],
            weight: Some((w, 0.10, 0.06)),
            output: (f, 0.0),
        };
        assert_eq!(t.latency(&|_| false), 0.10);
        // Resident but only partially hidden: the exposed 0.06 remains.
        assert_eq!(t.latency(&|v| v == w), 0.06);
    }
}
