//! The allocation manifest: LCMM's deployable output artifact.
//!
//! A hardware integration does not consume `LcmmResult` structs — it
//! needs concrete SRAM base addresses for every physical buffer, the
//! tensor→buffer binding table, and the prefetch schedule for the DMA
//! engine. This module lowers an [`LcmmResult`] into exactly that,
//! serialisable for consumption by an HLS code generator or runtime.

use crate::pipeline::LcmmResult;
use crate::value::ValueId;
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};

/// One physical on-chip buffer with its assigned address range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferEntry {
    /// Stable buffer name (`pbuf0`, `pbuf1`, ...).
    pub name: String,
    /// Base address in the tensor SRAM region, bytes.
    pub base: u64,
    /// Buffer size, bytes.
    pub bytes: u64,
    /// The tensors bound to this buffer (time-multiplexed).
    pub tensors: Vec<TensorBinding>,
}

/// One tensor's binding into a buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorBinding {
    /// The bound value.
    pub value: ValueId,
    /// Owning layer name.
    pub layer: String,
    /// Tensor size, bytes (≤ the buffer size).
    pub bytes: u64,
}

/// One entry of the weight prefetch schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetchEntry {
    /// The weight tensor to load.
    pub value: ValueId,
    /// Layer whose execution start triggers the load.
    pub trigger_layer: String,
    /// Destination buffer name.
    pub buffer: String,
    /// Bytes to move.
    pub bytes: u64,
    /// Load time not hidden by the schedule, seconds (0 = fully
    /// hidden).
    pub exposed_seconds: f64,
}

/// The deployable allocation manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationManifest {
    /// Network name.
    pub model: String,
    /// Precision label.
    pub precision: String,
    /// Physical buffers with sequential, non-overlapping addresses.
    pub buffers: Vec<BufferEntry>,
    /// DMA prefetch schedule, in trigger order.
    pub prefetches: Vec<PrefetchEntry>,
    /// Total SRAM bytes consumed by the tensor buffers.
    pub total_bytes: u64,
    /// The budget the allocation was solved under.
    pub budget_bytes: u64,
}

impl AllocationManifest {
    /// Lowers an LCMM result into the manifest.
    #[must_use]
    pub fn build(graph: &Graph, result: &LcmmResult) -> Self {
        let mut buffers = Vec::new();
        let mut prefetches = Vec::new();
        let mut base = 0u64;
        let schedule = crate::liveness::Schedule::new(graph);
        for (buf, &chosen) in result.buffers.iter().zip(&result.chosen) {
            if !chosen {
                continue;
            }
            let name = format!("pbuf{}", buffers.len());
            let tensors = buf
                .members
                .iter()
                .map(|&m| TensorBinding {
                    value: m,
                    layer: graph.node(m.node()).name().to_string(),
                    bytes: member_bytes(graph, result, m),
                })
                .collect();
            for &m in &buf.members {
                if let ValueId::Weight(node) = m {
                    if let Some(edge) = result.prefetch.edge(m) {
                        prefetches.push(PrefetchEntry {
                            value: m,
                            trigger_layer: graph.node(schedule.at(edge.start)).name().to_string(),
                            buffer: name.clone(),
                            bytes: member_bytes(graph, result, m),
                            exposed_seconds: edge.exposed_seconds,
                        });
                    }
                    let _ = node;
                }
            }
            buffers.push(BufferEntry {
                name,
                base,
                bytes: buf.bytes,
                tensors,
            });
            base += buf.bytes;
        }
        prefetches.sort_by(|a, b| {
            a.trigger_layer
                .cmp(&b.trigger_layer)
                .then(a.value.cmp(&b.value))
        });
        Self {
            model: graph.name().to_string(),
            precision: result.design.precision.label().to_string(),
            buffers,
            prefetches,
            total_bytes: base,
            budget_bytes: result.design.tensor_sram_budget(),
        }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the manifest contains only serialisable data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest always serialises")
    }
}

fn member_bytes(graph: &Graph, result: &LcmmResult, id: ValueId) -> u64 {
    let b = result.design.precision.bytes();
    match id {
        ValueId::Feature(n) => {
            result.design.batch as u64 * graph.node(n).output_shape().elems() * b
        }
        ValueId::Weight(n) => graph.node_weight_elems(n) * b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compare;
    use lcmm_fpga::{Device, Precision};
    use lcmm_graph::zoo;

    fn manifest_for(name: &str) -> (Graph, AllocationManifest) {
        let g = zoo::by_name(name).expect("model exists");
        let (_, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let m = AllocationManifest::build(&g, &lcmm);
        (g, m)
    }

    #[test]
    fn addresses_are_sequential_and_disjoint() {
        let (_, m) = manifest_for("googlenet");
        assert!(!m.buffers.is_empty());
        let mut cursor = 0;
        for buf in &m.buffers {
            assert_eq!(buf.base, cursor, "{} misplaced", buf.name);
            cursor += buf.bytes;
        }
        assert_eq!(m.total_bytes, cursor);
        assert!(m.total_bytes <= m.budget_bytes);
    }

    #[test]
    fn bindings_fit_their_buffers() {
        let (_, m) = manifest_for("inception_v4");
        for buf in &m.buffers {
            assert!(!buf.tensors.is_empty());
            for t in &buf.tensors {
                assert!(t.bytes <= buf.bytes, "{} overflows {}", t.layer, buf.name);
            }
            // The buffer is sized by its largest tensor exactly.
            let max = buf.tensors.iter().map(|t| t.bytes).max().expect("nonempty");
            assert_eq!(max, buf.bytes);
        }
    }

    #[test]
    fn prefetches_reference_real_buffers() {
        let (_, m) = manifest_for("resnet152");
        assert!(!m.prefetches.is_empty(), "deep nets must prefetch weights");
        for p in &m.prefetches {
            assert!(m.buffers.iter().any(|b| b.name == p.buffer));
            assert!(p.bytes > 0);
            assert!(p.exposed_seconds >= 0.0);
        }
    }

    #[test]
    fn manifest_round_trips_json() {
        let (_, m) = manifest_for("alexnet");
        let back: AllocationManifest = serde_json::from_str(&m.to_json()).expect("valid json");
        assert_eq!(back, m);
    }
}
