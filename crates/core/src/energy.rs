//! Energy estimation (extension): what the recovered DRAM traffic is
//! worth in joules.
//!
//! The paper motivates FPGAs by energy efficiency but reports only
//! performance. Since LCMM's entire effect is moving traffic from DRAM
//! (tens of pJ/byte) to on-chip SRAM (~1 pJ/byte), the energy win is
//! directly computable from the same residency assignment.

use crate::eval::{Evaluator, Residency};
use crate::value::ValueId;
use lcmm_fpga::{AccelDesign, Precision};
use serde::{Deserialize, Serialize};

/// Energy cost constants, picojoules.
///
/// Defaults follow the common architecture-literature numbers
/// (Horowitz, ISSCC'14 scaled to a 20 nm FPGA): DRAM access ≈ 60 pJ per
/// byte end to end, large on-chip SRAM ≈ 1.2 pJ per byte, a fixed-point
/// MAC ≈ 2–8 pJ depending on width, fp32 ≈ 15 pJ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// DRAM transfer cost per byte (I/O + controller + device).
    pub pj_per_dram_byte: f64,
    /// On-chip SRAM access cost per byte.
    pub pj_per_sram_byte: f64,
    /// Energy per 8-bit MAC.
    pub pj_per_mac_fix8: f64,
    /// Energy per 16-bit MAC.
    pub pj_per_mac_fix16: f64,
    /// Energy per fp32 MAC.
    pub pj_per_mac_fp32: f64,
    /// Static power of the configured fabric, watts (leakage + clock
    /// tree; charged for the whole latency).
    pub static_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            pj_per_dram_byte: 60.0,
            pj_per_sram_byte: 1.2,
            pj_per_mac_fix8: 2.0,
            pj_per_mac_fix16: 4.5,
            pj_per_mac_fp32: 15.0,
            static_watts: 8.0,
        }
    }
}

impl EnergyModel {
    fn pj_per_mac(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fix8 => self.pj_per_mac_fix8,
            Precision::Fix16 => self.pj_per_mac_fix16,
            Precision::Float32 => self.pj_per_mac_fp32,
        }
    }
}

/// Energy breakdown of one inference, joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// MAC array energy.
    pub compute_j: f64,
    /// Off-chip transfer energy.
    pub dram_j: f64,
    /// On-chip buffer traffic energy (tile buffers + tensor buffers).
    pub sram_j: f64,
    /// Static energy over the inference latency.
    pub static_j: f64,
    /// End-to-end latency used for the static term, seconds.
    pub latency: f64,
}

impl EnergyReport {
    /// Total energy, joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.dram_j + self.sram_j + self.static_j
    }

    /// Energy-delay product, joule-seconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.total_j() * self.latency
    }
}

/// Estimates the energy of one inference under `residency`.
///
/// DRAM bytes are recovered from the latency rows (terms were computed
/// as `bytes / bandwidth`); every byte that no longer goes to DRAM goes
/// to SRAM instead, and all array operands move through SRAM once per
/// MAC-operand regardless of residency.
#[must_use]
pub fn estimate(
    evaluator: &Evaluator<'_>,
    design: &AccelDesign,
    residency: &Residency,
    model: &EnergyModel,
) -> EnergyReport {
    let graph = evaluator.graph();
    let profile = evaluator.profile();
    let bw = design.interface_bandwidth();
    let elem = design.precision.bytes() as f64;

    let mut dram_bytes = 0.0;
    let mut spared_bytes = 0.0;
    for node in graph.iter() {
        let row = profile.node(node.id());
        for &(src, t) in &row.inputs {
            if residency.contains(ValueId::Feature(src)) {
                spared_bytes += t * bw;
            } else {
                dram_bytes += t * bw;
            }
        }
        if residency.contains(ValueId::Weight(node.id())) {
            spared_bytes += row.weight * bw;
        } else {
            dram_bytes += row.weight * bw;
        }
        if residency.contains(ValueId::Feature(node.id())) {
            spared_bytes += row.output * bw;
        } else {
            dram_bytes += row.output * bw;
        }
    }
    let macs = design.batch as f64 * graph.total_macs() as f64;
    // Array operand traffic: input + weight read, output accumulate.
    let operand_sram_bytes = 3.0 * macs * elem;
    let latency = evaluator.total_latency(residency);
    EnergyReport {
        compute_j: macs * model.pj_per_mac(design.precision) * 1e-12,
        dram_j: dram_bytes * model.pj_per_dram_byte * 1e-12,
        sram_j: (operand_sram_bytes + spared_bytes) * model.pj_per_sram_byte * 1e-12,
        static_j: model.static_watts * latency,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compare;
    use lcmm_fpga::Device;
    use lcmm_graph::zoo;

    #[test]
    fn lcmm_spends_less_energy_than_umm() {
        let g = zoo::resnet152();
        let device = Device::vu9p();
        let (umm, lcmm) = compare(&g, &device, Precision::Fix16);
        let model = EnergyModel::default();
        let umm_eval = Evaluator::new(&g, &umm.profile);
        let umm_energy = estimate(&umm_eval, &umm.design, &Residency::new(), &model);
        let lcmm_profile = lcmm.design.profile(&g);
        let lcmm_eval = Evaluator::new(&g, &lcmm_profile);
        let lcmm_energy = estimate(&lcmm_eval, &lcmm.design, &lcmm.residency, &model);
        assert!(
            lcmm_energy.dram_j < umm_energy.dram_j,
            "DRAM energy must drop"
        );
        assert!(
            lcmm_energy.total_j() < umm_energy.total_j(),
            "total energy must drop"
        );
        assert!(lcmm_energy.edp() < umm_energy.edp(), "EDP must drop");
        // Spared DRAM traffic reappears as SRAM traffic.
        assert!(lcmm_energy.sram_j > umm_energy.sram_j);
    }

    #[test]
    fn energy_terms_are_positive_and_sum() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let (umm, _) = compare(&g, &device, Precision::Fix8);
        let ev = Evaluator::new(&g, &umm.profile);
        let e = estimate(&ev, &umm.design, &Residency::new(), &EnergyModel::default());
        for term in [e.compute_j, e.dram_j, e.sram_j, e.static_j] {
            assert!(term > 0.0);
        }
        assert!((e.total_j() - (e.compute_j + e.dram_j + e.sram_j + e.static_j)).abs() < 1e-15);
    }

    #[test]
    fn fp32_macs_cost_more_than_fix8() {
        let m = EnergyModel::default();
        assert!(m.pj_per_mac(Precision::Float32) > m.pj_per_mac(Precision::Fix8));
    }
}
