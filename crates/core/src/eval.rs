//! Exact latency evaluation of a residency assignment.
//!
//! This is the ground truth every allocator in this crate is scored
//! against: given the set of values held on-chip, the latency of node
//! `i` is (paper Eq. 1)
//!
//! ```text
//! lat(i) = max( latc(i),
//!               Σ_{off-chip inputs} lat_if,
//!               lat_wt (0 if the weight value is on-chip and its
//!                        prefetch span hides the load),
//!               lat_of (0 if the produced value is on-chip) )
//! ```
//!
//! summed over all nodes (layers execute sequentially; transfers overlap
//! compute through double buffering, so the max of the terms governs
//! each layer).

use crate::fast_hash::{FxHashMap, FxHashSet};
use crate::value::ValueId;
use lcmm_fpga::GraphProfile;
use lcmm_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// The set of values resident in on-chip SRAM.
///
/// For weight values, an optional *exposed* residual transfer time can
/// be recorded: when a weight's prefetch window is shorter than its load
/// time, the uncovered remainder still stalls the layer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Residency {
    // Fx-hashed: `contains` runs once per latency term per evaluated
    // node, the hottest probe in the evaluator.
    on_chip: FxHashSet<ValueId>,
    exposed_weight_seconds: FxHashMap<NodeId, f64>,
}

impl Residency {
    /// An empty residency: everything streams from DRAM (UMM).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a value resident. Inserting a weight clears any recorded
    /// exposure for it: a freshly resident weight is fully hidden until
    /// [`Residency::set_exposed_weight`] says otherwise. Without this,
    /// an exposure recorded while the weight was *not* resident (where
    /// it is dead weight — the evaluator charges the full load time)
    /// would silently spring back to life on a later insert.
    pub fn insert(&mut self, id: ValueId) {
        self.on_chip.insert(id);
        if let ValueId::Weight(n) = id {
            self.exposed_weight_seconds.remove(&n);
        }
    }

    /// Removes a value.
    pub fn remove(&mut self, id: ValueId) {
        self.on_chip.remove(&id);
        if let ValueId::Weight(n) = id {
            self.exposed_weight_seconds.remove(&n);
        }
    }

    /// Whether a value is resident.
    #[must_use]
    pub fn contains(&self, id: ValueId) -> bool {
        self.on_chip.contains(&id)
    }

    /// Records that the weight of `node`, although resident, has
    /// `seconds` of its load time not hidden by prefetching.
    pub fn set_exposed_weight(&mut self, node: NodeId, seconds: f64) {
        if seconds > 0.0 {
            self.exposed_weight_seconds.insert(node, seconds);
        } else {
            self.exposed_weight_seconds.remove(&node);
        }
    }

    /// The still-exposed weight load time of `node`, if any.
    #[must_use]
    pub fn exposed_weight(&self, node: NodeId) -> f64 {
        self.exposed_weight_seconds
            .get(&node)
            .copied()
            .unwrap_or(0.0)
    }

    /// Iterates over resident values.
    pub fn iter(&self) -> impl Iterator<Item = &ValueId> {
        self.on_chip.iter()
    }

    /// Number of resident values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.on_chip.len()
    }

    /// Whether nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.on_chip.is_empty()
    }
}

impl FromIterator<ValueId> for Residency {
    fn from_iter<I: IntoIterator<Item = ValueId>>(iter: I) -> Self {
        let mut r = Residency::new();
        for v in iter {
            r.insert(v);
        }
        r
    }
}

impl Extend<ValueId> for Residency {
    fn extend<I: IntoIterator<Item = ValueId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Evaluates residency assignments against an operation latency table.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    graph: &'a Graph,
    profile: &'a GraphProfile,
    /// readers[i] = nodes whose latency row reads node i's value.
    readers: Vec<Vec<NodeId>>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over one graph/profile pair.
    #[must_use]
    pub fn new(graph: &'a Graph, profile: &'a GraphProfile) -> Self {
        let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); graph.len()];
        for node in graph.iter() {
            for (src, _) in &profile.node(node.id()).inputs {
                readers[src.index()].push(node.id());
            }
        }
        Self {
            graph,
            profile,
            readers,
        }
    }

    /// The graph under evaluation.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The latency table under evaluation.
    #[must_use]
    pub fn profile(&self) -> &GraphProfile {
        self.profile
    }

    /// Latency of one node under `residency` (paper Eq. 1).
    #[must_use]
    pub fn node_latency(&self, id: NodeId, residency: &Residency) -> f64 {
        let row = self.profile.node(id);
        let if_term: f64 = row
            .inputs
            .iter()
            .filter(|(src, _)| !residency.contains(ValueId::Feature(*src)))
            .map(|(_, t)| *t)
            .sum();
        let wt_term = if residency.contains(ValueId::Weight(id)) {
            residency.exposed_weight(id)
        } else {
            row.weight
        };
        let of_term = if residency.contains(ValueId::Feature(id)) {
            0.0
        } else {
            row.output
        };
        row.compute.max(if_term).max(wt_term).max(of_term)
    }

    /// End-to-end latency under `residency`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcmm_core::{Evaluator, Residency, ValueId};
    /// use lcmm_fpga::{AccelDesign, Device, Precision};
    ///
    /// let graph = lcmm_graph::zoo::alexnet();
    /// let design = AccelDesign::explore(&graph, &Device::vu9p(), Precision::Fix16);
    /// let profile = design.profile(&graph);
    /// let evaluator = Evaluator::new(&graph, &profile);
    ///
    /// let umm = evaluator.total_latency(&Residency::new());
    /// let mut residency = Residency::new();
    /// residency.insert(ValueId::Weight(graph.node_by_name("fc6").unwrap().id()));
    /// assert!(evaluator.total_latency(&residency) < umm);
    /// ```
    #[must_use]
    pub fn total_latency(&self, residency: &Residency) -> f64 {
        crate::profiling::count_evaluator_call();
        self.graph
            .iter()
            .map(|n| self.node_latency(n.id(), residency))
            .sum()
    }

    /// Total off-chip transfer time per inference under `residency`,
    /// in seconds: the sum over all nodes of the non-resident input,
    /// weight and output terms. Unlike Eq. 1 this does not take the
    /// per-layer max — it measures the data actually moved across the
    /// DRAM interface (multiply by the design's interface bandwidth to
    /// get bytes), which is the traffic metric `lcmm sweep-fusion`
    /// compares plans on.
    #[must_use]
    pub fn transfer_seconds(&self, residency: &Residency) -> f64 {
        self.graph
            .iter()
            .map(|n| {
                let row = self.profile.node(n.id());
                let if_term: f64 = row
                    .inputs
                    .iter()
                    .filter(|(src, _)| !residency.contains(ValueId::Feature(*src)))
                    .map(|(_, t)| *t)
                    .sum();
                let wt_term = if residency.contains(ValueId::Weight(n.id())) {
                    0.0
                } else {
                    row.weight
                };
                let of_term = if residency.contains(ValueId::Feature(n.id())) {
                    0.0
                } else {
                    row.output
                };
                if_term + wt_term + of_term
            })
            .sum()
    }

    /// Marginal latency reduction of adding `values` to `residency`
    /// (non-negative; only the nodes touching the values are revisited).
    ///
    /// The residency is used as scratch state — `values` are inserted,
    /// the touched nodes re-scored, and every mutation undone — so the
    /// set is bit-identical to its input state on return. This replaces
    /// a full clone of the residency per call, which dominated the
    /// allocator hot path on thousand-node graphs where the resident
    /// set holds hundreds of values. [`Evaluator::gain_of_reference`]
    /// keeps the clone-based formulation as the executable spec.
    #[must_use]
    pub fn gain_of(&self, residency: &mut Residency, values: &[ValueId]) -> f64 {
        crate::profiling::count_evaluator_call();
        let touched = self.touched_nodes(values);
        let before: f64 = touched
            .iter()
            .map(|&n| self.node_latency(n, residency))
            .sum();
        // Insert-then-undo: record (value, was resident, prior exposure)
        // before each insert. Replayed in reverse, the first record of a
        // duplicated value wins, restoring the original state exactly.
        let mut undo: Vec<(ValueId, bool, f64)> = Vec::with_capacity(values.len());
        for &v in values {
            let was_resident = residency.contains(v);
            let prior_exposure = match v {
                ValueId::Weight(n) => residency.exposed_weight(n),
                ValueId::Feature(_) => 0.0,
            };
            undo.push((v, was_resident, prior_exposure));
            residency.insert(v);
        }
        let after: f64 = touched
            .iter()
            .map(|&n| self.node_latency(n, residency))
            .sum();
        for &(v, was_resident, prior_exposure) in undo.iter().rev() {
            if !was_resident {
                residency.remove(v);
            }
            if let ValueId::Weight(n) = v {
                // `insert`/`remove` both cleared the exposure entry;
                // re-set it (a stale entry recorded while non-resident
                // is restored too — scratch means *exact* restoration).
                if prior_exposure > 0.0 {
                    residency.set_exposed_weight(n, prior_exposure);
                }
            }
        }
        before - after
    }

    /// Clone-based reference implementation of [`Evaluator::gain_of`]:
    /// copies the residency, extends it with `values` and re-scores the
    /// touched nodes. Kept as the executable specification the in-place
    /// fast path is property-tested against (bit-identical results, so
    /// allocator decisions cannot drift).
    #[must_use]
    pub fn gain_of_reference(&self, residency: &Residency, values: &[ValueId]) -> f64 {
        crate::profiling::count_evaluator_call();
        let touched = self.touched_nodes(values);
        let before: f64 = touched
            .iter()
            .map(|&n| self.node_latency(n, residency))
            .sum();
        let mut with = residency.clone();
        with.extend(values.iter().copied());
        let after: f64 = touched.iter().map(|&n| self.node_latency(n, &with)).sum();
        before - after
    }

    /// The nodes whose latency can change when `values` change
    /// residency: producers and readers.
    #[must_use]
    pub fn touched_nodes(&self, values: &[ValueId]) -> Vec<NodeId> {
        // Dedup via a dense seen-array: colored buffers hand in hundreds
        // of members, and a `Vec::contains` per insert is quadratic.
        // Insertion order is preserved.
        let mut seen = vec![false; self.graph.len()];
        let mut out: Vec<NodeId> = Vec::new();
        let mut push = |out: &mut Vec<NodeId>, n: NodeId| {
            if !seen[n.index()] {
                seen[n.index()] = true;
                out.push(n);
            }
        };
        for v in values {
            match v {
                ValueId::Weight(n) => push(&mut out, *n),
                ValueId::Feature(n) => {
                    push(&mut out, *n);
                    for &reader in &self.readers[n.index()] {
                        push(&mut out, reader);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::zoo;

    fn setup(graph: &Graph) -> (AccelDesign, GraphProfile) {
        let d = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let p = d.profile(graph);
        (d, p)
    }

    #[test]
    fn empty_residency_matches_umm_total() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let umm = ev.total_latency(&Residency::new());
        assert!((umm - p.total_latency()).abs() < 1e-12);
    }

    #[test]
    fn residency_monotonically_helps() {
        let g = zoo::resnet50();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let mut r = Residency::new();
        let mut last = ev.total_latency(&r);
        for node in g.compute_layers().take(20) {
            r.insert(ValueId::Weight(node.id()));
            let now = ev.total_latency(&r);
            assert!(now <= last + 1e-15, "adding residency must not hurt");
            last = now;
        }
    }

    #[test]
    fn full_residency_reaches_compute_floor_for_linear_net() {
        let g = zoo::vgg16();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let mut r = Residency::new();
        for n in g.iter() {
            r.insert(ValueId::Feature(n.id()));
            r.insert(ValueId::Weight(n.id()));
        }
        // Input and output values are still off-chip in reality, but for
        // this bound we include them: the total must hit the floor.
        let total = ev.total_latency(&r);
        assert!((total - p.compute_floor()).abs() / p.compute_floor() < 1e-9);
    }

    #[test]
    fn exposed_weight_partially_stalls() {
        let g = zoo::vgg16();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let fc6 = g.node_by_name("fc6").unwrap().id();
        let mut r = Residency::new();
        r.insert(ValueId::Weight(fc6));
        let hidden = ev.node_latency(fc6, &r);
        r.set_exposed_weight(fc6, 1.0); // a full second exposed
        let stalled = ev.node_latency(fc6, &r);
        assert!(stalled >= 1.0);
        assert!(hidden < stalled);
        r.set_exposed_weight(fc6, 0.0);
        assert_eq!(ev.node_latency(fc6, &r), hidden);
    }

    #[test]
    fn gain_matches_full_reevaluation() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let mut r = Residency::new();
        let conv = g.node_by_name("inception_4a/3x3").unwrap().id();
        let vals = vec![ValueId::Weight(conv), ValueId::Feature(conv)];
        let gain = ev.gain_of(&mut r, &vals);
        let mut with = r.clone();
        with.extend(vals.iter().copied());
        let full_gain = ev.total_latency(&r) - ev.total_latency(&with);
        assert!((gain - full_gain).abs() < 1e-12);
        assert!(gain >= 0.0);
    }

    #[test]
    fn gain_restores_scratch_residency_exactly() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let a = g.node_by_name("inception_3a/3x3").unwrap().id();
        let b = g.node_by_name("inception_4a/3x3").unwrap().id();
        let mut r = Residency::new();
        r.insert(ValueId::Weight(a));
        r.set_exposed_weight(a, 2e-4);
        r.insert(ValueId::Feature(a));
        let snapshot = r.clone();
        // Values overlapping the resident set, duplicated, with a weight
        // whose exposure must survive the round trip.
        let vals = vec![
            ValueId::Weight(a),
            ValueId::Weight(b),
            ValueId::Feature(b),
            ValueId::Weight(b),
        ];
        let fast = ev.gain_of(&mut r, &vals);
        assert_eq!(r, snapshot, "scratch residency must be restored");
        let reference = ev.gain_of_reference(&snapshot, &vals);
        assert_eq!(fast.to_bits(), reference.to_bits(), "{fast} vs {reference}");
    }

    #[test]
    fn gain_fast_path_is_bit_identical_to_reference() {
        // Residency states drawn from a real pipeline-like sweep: every
        // prefix of the weight set, probed with each next buffer. The
        // fast path must agree with the clone-based spec to the last
        // bit, or allocator decisions could drift.
        let g = zoo::resnet50();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let mut r = Residency::new();
        for node in g.compute_layers().take(30) {
            let vals = [ValueId::Weight(node.id()), ValueId::Feature(node.id())];
            let reference = ev.gain_of_reference(&r, &vals);
            let fast = ev.gain_of(&mut r, &vals);
            assert_eq!(fast.to_bits(), reference.to_bits());
            r.insert(ValueId::Weight(node.id()));
        }
    }

    #[test]
    fn stale_exposure_cleared_on_insert() {
        // Regression: set_exposed_weight on a non-resident weight left a
        // stale entry that sprang back to life on a later insert.
        let g = zoo::vgg16();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let fc6 = g.node_by_name("fc6").unwrap().id();
        let mut r = Residency::new();
        r.set_exposed_weight(fc6, 1.0); // not resident: dead entry
        r.insert(ValueId::Weight(fc6));
        assert_eq!(r.exposed_weight(fc6), 0.0, "stale exposure survived");
        let mut fresh = Residency::new();
        fresh.insert(ValueId::Weight(fc6));
        assert_eq!(ev.node_latency(fc6, &r), ev.node_latency(fc6, &fresh));
    }

    #[test]
    fn insert_set_remove_insert_returns_to_hidden_latency() {
        let g = zoo::vgg16();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let fc6 = g.node_by_name("fc6").unwrap().id();
        let mut r = Residency::new();
        r.insert(ValueId::Weight(fc6));
        let hidden = ev.node_latency(fc6, &r);
        r.set_exposed_weight(fc6, 1.0);
        assert!(ev.node_latency(fc6, &r) > hidden);
        r.remove(ValueId::Weight(fc6));
        r.insert(ValueId::Weight(fc6));
        assert_eq!(
            ev.node_latency(fc6, &r),
            hidden,
            "re-inserted weight must start fully hidden"
        );
    }

    #[test]
    fn touched_nodes_cover_readers() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let b1 = g.node_by_name("inception_3a/1x1").unwrap().id();
        let touched = ev.touched_nodes(&[ValueId::Feature(b1)]);
        // Producer plus the 3b heads and pool that read the concat.
        assert!(touched.len() >= 5, "got {touched:?}");
        assert!(touched.contains(&b1));
    }

    #[test]
    fn remove_clears_exposure() {
        let mut r = Residency::new();
        let n = NodeId::new(1);
        r.insert(ValueId::Weight(n));
        r.set_exposed_weight(n, 0.5);
        r.remove(ValueId::Weight(n));
        assert_eq!(r.exposed_weight(n), 0.0);
        assert!(r.is_empty());
    }
}
