//! The LCMM pipeline (paper Fig. 4): feature buffer reuse → weight
//! buffer prefetching → DNNK allocation → buffer splitting.

use crate::alloc::{dnnk, dnnk_iterative, exhaustive, greedy, AllocProblem};
use crate::cancel::{check_opt, CancelToken};
use crate::error::LcmmError;
use crate::eval::{Evaluator, Residency};
use crate::fusion::{FusionMode, FusionPlan};
use crate::interference::{InterferenceGraph, VirtualBuffer};
use crate::liveness::{feature_lifespans, Schedule};
use crate::prefetch::{PrefetchPlan, StreamingMode, WeightMode};
use crate::profiling::{self, PassStats};
use crate::splitting::{refine, SplitConfig};
use crate::umm::UmmBaseline;
use crate::value::ValueTable;
use lcmm_fpga::{
    resources, AccelDesign, Device, GraphProfile, Precision, ResourceReport, TileBudget,
};
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which allocator the pipeline uses for the knapsack stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// The paper's DNNK dynamic program (default).
    Dnnk,
    /// DNNK with fixed-point marginal refinement (extension).
    DnnkIterative,
    /// Marginal-gain-density greedy (ablation).
    Greedy,
    /// Exact enumeration (small instances only).
    Exhaustive,
}

/// Pipeline configuration. The defaults reproduce the full LCMM flow;
/// the toggles drive the Fig. 8 ablations.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`LcmmOptions::default`] (or one of the ablation presets) and adapt
/// it through the `with_*` builder methods, so new knobs can be added
/// without breaking downstream callers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct LcmmOptions {
    /// Enable feature buffer reuse (§3.1).
    pub feature_reuse: bool,
    /// Enable weight buffer prefetching and sharing (§3.2).
    pub weight_prefetch: bool,
    /// Enable buffer splitting (§3.4).
    pub splitting: bool,
    /// Allocator for the knapsack stage (§3.3).
    pub allocator: AllocatorKind,
    /// Clock derate relative to the UMM baseline: the extra buffers and
    /// muxing cost timing slack (Table 1: 190 → 180 MHz).
    pub frequency_hz: Option<f64>,
    /// Explicit tensor SRAM budget in bytes for the knapsack stage,
    /// clamped to the design's own [`AccelDesign::tensor_sram_budget`].
    /// `None` (the default) uses the full design budget; multi-tenant
    /// co-planning sets this to the tenant's share of the shared pool.
    pub tensor_budget: Option<u64>,
    /// Per-layer weight streaming (AutoWS): [`StreamingMode::Off`]
    /// (default) is the legacy binary residency, [`StreamingMode::Auto`]
    /// lets DNNK choose pinning / partial residency / double-buffered
    /// streaming per weight, [`StreamingMode::Pinned`] forces the
    /// mode-aware path to pin everything (bit-identical to `Off`).
    pub weight_streaming: StreamingMode,
    /// Fused-layer planning: [`FusionMode::Off`] (default) is the
    /// legacy per-layer pipeline, [`FusionMode::Auto`] runs the fusion
    /// grouping pass ahead of liveness, eliminating intermediate
    /// tensors inside fused groups at the cost of bounded halo
    /// recomputation.
    pub fusion: FusionMode,
}

impl Default for LcmmOptions {
    fn default() -> Self {
        Self {
            feature_reuse: true,
            weight_prefetch: true,
            splitting: true,
            allocator: AllocatorKind::Dnnk,
            frequency_hz: None,
            tensor_budget: None,
            weight_streaming: StreamingMode::Off,
            fusion: FusionMode::Off,
        }
    }
}

impl LcmmOptions {
    /// Feature buffer reuse only (Fig. 8(a)).
    #[must_use]
    pub fn feature_reuse_only() -> Self {
        Self {
            weight_prefetch: false,
            ..Self::default()
        }
    }

    /// Weight prefetching only (Fig. 8(b)).
    #[must_use]
    pub fn weight_prefetch_only() -> Self {
        Self {
            feature_reuse: false,
            ..Self::default()
        }
    }

    /// Returns a copy with feature buffer reuse toggled.
    #[must_use]
    pub fn with_feature_reuse(mut self, on: bool) -> Self {
        self.feature_reuse = on;
        self
    }

    /// Returns a copy with weight prefetching toggled.
    #[must_use]
    pub fn with_weight_prefetch(mut self, on: bool) -> Self {
        self.weight_prefetch = on;
        self
    }

    /// Returns a copy with buffer splitting toggled.
    #[must_use]
    pub fn with_splitting(mut self, on: bool) -> Self {
        self.splitting = on;
        self
    }

    /// Returns a copy using `allocator` for the knapsack stage.
    #[must_use]
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Returns a copy with an explicit LCMM clock (`None` restores the
    /// per-precision default derate).
    #[must_use]
    pub fn with_frequency_hz(mut self, frequency_hz: Option<f64>) -> Self {
        self.frequency_hz = frequency_hz;
        self
    }

    /// Returns a copy with an explicit tensor SRAM budget for the
    /// knapsack stage (`None` restores the full design budget).
    #[must_use]
    pub fn with_tensor_budget(mut self, tensor_budget: Option<u64>) -> Self {
        self.tensor_budget = tensor_budget;
        self
    }

    /// Returns a copy with the given weight-streaming mode.
    #[must_use]
    pub fn with_weight_streaming(mut self, weight_streaming: StreamingMode) -> Self {
        self.weight_streaming = weight_streaming;
        self
    }

    /// Returns a copy with the given fused-layer planning mode.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionMode) -> Self {
        self.fusion = fusion;
        self
    }
}

/// Default LCMM clocks (Table 1): fixed-point 180 MHz, float 160 MHz.
fn default_lcmm_frequency(precision: Precision) -> f64 {
    match precision {
        Precision::Fix8 | Precision::Fix16 => 180e6,
        Precision::Float32 => 160e6,
    }
}

/// The fully evaluated result of running LCMM on one network.
#[derive(Debug, Clone)]
pub struct LcmmResult {
    /// The accelerator design (LCMM clock and tile budget).
    pub design: AccelDesign,
    /// End-to-end latency, seconds.
    pub latency: f64,
    /// Total operations of one inference (2 × MACs).
    pub ops: u64,
    /// The residency assignment LCMM chose.
    pub residency: Residency,
    /// All virtual buffers after coloring/splitting.
    pub buffers: Vec<VirtualBuffer>,
    /// Which buffers received physical storage.
    pub chosen: Vec<bool>,
    /// Per-buffer weight mode, aligned with `buffers`/`chosen`.  Buffers
    /// that are not single-member weight buffers (and every buffer when
    /// streaming is [`StreamingMode::Off`]) report [`WeightMode::Pinned`].
    pub weight_modes: Vec<WeightMode>,
    /// The weight prefetch plan.
    pub prefetch: PrefetchPlan,
    /// Accepted split iterations.
    pub split_iterations: usize,
    /// Resource utilisation including allocated tensor buffers.
    pub resources: ResourceReport,
    /// Number of memory-bound compute layers in the UMM profile.
    pub memory_bound_layers: usize,
    /// Memory-bound layers whose latency improved — the numerator of
    /// the paper's POL metric (Table 2).
    pub layers_benefiting: usize,
    /// The fused groups this plan executes under (empty unless
    /// [`LcmmOptions::fusion`] selected any). The result's latency,
    /// residency and buffers are all expressed against the fused
    /// latency table.
    pub fusion: FusionPlan,
    /// Per-pass timings and counters of this run.
    pub stats: PassStats,
}

impl LcmmResult {
    /// Achieved throughput in ops/s.
    #[must_use]
    pub fn throughput_ops(&self) -> f64 {
        self.ops as f64 / self.latency
    }

    /// The paper's POL metric: fraction of memory-bound layers that
    /// benefit from LCMM.
    #[must_use]
    pub fn pol(&self) -> f64 {
        if self.memory_bound_layers == 0 {
            return 0.0;
        }
        self.layers_benefiting as f64 / self.memory_bound_layers as f64
    }

    /// Speedup over a baseline latency.
    #[must_use]
    pub fn speedup_over(&self, baseline_latency: f64) -> f64 {
        baseline_latency / self.latency
    }

    /// Sizes of the allocated (physical) buffers, in bytes.
    #[must_use]
    pub fn allocated_buffer_sizes(&self) -> Vec<u64> {
        self.buffers
            .iter()
            .zip(&self.chosen)
            .filter(|(_, &c)| c)
            .map(|(b, _)| b.bytes)
            .collect()
    }

    /// SRAM bytes each chosen buffer actually occupies, mode-aware: a
    /// pinned buffer occupies its full footprint, a streamed buffer only
    /// its ping-pong staging pair, and a partially resident buffer its
    /// resident prefix. With streaming off this equals
    /// [`Self::allocated_buffer_sizes`].
    #[must_use]
    pub fn occupied_buffer_sizes(&self) -> Vec<u64> {
        self.buffers
            .iter()
            .zip(&self.chosen)
            .enumerate()
            .filter(|(_, (_, &c))| c)
            .map(|(i, (b, _))| {
                match self
                    .weight_modes
                    .get(i)
                    .copied()
                    .unwrap_or(WeightMode::Pinned)
                {
                    WeightMode::Pinned => b.bytes,
                    WeightMode::Streamed { .. } => crate::prefetch::STREAM_PING_PONG_BYTES,
                    WeightMode::PartialResident { resident_bytes } => resident_bytes,
                }
            })
            .collect()
    }
}

/// The LCMM pipeline driver.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    options: LcmmOptions,
}

impl Pipeline {
    /// Creates a pipeline with the given options.
    #[must_use]
    pub fn new(options: LcmmOptions) -> Self {
        Self { options }
    }

    /// The options in force.
    #[must_use]
    pub fn options(&self) -> &LcmmOptions {
        &self.options
    }

    /// Derates an explored (UMM) design into its LCMM form: the array
    /// shape is kept, the clock is derated and the tile buffers shrunk
    /// per the paper's LCMM designs.
    #[must_use]
    pub fn lcmm_design(&self, base: AccelDesign) -> AccelDesign {
        let freq = self
            .options
            .frequency_hz
            .unwrap_or_else(|| default_lcmm_frequency(base.precision));
        base.with_frequency(freq)
            .with_tile_budget(TileBudget::default_lcmm())
    }

    /// The checked engine behind [`crate::PlanRequest`]: derates `base`
    /// via [`Pipeline::lcmm_design`], profiles it, and runs passes 1–4,
    /// polling `cancel` at every pass boundary.
    ///
    /// # Errors
    ///
    /// [`LcmmError::Cancelled`] / [`LcmmError::DeadlineExceeded`] when
    /// `cancel` trips at a check point.
    pub(crate) fn run_with_design_checked(
        &self,
        graph: &Graph,
        base: AccelDesign,
        cancel: Option<&CancelToken>,
    ) -> Result<LcmmResult, LcmmError> {
        check_opt(cancel)?;
        let design = self.lcmm_design(base);
        let t_profile = Instant::now();
        let profile = design.profile(graph);
        let profile_seconds = t_profile.elapsed().as_secs_f64();
        let mut result = self.run_with_profile_checked(graph, design, &profile, cancel)?;
        result.stats.profile_seconds = profile_seconds;
        result.stats.total_seconds += profile_seconds;
        Ok(result)
    }

    /// The checked engine for an already-derated design and its latency
    /// table (the memoization seam of the evaluation harness: the
    /// profile is by far the most expensive shared artefact, and every
    /// ablation variant of the same design can reuse one copy).
    ///
    /// Cancellation is cooperative: `cancel` is polled before pass 1 and
    /// after every pass, so a run is abandoned at the next pass boundary
    /// after the token trips.
    ///
    /// # Errors
    ///
    /// [`LcmmError::Cancelled`] / [`LcmmError::DeadlineExceeded`] when
    /// `cancel` trips at a check point.
    pub(crate) fn run_with_profile_checked(
        &self,
        graph: &Graph,
        design: AccelDesign,
        profile: &GraphProfile,
        cancel: Option<&CancelToken>,
    ) -> Result<LcmmResult, LcmmError> {
        check_opt(cancel)?;
        profiling::reset_counters();
        let t_total = Instant::now();
        // Fusion is derived here, from the unfused profile, and never
        // re-derived downstream (see `crate::fusion` on why re-fusing a
        // fused table is unsound). With fusion off or empty the
        // original profile flows through untouched.
        let prepared = crate::fusion::prepare(graph, profile, &design, &self.options);
        let (fusion, effective): (FusionPlan, &GraphProfile) = match &prepared {
            Some((plan, fused)) => (plan.clone(), fused),
            None => (FusionPlan::default(), profile),
        };
        let evaluator = Evaluator::new(graph, effective);
        let front = build_front_end(
            graph,
            effective,
            &evaluator,
            &design,
            &self.options,
            &fusion,
            cancel,
        )?;
        run_back_end(
            graph,
            design,
            effective,
            &evaluator,
            &self.options,
            front,
            t_total,
            cancel,
        )
    }
}

/// The budget-invariant intermediates of passes 1–2: liveness intervals
/// folded into the feature interference graph, prefetch spans folded
/// into the weight interference graph, and the prefetch plan itself.
/// These depend only on `(graph, profile, design, options − tensor_budget)`
/// — the invariance [`crate::delta`] builds on.
#[derive(Debug, Clone)]
pub(crate) struct FrontEnd {
    /// Feature-tensor interference graph (pass 1).
    pub feature_graph: InterferenceGraph,
    /// Weight-tensor interference graph (pass 2).
    pub weight_graph: InterferenceGraph,
    /// The weight prefetch plan (pass 2).
    pub prefetch: PrefetchPlan,
    /// The fused groups the front end was built under (empty when
    /// fusion is off or selected nothing). Budget-invariant, like
    /// everything else here, so delta replays carry it for free.
    pub fusion: FusionPlan,
    /// Wall clock of pass 1, seconds.
    pub liveness_seconds: f64,
    /// Wall clock of pass 2, seconds.
    pub prefetch_seconds: f64,
}

/// Runs passes 1–2 exactly as the full pipeline does. Shared by the
/// pipeline itself, [`crate::coplan::tenant_gain_curve`], and the
/// artifact builds of [`crate::delta`], so all three produce
/// byte-identical interference graphs and prefetch plans by
/// construction.
pub(crate) fn build_front_end(
    graph: &Graph,
    profile: &GraphProfile,
    evaluator: &Evaluator<'_>,
    design: &AccelDesign,
    options: &LcmmOptions,
    fusion: &FusionPlan,
    cancel: Option<&CancelToken>,
) -> Result<FrontEnd, LcmmError> {
    let values = ValueTable::build_batched(graph, profile, design.precision, design.batch);
    let schedule = Schedule::new(graph);

    // --- Pass 1: feature buffer reuse -------------------------------
    // Tensors eliminated by fused groups never materialise, so they are
    // dropped from the candidate set: their liveness intervals vanish
    // and the interference graph shrinks accordingly.
    let t_pass = Instant::now();
    let feature_graph = if options.feature_reuse {
        let spans = feature_lifespans(
            &schedule,
            values
                .feature_candidates()
                .filter(|v| !fusion.eliminates(v.id.node())),
        );
        InterferenceGraph::new(
            values
                .feature_candidates()
                .filter(|v| !fusion.eliminates(v.id.node()))
                .map(|v| (v.id, v.bytes, spans[&v.id]))
                .collect(),
        )
    } else {
        InterferenceGraph::default()
    };
    let liveness_seconds = t_pass.elapsed().as_secs_f64();
    check_opt(cancel)?;

    // --- Pass 2: weight buffer prefetching ---------------------------
    let t_pass = Instant::now();
    let (weight_graph, prefetch) = if options.weight_prefetch {
        let plan = PrefetchPlan::build(
            evaluator,
            &schedule,
            &Residency::new(),
            values.weight_candidates(),
        );
        let spans = plan.intervals();
        let graph = InterferenceGraph::new(
            values
                .weight_candidates()
                .filter(|v| spans.contains_key(&v.id))
                .map(|v| (v.id, v.bytes, spans[&v.id]))
                .collect(),
        );
        (graph, plan)
    } else {
        (InterferenceGraph::default(), PrefetchPlan::default())
    };
    let prefetch_seconds = t_pass.elapsed().as_secs_f64();
    check_opt(cancel)?;

    Ok(FrontEnd {
        feature_graph,
        weight_graph,
        prefetch,
        fusion: fusion.clone(),
        liveness_seconds,
        prefetch_seconds,
    })
}

/// The allocator callback for `kind`, shared by the pipeline and the
/// delta replay so both resolve options identically.
pub(crate) fn allocator_fn(kind: AllocatorKind) -> crate::splitting::AllocatorFn {
    match kind {
        AllocatorKind::Dnnk => dnnk::allocate as fn(&AllocProblem<'_>) -> _,
        AllocatorKind::DnnkIterative => dnnk_iterative::allocate,
        AllocatorKind::Greedy => greedy::allocate,
        AllocatorKind::Exhaustive => exhaustive::allocate,
    }
}

/// The effective knapsack budget: an explicit `tensor_budget` clamped to
/// the design's own SRAM budget, or the full design budget.
pub(crate) fn effective_budget(options: &LcmmOptions, design: &AccelDesign) -> u64 {
    match options.tensor_budget {
        Some(b) => b.min(design.tensor_sram_budget()),
        None => design.tensor_sram_budget(),
    }
}

/// Runs passes 3–4 and reporting on prebuilt front-end artifacts — the
/// budget-dependent tail of the pipeline. `t_total` anchors the run's
/// `total_seconds` (the caller started the clock before the front end,
/// or before the replay for a delta replan). The caller must have reset
/// the profiling counters at the same anchor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_back_end(
    graph: &Graph,
    design: AccelDesign,
    profile: &GraphProfile,
    evaluator: &Evaluator<'_>,
    options: &LcmmOptions,
    front: FrontEnd,
    t_total: Instant,
    cancel: Option<&CancelToken>,
) -> Result<LcmmResult, LcmmError> {
    let FrontEnd {
        feature_graph,
        weight_graph,
        prefetch,
        fusion,
        liveness_seconds,
        prefetch_seconds,
    } = front;

    // --- Pass 3 + 4: DNNK allocation with splitting ------------------
    let t_pass = Instant::now();
    let allocator = allocator_fn(options.allocator);
    let split_config = if options.splitting {
        SplitConfig::default()
    } else {
        SplitConfig { max_iterations: 0 }
    };
    let budget = effective_budget(options, &design);
    let result = refine(
        evaluator,
        design.precision,
        budget,
        &prefetch,
        options.weight_streaming,
        feature_graph,
        weight_graph,
        allocator,
        split_config,
    );
    let alloc_split_seconds = t_pass.elapsed().as_secs_f64();
    check_opt(cancel)?;

    // --- Reporting ----------------------------------------------------
    let t_pass = Instant::now();
    let empty = Residency::new();
    let memory_bound = profile.memory_bound_layers(graph);
    let layers_benefiting = memory_bound
        .iter()
        .filter(|&&n| {
            evaluator.node_latency(n, &result.outcome.residency)
                < evaluator.node_latency(n, &empty) - 1e-15
        })
        .count();

    let buffer_sizes: Vec<u64> = result
        .buffers
        .iter()
        .zip(&result.outcome.chosen)
        .filter(|(_, &c)| c)
        .map(|(b, _)| b.bytes)
        .collect();
    let resources = resources::report(&design, &buffer_sizes);

    let ops = design.batch as u64 * 2 * graph.total_macs();
    let reporting_seconds = t_pass.elapsed().as_secs_f64();

    let mut stats = PassStats::from_counters(profiling::snapshot_counters());
    stats.liveness_seconds = liveness_seconds;
    stats.prefetch_seconds = prefetch_seconds;
    stats.alloc_split_seconds = alloc_split_seconds;
    stats.reporting_seconds = reporting_seconds;
    stats.total_seconds = t_total.elapsed().as_secs_f64();

    Ok(LcmmResult {
        design,
        latency: result.outcome.latency,
        ops,
        residency: result.outcome.residency,
        buffers: result.buffers,
        chosen: result.outcome.chosen,
        weight_modes: result.outcome.modes,
        prefetch,
        split_iterations: result.iterations,
        resources,
        memory_bound_layers: memory_bound.len(),
        layers_benefiting,
        fusion,
        stats,
    })
}

/// Per-block latency of a graph under a residency (drives Fig. 8): the
/// sum of node latencies of the nodes labelled with `block`.
#[must_use]
pub fn block_latency(
    graph: &Graph,
    evaluator: &Evaluator<'_>,
    residency: &Residency,
    block: &str,
) -> f64 {
    graph
        .block_nodes(block)
        .into_iter()
        .map(|n| evaluator.node_latency(n, residency))
        .sum()
}

/// Per-block operation count (2 × MACs), for block throughput plots.
#[must_use]
pub fn block_ops(graph: &Graph, block: &str) -> u64 {
    graph
        .block_nodes(block)
        .into_iter()
        .map(|n| 2 * graph.node_macs(n))
        .sum()
}

/// Convenience: UMM baseline and full-LCMM result side by side.
#[must_use]
pub fn compare(graph: &Graph, device: &Device, precision: Precision) -> (UmmBaseline, LcmmResult) {
    let umm = UmmBaseline::build(graph, device, precision);
    let lcmm = Pipeline::new(LcmmOptions::default())
        .run_with_design_checked(graph, umm.design.clone(), None)
        .expect("uncancellable run cannot fail");
    (umm, lcmm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn lcmm_beats_umm_on_googlenet_16bit() {
        let g = zoo::googlenet();
        let (umm, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let speedup = lcmm.speedup_over(umm.latency);
        assert!(speedup > 1.05, "speedup only {speedup}");
        assert!(speedup < 2.5, "speedup implausibly high: {speedup}");
    }

    #[test]
    fn ablations_bracket_full_lcmm() {
        let g = zoo::googlenet();
        let device = Device::vu9p();
        let umm = UmmBaseline::build(&g, &device, Precision::Fix16);
        let variant = |options: LcmmOptions| {
            Pipeline::new(options)
                .run_with_design_checked(&g, umm.design.clone(), None)
                .expect("explored design is feasible")
        };
        let full = variant(LcmmOptions::default());
        let features_only = variant(LcmmOptions::feature_reuse_only());
        let weights_only = variant(LcmmOptions::weight_prefetch_only());
        assert!(full.latency <= features_only.latency + 1e-12);
        assert!(full.latency <= weights_only.latency + 1e-12);
    }

    #[test]
    fn pol_is_a_fraction_and_nonzero() {
        let g = zoo::googlenet();
        let (_, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let pol = lcmm.pol();
        assert!((0.0..=1.0).contains(&pol));
        assert!(pol > 0.3, "POL suspiciously low: {pol}");
    }

    #[test]
    fn sram_utilization_rises_with_lcmm() {
        let g = zoo::googlenet();
        let (umm, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let umm_sram = umm.resources.sram_util(&umm.design.device);
        let lcmm_sram = lcmm.resources.sram_util(&lcmm.design.device);
        assert!(lcmm_sram > umm_sram, "{lcmm_sram} <= {umm_sram}");
    }

    #[test]
    fn allocated_buffers_fit_budget() {
        let g = zoo::googlenet();
        let (_, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let total: u64 = lcmm.allocated_buffer_sizes().iter().sum();
        assert!(total <= lcmm.design.tensor_sram_budget());
    }

    #[test]
    fn block_latency_sums_to_labelled_nodes() {
        let g = zoo::googlenet();
        let umm = UmmBaseline::build(&g, &Device::vu9p(), Precision::Fix16);
        let ev = Evaluator::new(&g, &umm.profile);
        let r = Residency::new();
        let total_blocks: f64 = g
            .blocks()
            .iter()
            .map(|b| block_latency(&g, &ev, &r, b))
            .sum();
        // Some nodes (pools between stages) are unlabelled, so the block
        // sum is at most the total.
        assert!(total_blocks <= ev.total_latency(&r) + 1e-12);
        assert!(total_blocks > 0.0);
    }

    #[test]
    fn degenerate_budgets_plan_cleanly_across_allocators_and_modes() {
        // Satellite sweep: zero and near-zero pools, budgets below one
        // capacity unit, below the largest tensor, and far above the
        // design budget (exercising the clamp) must all produce a
        // feasible plan — no panics, no divide-by-zero, no over-budget
        // residency — for every allocator × streaming mode.
        let g = zoo::synthetic(16, 2, 1);
        let device = Device::vu9p();
        const UNIT: u64 = 36 * 1024;
        for allocator in [
            AllocatorKind::Dnnk,
            AllocatorKind::DnnkIterative,
            AllocatorKind::Greedy,
            AllocatorKind::Exhaustive,
        ] {
            for streaming in [
                StreamingMode::Off,
                StreamingMode::Pinned,
                StreamingMode::Auto,
            ] {
                for budget in [0, 1, UNIT - 1, UNIT, 100 * 1024, u64::MAX] {
                    let result = crate::request::PlanRequest::new(&g, &device, Precision::Fix16)
                        .options(
                            LcmmOptions::default()
                                .with_allocator(allocator)
                                .with_weight_streaming(streaming)
                                .with_tensor_budget(Some(budget)),
                        )
                        .run()
                        .unwrap_or_else(|e| panic!("{allocator:?}/{streaming:?}/{budget}: {e}"));
                    let occupied: u64 = result.occupied_buffer_sizes().iter().sum();
                    let effective = budget.min(result.design.tensor_sram_budget());
                    assert!(
                        occupied <= effective,
                        "{allocator:?}/{streaming:?}: occupied {occupied} B over budget {effective} B"
                    );
                    assert!(
                        result.latency.is_finite() && result.latency > 0.0,
                        "{allocator:?}/{streaming:?}/{budget}: latency {}",
                        result.latency
                    );
                    if budget == 0 {
                        assert!(
                            result.residency.iter().next().is_none(),
                            "{allocator:?}/{streaming:?}: residency must be empty at zero budget"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_allocator_option_works() {
        let g = zoo::alexnet();
        let opts = LcmmOptions::default().with_allocator(AllocatorKind::Greedy);
        let device = Device::vu9p();
        let lcmm = crate::request::PlanRequest::new(&g, &device, Precision::Fix16)
            .options(opts)
            .run()
            .expect("alexnet fits the VU9P budget");
        assert!(lcmm.latency > 0.0);
    }
}
