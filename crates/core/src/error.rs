//! The unified error type of the planning API.
//!
//! Every fallible entry point of the redesigned surface
//! ([`crate::PlanRequest::run`], [`crate::Harness::try_lcmm_with_design`],
//! the serve daemon) returns [`LcmmError`], so callers — in particular a
//! long-running service — can map failures to stable error codes
//! instead of dying on a `panic!`.

use lcmm_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong while planning one network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LcmmError {
    /// The input graph failed validation (cycles, dangling ids,
    /// malformed operator parameters).
    Graph(GraphError),
    /// A named model or synthetic spec did not resolve.
    UnknownModel(String),
    /// A named device did not resolve.
    UnknownDevice(String),
    /// No accelerator design fits the resource budget — e.g. a DSP
    /// budget too small for even the smallest systolic array.
    BudgetInfeasible(String),
    /// The request itself is malformed (bad field values, impossible
    /// combinations). The payload names the offending field.
    InvalidRequest(String),
    /// The run was cancelled cooperatively via [`crate::CancelToken`].
    Cancelled,
    /// The run exceeded its deadline and was abandoned at the next
    /// cooperative cancellation check.
    DeadlineExceeded,
    /// The worker computing this request was detected stuck past the
    /// serve daemon's stall budget and recycled; the request was
    /// abandoned rather than left hanging.
    WorkerRecycled,
}

impl fmt::Display for LcmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcmmError::Graph(e) => write!(f, "graph validation failed: {e}"),
            LcmmError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            LcmmError::UnknownDevice(name) => write!(f, "unknown device {name:?}"),
            LcmmError::BudgetInfeasible(msg) => write!(f, "budget infeasible: {msg}"),
            LcmmError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            LcmmError::Cancelled => write!(f, "request cancelled"),
            LcmmError::DeadlineExceeded => write!(f, "deadline exceeded"),
            LcmmError::WorkerRecycled => {
                write!(f, "worker exceeded its stall budget and was recycled")
            }
        }
    }
}

impl Error for LcmmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LcmmError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for LcmmError {
    fn from(e: GraphError) -> Self {
        LcmmError::Graph(e)
    }
}

impl LcmmError {
    /// A stable machine-readable code for the wire protocol (HTTP-style
    /// semantics: `timeout` maps to 408, admission errors to 429, and
    /// so on — see `docs/SERVE.md`).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            LcmmError::Graph(_) => "bad_graph",
            LcmmError::UnknownModel(_) => "unknown_model",
            LcmmError::UnknownDevice(_) => "unknown_device",
            LcmmError::BudgetInfeasible(_) => "infeasible",
            LcmmError::InvalidRequest(_) => "bad_request",
            LcmmError::Cancelled => "cancelled",
            LcmmError::DeadlineExceeded => "timeout",
            LcmmError::WorkerRecycled => "worker_recycled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_display_is_specific() {
        assert_eq!(LcmmError::DeadlineExceeded.code(), "timeout");
        assert_eq!(LcmmError::Cancelled.code(), "cancelled");
        let e = LcmmError::UnknownModel("lenet".into());
        assert_eq!(e.code(), "unknown_model");
        assert_eq!(e.to_string(), "unknown model \"lenet\"");
        let g: LcmmError = GraphError::UnknownNode(3).into();
        assert_eq!(g.code(), "bad_graph");
        assert!(g.to_string().contains("unknown node id 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LcmmError>();
    }
}
