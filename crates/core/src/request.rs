//! The typed planning entry point.
//!
//! [`PlanRequest`] collapses the historical `Pipeline::run` /
//! `run_with_design` / `run_with_profile` trio into one builder:
//!
//! ```
//! use lcmm_core::{AllocatorKind, PlanRequest};
//! use lcmm_fpga::{Device, Precision};
//!
//! let graph = lcmm_graph::zoo::alexnet();
//! let device = Device::vu9p();
//! let result = PlanRequest::new(&graph, &device, Precision::Fix16)
//!     .allocator(AllocatorKind::Dnnk)
//!     .run()
//!     .expect("alexnet on a VU9P is feasible");
//! assert!(result.latency > 0.0);
//! ```
//!
//! Precomputed artefacts slot in through [`PlanRequest::with_design`]
//! (an explored UMM base design) and [`PlanRequest::with_profile`] (the
//! latency table of the *derated* design) — the memoization seams the
//! evaluation harness and the serve daemon reuse. A [`CancelToken`]
//! or [`PlanRequest::deadline`] makes the run abortable at every pass
//! boundary.

use crate::cancel::CancelToken;
use crate::error::LcmmError;
use crate::pipeline::{AllocatorKind, LcmmOptions, LcmmResult, Pipeline};
use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
use lcmm_graph::Graph;
use std::time::{Duration, Instant};

/// A single planning request: one graph on one device at one precision,
/// plus everything optional (options, precomputed artefacts,
/// cancellation).
#[derive(Debug, Clone)]
pub struct PlanRequest<'a> {
    graph: &'a Graph,
    device: &'a Device,
    precision: Precision,
    options: LcmmOptions,
    design: Option<AccelDesign>,
    profile: Option<&'a GraphProfile>,
    cancel: Option<CancelToken>,
}

impl<'a> PlanRequest<'a> {
    /// Starts a request with default [`LcmmOptions`].
    #[must_use]
    pub fn new(graph: &'a Graph, device: &'a Device, precision: Precision) -> Self {
        Self {
            graph,
            device,
            precision,
            options: LcmmOptions::default(),
            design: None,
            profile: None,
            cancel: None,
        }
    }

    /// Replaces the whole option set.
    #[must_use]
    pub fn options(mut self, options: LcmmOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the allocator for the knapsack stage (shorthand for
    /// adapting [`LcmmOptions`]).
    #[must_use]
    pub fn allocator(mut self, allocator: AllocatorKind) -> Self {
        self.options = self.options.with_allocator(allocator);
        self
    }

    /// Sets the knapsack-stage SRAM budget (shorthand for adapting
    /// [`LcmmOptions`]). This is the one option a
    /// [`crate::delta::PlanArtifacts`] replay can vary without
    /// rebuilding artifacts.
    #[must_use]
    pub fn tensor_budget(mut self, budget: Option<u64>) -> Self {
        self.options = self.options.with_tensor_budget(budget);
        self
    }

    /// Starts from an already-explored (UMM) base design instead of
    /// running design-space exploration — the equivalent of the retired
    /// `Pipeline::run_with_design`.
    #[must_use]
    pub fn with_design(mut self, design: AccelDesign) -> Self {
        self.design = Some(design);
        self
    }

    /// Supplies the latency table of the **derated** design passed to
    /// [`PlanRequest::with_design`] (`profile` must equal
    /// `design.profile(graph)`), skipping both derating and profiling —
    /// the equivalent of the retired `Pipeline::run_with_profile`.
    #[must_use]
    pub fn with_profile(mut self, profile: &'a GraphProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Attaches a cancellation token; the run aborts at the next pass
    /// boundary after the token trips.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Gives the run a deadline measured from now. When a token from
    /// [`PlanRequest::cancel_token`] is already attached its deadline is
    /// left untouched; otherwise a fresh deadline-only token is created.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        if self.cancel.is_none() {
            self.cancel = Some(CancelToken::with_deadline(Instant::now() + budget));
        }
        self
    }

    /// The options currently configured.
    #[must_use]
    pub fn options_ref(&self) -> &LcmmOptions {
        &self.options
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// * [`LcmmError::BudgetInfeasible`] — design-space exploration
    ///   found no array within the device's DSP budget;
    /// * [`LcmmError::InvalidRequest`] — inconsistent inputs (profile
    ///   without design, design/precision mismatch);
    /// * [`LcmmError::Cancelled`] / [`LcmmError::DeadlineExceeded`] —
    ///   the cancel token tripped at a pass boundary.
    pub fn run(self) -> Result<LcmmResult, LcmmError> {
        let pipeline = Pipeline::new(self.options);
        let cancel = self.cancel.as_ref();
        if let Some(design) = &self.design {
            if design.precision != self.precision {
                return Err(LcmmError::InvalidRequest(format!(
                    "design precision {} does not match request precision {}",
                    design.precision, self.precision
                )));
            }
        }
        match (self.design, self.profile) {
            (Some(design), Some(profile)) => {
                pipeline.run_with_profile_checked(self.graph, design, profile, cancel)
            }
            (Some(base), None) => pipeline.run_with_design_checked(self.graph, base, cancel),
            (None, None) => {
                let base = AccelDesign::try_explore(self.graph, self.device, self.precision)
                    .map_err(LcmmError::BudgetInfeasible)?;
                pipeline.run_with_design_checked(self.graph, base, cancel)
            }
            (None, Some(_)) => Err(LcmmError::InvalidRequest(
                "with_profile requires with_design (the derated design the profile belongs to)"
                    .to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn request_matches_explicit_explore_bit_identically() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let base = AccelDesign::explore(&g, &device, Precision::Fix16);
        let explicit = Pipeline::new(LcmmOptions::default())
            .run_with_design_checked(&g, base, None)
            .expect("explored design is feasible");
        let new = PlanRequest::new(&g, &device, Precision::Fix16)
            .run()
            .expect("feasible");
        assert_eq!(new.latency, explicit.latency);
        assert_eq!(new.residency, explicit.residency);
        assert_eq!(new.chosen, explicit.chosen);
        assert_eq!(new.split_iterations, explicit.split_iterations);
    }

    #[test]
    fn request_with_design_and_profile_match_each_other() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let base = AccelDesign::explore(&g, &device, Precision::Fix16);
        let via_design = PlanRequest::new(&g, &device, Precision::Fix16)
            .with_design(base.clone())
            .run()
            .expect("feasible");
        let derated = Pipeline::new(LcmmOptions::default()).lcmm_design(base);
        let profile = derated.profile(&g);
        let via_profile = PlanRequest::new(&g, &device, Precision::Fix16)
            .with_design(derated)
            .with_profile(&profile)
            .run()
            .expect("feasible");
        assert_eq!(via_design.latency, via_profile.latency);
        assert_eq!(via_design.chosen, via_profile.chosen);
    }

    #[test]
    fn profile_without_design_is_invalid() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let design = AccelDesign::explore(&g, &device, Precision::Fix16);
        let profile = design.profile(&g);
        let err = PlanRequest::new(&g, &device, Precision::Fix16)
            .with_profile(&profile)
            .run()
            .unwrap_err();
        assert!(matches!(err, LcmmError::InvalidRequest(_)));
    }

    #[test]
    fn precision_mismatch_is_invalid() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let design = AccelDesign::explore(&g, &device, Precision::Fix8);
        let err = PlanRequest::new(&g, &device, Precision::Fix16)
            .with_design(design)
            .run()
            .unwrap_err();
        assert!(matches!(err, LcmmError::InvalidRequest(_)));
    }

    #[test]
    fn infeasible_dsp_budget_reports_error_not_panic() {
        let g = zoo::alexnet();
        let mut device = Device::vu9p();
        device.dsp_slices = 1; // nothing fits
        let err = PlanRequest::new(&g, &device, Precision::Fix16)
            .run()
            .unwrap_err();
        assert!(matches!(err, LcmmError::BudgetInfeasible(_)));
        assert_eq!(err.code(), "infeasible");
    }

    #[test]
    fn cancelled_token_aborts_before_work() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let token = CancelToken::new();
        token.cancel();
        let err = PlanRequest::new(&g, &device, Precision::Fix16)
            .cancel_token(token)
            .run()
            .unwrap_err();
        assert_eq!(err, LcmmError::Cancelled);
    }

    #[test]
    fn zero_deadline_times_out() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let err = PlanRequest::new(&g, &device, Precision::Fix16)
            .deadline(Duration::ZERO)
            .run()
            .unwrap_err();
        assert_eq!(err, LcmmError::DeadlineExceeded);
    }
}
