//! Weight buffer prefetching and the prefetch dependence graph (§3.2),
//! plus the per-layer weight-mode model built on top of it.
//!
//! Weights are known ahead of time, so the buffer of a memory-bound
//! layer `C_k` can start filling while earlier layers execute. The pass
//! backtracks from `C_k` through the schedule until the accumulated
//! execution time covers the weight load time `T`, and emits a
//! *prefetch edge* `(C_k', C_k)`. The interval `[pos(C_k'), pos(C_k)]`
//! is the weight buffer's occupancy span; weights with disjoint spans
//! can share a buffer (the weight interference graph).
//!
//! The same edge also prices the *streaming* alternatives of a weight
//! (AutoWS-style): instead of pinning all `B` bytes on chip, a layer
//! can stream its weight through a small ping-pong buffer every
//! inference, or keep only a fraction resident and stream the rest.
//! The stream claims exactly the contended idle weight-interface
//! capacity the edge already reserved, so the steady-state exposed time
//! of each mode follows from `(T, E)` of the edge alone — see
//! [`ModeOption`] and `docs/STREAMING.md` for the timing model.

use crate::eval::{Evaluator, Residency};
use crate::liveness::{LiveInterval, Schedule};
use crate::value::{TensorValue, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One prefetch edge of the PDG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchEdge {
    /// Schedule position where the prefetch may begin (`C_k'`).
    pub start: usize,
    /// Schedule position of the consuming layer (`C_k`).
    pub end: usize,
    /// Weight load time `T` in seconds.
    pub load_seconds: f64,
    /// Portion of `T` that cannot be hidden because the graph does not
    /// reach back far enough (early layers); 0 when fully hidden.
    pub exposed_seconds: f64,
}

impl PrefetchEdge {
    /// The buffer occupancy span implied by this edge.
    #[must_use]
    pub fn interval(&self) -> LiveInterval {
        LiveInterval::new(self.start, self.end)
    }

    /// Whether the whole load is hidden behind earlier execution.
    #[must_use]
    pub fn fully_hidden(&self) -> bool {
        self.exposed_seconds <= 0.0
    }
}

/// The prefetch dependence graph: one edge per prefetched weight value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefetchPlan {
    edges: HashMap<ValueId, PrefetchEdge>,
}

impl PrefetchPlan {
    /// Builds the PDG for the given weight candidates.
    ///
    /// Backtracking accumulates the *current* per-node latencies from
    /// `evaluator` under `residency` (typically the state after feature
    /// buffer reuse), matching the paper's flow where prefetching runs
    /// after feature reuse.
    ///
    /// Unlike the paper's pass, hiding capacity is *contended*: a
    /// prefetch can only use the weight interface's idle time during
    /// each earlier layer (the layer's latency minus its own weight
    /// stream), and capacity consumed by one prefetch is gone for the
    /// next. Without this, stacking many large weights in a deep
    /// network would hide unbounded traffic behind the same window.
    #[must_use]
    pub fn build<'a, I>(
        evaluator: &Evaluator<'_>,
        schedule: &Schedule,
        residency: &Residency,
        weight_values: I,
    ) -> Self
    where
        I: IntoIterator<Item = &'a TensorValue>,
    {
        // Idle weight-interface seconds available during each step.
        let idle: Vec<f64> = (0..schedule.len())
            .map(|pos| {
                let node = schedule.at(pos);
                let lat = evaluator.node_latency(node, residency);
                let own_weight_stream = evaluator.profile().node(node).weight;
                (lat - own_weight_stream).max(0.0)
            })
            .collect();

        // `(consumer position, load seconds, id)` per candidate.
        let mut candidates: Vec<(usize, f64, ValueId)> = weight_values
            .into_iter()
            .filter_map(|v| match v.id {
                ValueId::Weight(node) => {
                    let load = evaluator.profile().node(node).weight;
                    (load > 0.0).then_some((schedule.position(node), load, v.id))
                }
                ValueId::Feature(_) => None,
            })
            .collect();

        // Two claim orders compete for the contended capacity:
        //  - schedule order: earlier layers claim the window closest to
        //    their use point first;
        //  - risk order: the largest loads — the ones whose exposure
        //    would cost the most — claim first, so a stack of small
        //    cheap-to-hide weights cannot starve a big one out of its
        //    window.
        // Neither dominates on every graph, so both are planned and the
        // risk plan wins only when it is a Pareto improvement: strictly
        // fewer exposed seconds AND no more exposed edges. The edge
        // count matters independently of the seconds — POL counts
        // *layers* that benefit, and a risk plan that shaves a few
        // microseconds of total exposure by spreading it across dozens
        // of previously-hidden weights guts that metric (seen on
        // ResNet-152, where the two totals tie to the last bits while
        // the risk plan exposes 76 layers to schedule order's 10).
        // Schedule order wins ties, preserving historical plans.
        candidates.sort_by_key(|&(pos, _, _)| pos);
        let in_schedule_order = plan_edges(&candidates, idle.clone());
        let mut by_risk = candidates;
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN
        // load would otherwise silently collapse the sort into a
        // comparator-order-dependent shuffle. Loads are validated
        // finite at profile ingestion, but the sort must stay total
        // regardless.
        by_risk.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let risk_first = plan_edges(&by_risk, idle);
        let (risk_total, risk_exposed) = exposure_stats(&risk_first);
        let (sched_total, sched_exposed) = exposure_stats(&in_schedule_order);
        let edges = if risk_total < sched_total && risk_exposed <= sched_exposed {
            risk_first
        } else {
            in_schedule_order
        };
        Self { edges }
    }

    /// The edge for a weight value, if one was planned.
    #[must_use]
    pub fn edge(&self, id: ValueId) -> Option<&PrefetchEdge> {
        self.edges.get(&id)
    }

    /// Iterates over all planned edges.
    pub fn iter(&self) -> impl Iterator<Item = (&ValueId, &PrefetchEdge)> {
        self.edges.iter()
    }

    /// Number of planned prefetches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no prefetch was planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Occupancy spans for the weight interference graph.
    #[must_use]
    pub fn intervals(&self) -> HashMap<ValueId, LiveInterval> {
        self.edges
            .iter()
            .map(|(&id, e)| (id, e.interval()))
            .collect()
    }
}

/// Backtracks each candidate (in the order given) through the shared
/// idle-capacity vector and emits its prefetch edge.
fn plan_edges(
    candidates: &[(usize, f64, ValueId)],
    mut idle: Vec<f64>,
) -> HashMap<ValueId, PrefetchEdge> {
    let mut edges = HashMap::new();
    for &(end, load, id) in candidates {
        let mut needed = load;
        let mut start = end;
        while start > 0 && needed > 0.0 {
            start -= 1;
            let take = idle[start].min(needed);
            idle[start] -= take;
            needed -= take;
        }
        edges.insert(
            id,
            PrefetchEdge {
                start,
                end,
                load_seconds: load,
                exposed_seconds: needed.max(0.0),
            },
        );
    }
    edges
}

/// `(total exposed seconds, edges with any exposure)` of a planned edge
/// set. The total is summed in value-id order: the map's own iteration
/// order is seed-randomised, and float addition is order-sensitive —
/// summing in map order would make the risk-vs-schedule comparison flip
/// between runs on near-ties.
fn exposure_stats(edges: &HashMap<ValueId, PrefetchEdge>) -> (f64, usize) {
    let mut exposed: Vec<(ValueId, f64)> = edges
        .iter()
        .map(|(&id, e)| (id, e.exposed_seconds))
        .collect();
    exposed.sort_by_key(|&(id, _)| id);
    let total = exposed.iter().map(|&(_, e)| e).sum();
    let count = exposed.iter().filter(|&&(_, e)| e > 0.0).count();
    (total, count)
}

// ---------------------------------------------------------------------
// Per-layer weight modes (AutoWS)
// ---------------------------------------------------------------------

/// How the weight-streaming selector runs, as an [`crate::LcmmOptions`]
/// knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamingMode {
    /// Legacy binary residency: no mode machinery at all (default).
    #[default]
    Off,
    /// The mode-aware allocator path with every weight forced to
    /// [`WeightMode::Pinned`]; plans are bit-identical to [`Off`]
    /// (property-tested), so this isolates the refactored code path.
    ///
    /// [`Off`]: StreamingMode::Off
    Pinned,
    /// Full per-layer selection between pinning, double-buffered
    /// streaming, and partial residency.
    Auto,
}

/// How one weight value occupies on-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightMode {
    /// All bytes resident; loaded once at cold start, free thereafter
    /// (for a single-member buffer) or reloaded per inference (shared).
    Pinned,
    /// The weight streams through a small ping-pong buffer every
    /// inference. With `double_buffered` the stream overlaps compute
    /// inside the edge's claimed idle window (steady-state exposure
    /// `E`); without, every access demand-loads (exposure `T`) — the
    /// latter exists for completeness and is never auto-selected.
    Streamed {
        /// Whether the stream ping-pongs two chunks to overlap compute.
        double_buffered: bool,
    },
    /// `resident_bytes` stay pinned; the rest streams per inference.
    PartialResident {
        /// Bytes of the weight kept permanently on chip.
        resident_bytes: u64,
    },
}

impl WeightMode {
    /// Short human-readable label, used by reports and the serve wire
    /// format (`"pinned"`, `"streamed"`, `"streamed-once"`,
    /// `"partial:<bytes>"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Pinned => "pinned".to_string(),
            Self::Streamed {
                double_buffered: true,
            } => "streamed".to_string(),
            Self::Streamed {
                double_buffered: false,
            } => "streamed-once".to_string(),
            Self::PartialResident { resident_bytes } => format!("partial:{resident_bytes}"),
        }
    }
}

/// One candidate mode for a weight buffer: its SRAM cost and the
/// steady-state exposed seconds the evaluator charges when selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeOption {
    /// The mode itself.
    pub mode: WeightMode,
    /// On-chip bytes this option consumes.
    pub bytes: u64,
    /// Steady-state exposed weight-load seconds per inference. For
    /// [`WeightMode::Pinned`] this is the value the knapsack charges
    /// (the legacy pbuf approximation under [`StreamingMode::Pinned`],
    /// `0.0` under [`StreamingMode::Auto`]); the exact evaluator never
    /// charges a persistent pinned weight.
    pub exposed_seconds: f64,
}

/// Ping-pong footprint of a streamed weight: two URAM-unit chunks (one
/// filling while the other feeds the array). Shared with
/// [`crate::alloc::CAPACITY_UNIT_BYTES`].
pub const STREAM_PING_PONG_BYTES: u64 = 2 * 36 * 1024;

/// Resident fractions offered for [`WeightMode::PartialResident`], as
/// `(numerator, denominator)` of the weight's total bytes.
pub const PARTIAL_FRACTIONS: [(u64, u64); 3] = [(3, 4), (1, 2), (1, 4)];

impl PrefetchPlan {
    /// The per-mode options for a weight buffer of `bytes` bytes, priced
    /// from this plan's edge for `id` (see `docs/STREAMING.md`):
    ///
    /// * `Pinned` — `bytes` on chip, steady exposure `0`;
    /// * `PartialResident(f)` — `ceil(f·B)` bytes, exposure
    ///   `max(0, E − f·T)` (the hidden window `T − E` covers the tail of
    ///   the `(1−f)·T`-second stream first);
    /// * `Streamed{double_buffered: true}` — a fixed
    ///   [`STREAM_PING_PONG_BYTES`] footprint, exposure `E`.
    ///
    /// Options are ordered `Pinned` first, then descending residency.
    /// Non-pinned options are only offered when they save at least one
    /// whole capacity unit over pinning, and only for weights with a
    /// planned edge (the stream claims the edge's idle window). The
    /// first entry is always the pinned one.
    #[must_use]
    pub fn mode_options(
        &self,
        id: ValueId,
        bytes: u64,
        streaming: StreamingMode,
    ) -> Vec<ModeOption> {
        let edge = self.edge(id);
        let plan_exposed = edge.map_or(0.0, |e| e.exposed_seconds.max(0.0));
        let pinned_exposed = match streaming {
            // Legacy pbuf approximation: the DP charges the plan's
            // residual exposure for a resident weight.
            StreamingMode::Off | StreamingMode::Pinned => plan_exposed,
            // The exact model: a pinned single-member weight is
            // persistent and pays nothing in the steady state.
            StreamingMode::Auto => 0.0,
        };
        let mut options = vec![ModeOption {
            mode: WeightMode::Pinned,
            bytes,
            exposed_seconds: pinned_exposed,
        }];
        if streaming != StreamingMode::Auto {
            return options;
        }
        let Some(edge) = edge else {
            return options;
        };
        let unit = crate::alloc::CAPACITY_UNIT_BYTES;
        let pinned_units = bytes.div_ceil(unit);
        let (t, e) = (edge.load_seconds, edge.exposed_seconds.max(0.0));
        for &(num, den) in &PARTIAL_FRACTIONS {
            let resident = (bytes * num).div_ceil(den);
            if resident.div_ceil(unit) >= pinned_units {
                continue;
            }
            let f = num as f64 / den as f64;
            options.push(ModeOption {
                mode: WeightMode::PartialResident {
                    resident_bytes: resident,
                },
                bytes: resident,
                exposed_seconds: (e - f * t).max(0.0),
            });
        }
        if STREAM_PING_PONG_BYTES.div_ceil(unit) < pinned_units {
            options.push(ModeOption {
                mode: WeightMode::Streamed {
                    double_buffered: true,
                },
                bytes: STREAM_PING_PONG_BYTES,
                exposed_seconds: e,
            });
        }
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueTable;
    use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
    use lcmm_graph::{zoo, Graph};

    fn setup(graph: &Graph) -> (GraphProfile, ValueTable, Schedule) {
        let d = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let p = d.profile(graph);
        let t = ValueTable::build(graph, &p, Precision::Fix16);
        let s = Schedule::new(graph);
        (p, t, s)
    }

    #[test]
    fn edges_cover_weight_candidates() {
        let g = zoo::resnet152();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.weight_candidates());
        assert_eq!(plan.len(), t.weight_candidates().count());
    }

    #[test]
    fn edge_spans_cover_load_time() {
        let g = zoo::resnet152();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let r = Residency::new();
        let plan = PrefetchPlan::build(&ev, &s, &r, t.weight_candidates());
        for (&id, edge) in plan.iter() {
            assert!(edge.start <= edge.end);
            if edge.fully_hidden() {
                // Accumulated latency across the span must reach T.
                let span: f64 = (edge.start..edge.end)
                    .map(|k| ev.node_latency(s.at(k), &r))
                    .sum();
                assert!(
                    span + 1e-12 >= edge.load_seconds,
                    "{id}: span {span} < load {}",
                    edge.load_seconds
                );
            } else {
                assert_eq!(edge.start, 0, "exposure only at the graph head");
            }
        }
    }

    #[test]
    fn hiding_capacity_is_contended() {
        // Total hidden prefetch traffic can never exceed the total idle
        // weight-interface time of the whole schedule.
        let g = zoo::resnet152();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let r = Residency::new();
        let plan = PrefetchPlan::build(&ev, &s, &r, t.weight_candidates());
        let hidden: f64 = plan
            .iter()
            .map(|(_, e)| e.load_seconds - e.exposed_seconds)
            .sum();
        let idle: f64 = (0..s.len())
            .map(|pos| {
                let n = s.at(pos);
                (ev.node_latency(n, &r) - p.node(n).weight).max(0.0)
            })
            .sum();
        assert!(hidden <= idle + 1e-9, "hidden {hidden} > idle {idle}");
        // Early layers must see exposure before late ones run out: at
        // least one edge is exposed in this weight-heavy network at
        // 16-bit, and every exposed edge starts at the graph head or
        // follows from exhausted capacity.
        for (_, e) in plan.iter() {
            assert!(e.exposed_seconds <= e.load_seconds + 1e-12);
            assert!(e.start <= e.end);
        }
    }

    #[test]
    fn first_layer_weight_is_exposed() {
        // A weight used by the very first conv has no history to hide
        // behind; most of its load time must be exposed.
        let g = zoo::vgg16();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.weight_candidates());
        let first = g.node_by_name("conv1_1").unwrap().id();
        if let Some(edge) = plan.edge(ValueId::Weight(first)) {
            assert_eq!(edge.start, 0);
        }
    }

    #[test]
    fn intervals_match_edges() {
        let g = zoo::googlenet();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.weight_candidates());
        let intervals = plan.intervals();
        assert_eq!(intervals.len(), plan.len());
        for (id, edge) in plan.iter() {
            assert_eq!(intervals[id], edge.interval());
        }
    }

    #[test]
    fn plan_is_independent_of_candidate_iteration_order() {
        // The risk comparator must be total: ties on load (identical
        // layers) fall through to schedule position, so a stable sort
        // of reversed input still yields the same claim order. With the
        // old `partial_cmp(..).unwrap_or(Equal)` comparator this held
        // only by accident of input order.
        let g = zoo::synthetic(512, 2, 11);
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let r = Residency::new();
        let forward: Vec<_> = t.weight_candidates().collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = PrefetchPlan::build(&ev, &s, &r, forward);
        let b = PrefetchPlan::build(&ev, &s, &r, reversed);
        assert_eq!(a.len(), b.len());
        for (id, ea) in a.iter() {
            let eb = b.edge(*id).expect("same edge set");
            assert_eq!(ea, eb, "{id}");
        }
    }

    #[test]
    fn risk_first_never_increases_total_exposure() {
        // The claim-order competition must be a pure win: whatever
        // plan `build` picks exposes at most what the historical
        // schedule-order planning exposed. Checked on a deep stack of
        // heavy FC/conv weights (vgg16) and on deep synthetic graphs,
        // where hundreds of layers contend for the same early windows.
        let graphs = [
            zoo::vgg16(),
            zoo::resnet152(),
            zoo::synthetic(512, 2, 11),
            zoo::synthetic(768, 4, 3),
        ];
        for g in graphs {
            let (p, t, s) = setup(&g);
            let ev = Evaluator::new(&g, &p);
            let r = Residency::new();
            let plan = PrefetchPlan::build(&ev, &s, &r, t.weight_candidates());

            // Reference: schedule-order claims against the same idle
            // capacity.
            let idle: Vec<f64> = (0..s.len())
                .map(|pos| {
                    let n = s.at(pos);
                    (ev.node_latency(n, &r) - p.node(n).weight).max(0.0)
                })
                .collect();
            let mut candidates: Vec<(usize, f64, ValueId)> = t
                .weight_candidates()
                .filter_map(|v| {
                    let load = p.node(v.id.node()).weight;
                    (load > 0.0).then_some((s.position(v.id.node()), load, v.id))
                })
                .collect();
            candidates.sort_by_key(|&(pos, _, _)| pos);
            let reference = plan_edges(&candidates, idle);

            let total: f64 = plan.iter().map(|(_, e)| e.exposed_seconds).sum();
            let exposed_edges = plan.iter().filter(|(_, e)| !e.fully_hidden()).count();
            let (ref_total, ref_exposed) = exposure_stats(&reference);
            assert!(
                total <= ref_total + 1e-12,
                "{}: risk-aware plan exposes {total}, schedule order {ref_total}",
                g.name()
            );
            assert!(
                exposed_edges <= ref_exposed,
                "{}: risk-aware plan exposes {exposed_edges} edges, schedule order {ref_exposed}",
                g.name()
            );
            assert_eq!(plan.len(), reference.len());
        }
    }

    #[test]
    fn non_weight_values_are_skipped() {
        let g = zoo::alexnet();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        // Pass feature candidates: nothing should be planned.
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.feature_candidates());
        assert!(plan.is_empty());
    }
}
