//! Weight buffer prefetching and the prefetch dependence graph (§3.2).
//!
//! Weights are known ahead of time, so the buffer of a memory-bound
//! layer `C_k` can start filling while earlier layers execute. The pass
//! backtracks from `C_k` through the schedule until the accumulated
//! execution time covers the weight load time `T`, and emits a
//! *prefetch edge* `(C_k', C_k)`. The interval `[pos(C_k'), pos(C_k)]`
//! is the weight buffer's occupancy span; weights with disjoint spans
//! can share a buffer (the weight interference graph).

use crate::eval::{Evaluator, Residency};
use crate::liveness::{LiveInterval, Schedule};
use crate::value::{TensorValue, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One prefetch edge of the PDG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchEdge {
    /// Schedule position where the prefetch may begin (`C_k'`).
    pub start: usize,
    /// Schedule position of the consuming layer (`C_k`).
    pub end: usize,
    /// Weight load time `T` in seconds.
    pub load_seconds: f64,
    /// Portion of `T` that cannot be hidden because the graph does not
    /// reach back far enough (early layers); 0 when fully hidden.
    pub exposed_seconds: f64,
}

impl PrefetchEdge {
    /// The buffer occupancy span implied by this edge.
    #[must_use]
    pub fn interval(&self) -> LiveInterval {
        LiveInterval::new(self.start, self.end)
    }

    /// Whether the whole load is hidden behind earlier execution.
    #[must_use]
    pub fn fully_hidden(&self) -> bool {
        self.exposed_seconds <= 0.0
    }
}

/// The prefetch dependence graph: one edge per prefetched weight value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefetchPlan {
    edges: HashMap<ValueId, PrefetchEdge>,
}

impl PrefetchPlan {
    /// Builds the PDG for the given weight candidates.
    ///
    /// Backtracking accumulates the *current* per-node latencies from
    /// `evaluator` under `residency` (typically the state after feature
    /// buffer reuse), matching the paper's flow where prefetching runs
    /// after feature reuse.
    ///
    /// Unlike the paper's pass, hiding capacity is *contended*: a
    /// prefetch can only use the weight interface's idle time during
    /// each earlier layer (the layer's latency minus its own weight
    /// stream), and capacity consumed by one prefetch is gone for the
    /// next. Without this, stacking many large weights in a deep
    /// network would hide unbounded traffic behind the same window.
    #[must_use]
    pub fn build<'a, I>(
        evaluator: &Evaluator<'_>,
        schedule: &Schedule,
        residency: &Residency,
        weight_values: I,
    ) -> Self
    where
        I: IntoIterator<Item = &'a TensorValue>,
    {
        // Idle weight-interface seconds available during each step.
        let idle: Vec<f64> = (0..schedule.len())
            .map(|pos| {
                let node = schedule.at(pos);
                let lat = evaluator.node_latency(node, residency);
                let own_weight_stream = evaluator.profile().node(node).weight;
                (lat - own_weight_stream).max(0.0)
            })
            .collect();

        // `(consumer position, load seconds, id)` per candidate.
        let mut candidates: Vec<(usize, f64, ValueId)> = weight_values
            .into_iter()
            .filter_map(|v| match v.id {
                ValueId::Weight(node) => {
                    let load = evaluator.profile().node(node).weight;
                    (load > 0.0).then_some((schedule.position(node), load, v.id))
                }
                ValueId::Feature(_) => None,
            })
            .collect();

        // Two claim orders compete for the contended capacity:
        //  - schedule order: earlier layers claim the window closest to
        //    their use point first;
        //  - risk order: the largest loads — the ones whose exposure
        //    would cost the most — claim first, so a stack of small
        //    cheap-to-hide weights cannot starve a big one out of its
        //    window.
        // Neither dominates on every graph, so both are planned and the
        // risk plan wins only when it is a Pareto improvement: strictly
        // fewer exposed seconds AND no more exposed edges. The edge
        // count matters independently of the seconds — POL counts
        // *layers* that benefit, and a risk plan that shaves a few
        // microseconds of total exposure by spreading it across dozens
        // of previously-hidden weights guts that metric (seen on
        // ResNet-152, where the two totals tie to the last bits while
        // the risk plan exposes 76 layers to schedule order's 10).
        // Schedule order wins ties, preserving historical plans.
        candidates.sort_by_key(|&(pos, _, _)| pos);
        let in_schedule_order = plan_edges(&candidates, idle.clone());
        let mut by_risk = candidates;
        by_risk.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let risk_first = plan_edges(&by_risk, idle);
        let (risk_total, risk_exposed) = exposure_stats(&risk_first);
        let (sched_total, sched_exposed) = exposure_stats(&in_schedule_order);
        let edges = if risk_total < sched_total && risk_exposed <= sched_exposed {
            risk_first
        } else {
            in_schedule_order
        };
        Self { edges }
    }

    /// The edge for a weight value, if one was planned.
    #[must_use]
    pub fn edge(&self, id: ValueId) -> Option<&PrefetchEdge> {
        self.edges.get(&id)
    }

    /// Iterates over all planned edges.
    pub fn iter(&self) -> impl Iterator<Item = (&ValueId, &PrefetchEdge)> {
        self.edges.iter()
    }

    /// Number of planned prefetches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no prefetch was planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Occupancy spans for the weight interference graph.
    #[must_use]
    pub fn intervals(&self) -> HashMap<ValueId, LiveInterval> {
        self.edges
            .iter()
            .map(|(&id, e)| (id, e.interval()))
            .collect()
    }
}

/// Backtracks each candidate (in the order given) through the shared
/// idle-capacity vector and emits its prefetch edge.
fn plan_edges(
    candidates: &[(usize, f64, ValueId)],
    mut idle: Vec<f64>,
) -> HashMap<ValueId, PrefetchEdge> {
    let mut edges = HashMap::new();
    for &(end, load, id) in candidates {
        let mut needed = load;
        let mut start = end;
        while start > 0 && needed > 0.0 {
            start -= 1;
            let take = idle[start].min(needed);
            idle[start] -= take;
            needed -= take;
        }
        edges.insert(
            id,
            PrefetchEdge {
                start,
                end,
                load_seconds: load,
                exposed_seconds: needed.max(0.0),
            },
        );
    }
    edges
}

/// `(total exposed seconds, edges with any exposure)` of a planned edge
/// set. The total is summed in value-id order: the map's own iteration
/// order is seed-randomised, and float addition is order-sensitive —
/// summing in map order would make the risk-vs-schedule comparison flip
/// between runs on near-ties.
fn exposure_stats(edges: &HashMap<ValueId, PrefetchEdge>) -> (f64, usize) {
    let mut exposed: Vec<(ValueId, f64)> = edges
        .iter()
        .map(|(&id, e)| (id, e.exposed_seconds))
        .collect();
    exposed.sort_by_key(|&(id, _)| id);
    let total = exposed.iter().map(|&(_, e)| e).sum();
    let count = exposed.iter().filter(|&&(_, e)| e > 0.0).count();
    (total, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueTable;
    use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
    use lcmm_graph::{zoo, Graph};

    fn setup(graph: &Graph) -> (GraphProfile, ValueTable, Schedule) {
        let d = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let p = d.profile(graph);
        let t = ValueTable::build(graph, &p, Precision::Fix16);
        let s = Schedule::new(graph);
        (p, t, s)
    }

    #[test]
    fn edges_cover_weight_candidates() {
        let g = zoo::resnet152();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.weight_candidates());
        assert_eq!(plan.len(), t.weight_candidates().count());
    }

    #[test]
    fn edge_spans_cover_load_time() {
        let g = zoo::resnet152();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let r = Residency::new();
        let plan = PrefetchPlan::build(&ev, &s, &r, t.weight_candidates());
        for (&id, edge) in plan.iter() {
            assert!(edge.start <= edge.end);
            if edge.fully_hidden() {
                // Accumulated latency across the span must reach T.
                let span: f64 = (edge.start..edge.end)
                    .map(|k| ev.node_latency(s.at(k), &r))
                    .sum();
                assert!(
                    span + 1e-12 >= edge.load_seconds,
                    "{id}: span {span} < load {}",
                    edge.load_seconds
                );
            } else {
                assert_eq!(edge.start, 0, "exposure only at the graph head");
            }
        }
    }

    #[test]
    fn hiding_capacity_is_contended() {
        // Total hidden prefetch traffic can never exceed the total idle
        // weight-interface time of the whole schedule.
        let g = zoo::resnet152();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let r = Residency::new();
        let plan = PrefetchPlan::build(&ev, &s, &r, t.weight_candidates());
        let hidden: f64 = plan
            .iter()
            .map(|(_, e)| e.load_seconds - e.exposed_seconds)
            .sum();
        let idle: f64 = (0..s.len())
            .map(|pos| {
                let n = s.at(pos);
                (ev.node_latency(n, &r) - p.node(n).weight).max(0.0)
            })
            .sum();
        assert!(hidden <= idle + 1e-9, "hidden {hidden} > idle {idle}");
        // Early layers must see exposure before late ones run out: at
        // least one edge is exposed in this weight-heavy network at
        // 16-bit, and every exposed edge starts at the graph head or
        // follows from exhausted capacity.
        for (_, e) in plan.iter() {
            assert!(e.exposed_seconds <= e.load_seconds + 1e-12);
            assert!(e.start <= e.end);
        }
    }

    #[test]
    fn first_layer_weight_is_exposed() {
        // A weight used by the very first conv has no history to hide
        // behind; most of its load time must be exposed.
        let g = zoo::vgg16();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.weight_candidates());
        let first = g.node_by_name("conv1_1").unwrap().id();
        if let Some(edge) = plan.edge(ValueId::Weight(first)) {
            assert_eq!(edge.start, 0);
        }
    }

    #[test]
    fn intervals_match_edges() {
        let g = zoo::googlenet();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.weight_candidates());
        let intervals = plan.intervals();
        assert_eq!(intervals.len(), plan.len());
        for (id, edge) in plan.iter() {
            assert_eq!(intervals[id], edge.interval());
        }
    }

    #[test]
    fn risk_first_never_increases_total_exposure() {
        // The claim-order competition must be a pure win: whatever
        // plan `build` picks exposes at most what the historical
        // schedule-order planning exposed. Checked on a deep stack of
        // heavy FC/conv weights (vgg16) and on deep synthetic graphs,
        // where hundreds of layers contend for the same early windows.
        let graphs = [
            zoo::vgg16(),
            zoo::resnet152(),
            zoo::synthetic(512, 2, 11),
            zoo::synthetic(768, 4, 3),
        ];
        for g in graphs {
            let (p, t, s) = setup(&g);
            let ev = Evaluator::new(&g, &p);
            let r = Residency::new();
            let plan = PrefetchPlan::build(&ev, &s, &r, t.weight_candidates());

            // Reference: schedule-order claims against the same idle
            // capacity.
            let idle: Vec<f64> = (0..s.len())
                .map(|pos| {
                    let n = s.at(pos);
                    (ev.node_latency(n, &r) - p.node(n).weight).max(0.0)
                })
                .collect();
            let mut candidates: Vec<(usize, f64, ValueId)> = t
                .weight_candidates()
                .filter_map(|v| {
                    let load = p.node(v.id.node()).weight;
                    (load > 0.0).then_some((s.position(v.id.node()), load, v.id))
                })
                .collect();
            candidates.sort_by_key(|&(pos, _, _)| pos);
            let reference = plan_edges(&candidates, idle);

            let total: f64 = plan.iter().map(|(_, e)| e.exposed_seconds).sum();
            let exposed_edges = plan.iter().filter(|(_, e)| !e.fully_hidden()).count();
            let (ref_total, ref_exposed) = exposure_stats(&reference);
            assert!(
                total <= ref_total + 1e-12,
                "{}: risk-aware plan exposes {total}, schedule order {ref_total}",
                g.name()
            );
            assert!(
                exposed_edges <= ref_exposed,
                "{}: risk-aware plan exposes {exposed_edges} edges, schedule order {ref_exposed}",
                g.name()
            );
            assert_eq!(plan.len(), reference.len());
        }
    }

    #[test]
    fn non_weight_values_are_skipped() {
        let g = zoo::alexnet();
        let (p, t, s) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        // Pass feature candidates: nothing should be planned.
        let plan = PrefetchPlan::build(&ev, &s, &Residency::new(), t.feature_candidates());
        assert!(plan.is_empty());
    }
}
