//! Interference graphs and size-minimising buffer coloring (§3.1).
//!
//! Classic register allocation minimises the number of colors; LCMM
//! minimises total buffer *bytes* (the paper adapts \[6\] with exactly
//! this change). We use best-fit-decreasing: process values largest
//! first and put each into the compatible buffer where it wastes the
//! least capacity, opening a new buffer when none is compatible.
//!
//! # Scaling
//!
//! The paper's networks top out around 150 layers, where a quadratic
//! coloring is invisible; thousand-node graphs (see
//! `lcmm_graph::zoo::synthetic`) are not so forgiving. The production
//! paths therefore never scan buffer members pairwise:
//!
//! * [`InterferenceGraph::color`] indexes each open buffer by a sorted
//!   vector of its occupied intervals (disjoint by construction, so a
//!   placement probe is one binary search) plus a dense member bitset
//!   intersected against per-value false-edge bitset rows.
//! * [`InterferenceGraph::color_chaitin`] materialises the overlap
//!   adjacency once with an O(n log n + E) sweep line and runs the
//!   simplify phase on a bucket queue with incrementally maintained
//!   degrees — O((n + E) log n) instead of the O(n³) re-count.
//!
//! The original pairwise implementations survive as
//! [`InterferenceGraph::color_reference`] and
//! [`InterferenceGraph::color_chaitin_reference`]: they are the
//! executable specification. Property tests assert the fast paths
//! return byte-identical buffers, and the scaling bench measures the
//! gap.

use crate::liveness::LiveInterval;
use crate::value::ValueId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};

/// An interference graph over tensor values.
///
/// Edges come from lifespan overlap, plus any *false* edges added by the
/// buffer-splitting pass (§3.4) to force two compatible values apart.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterferenceGraph {
    nodes: Vec<(ValueId, u64)>,
    intervals: HashMap<ValueId, LiveInterval>,
    false_edges: HashSet<(ValueId, ValueId)>,
}

impl InterferenceGraph {
    /// Builds the graph from values with their sizes and lifespans.
    #[must_use]
    pub fn new(values: Vec<(ValueId, u64, LiveInterval)>) -> Self {
        let nodes = values.iter().map(|&(id, bytes, _)| (id, bytes)).collect();
        let intervals = values.into_iter().map(|(id, _, iv)| (id, iv)).collect();
        Self {
            nodes,
            intervals,
            false_edges: HashSet::new(),
        }
    }

    /// Adds a false lifespan-overlap edge (used by buffer splitting).
    pub fn add_false_edge(&mut self, a: ValueId, b: ValueId) {
        let key = if a < b { (a, b) } else { (b, a) };
        self.false_edges.insert(key);
    }

    /// Number of false edges currently in force.
    #[must_use]
    pub fn false_edge_count(&self) -> usize {
        self.false_edges.len()
    }

    /// Whether two values interfere (overlap or false edge).
    #[must_use]
    pub fn interferes(&self, a: ValueId, b: ValueId) -> bool {
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if self.false_edges.contains(&key) {
            return true;
        }
        match (self.intervals.get(&a), self.intervals.get(&b)) {
            (Some(x), Some(y)) => x.overlaps(y),
            _ => true, // unknown lifespan: be conservative
        }
    }

    /// The values in the graph.
    #[must_use]
    pub fn values(&self) -> &[(ValueId, u64)] {
        &self.nodes
    }

    /// Lifespan of a value, if known.
    #[must_use]
    pub fn interval(&self, id: ValueId) -> Option<LiveInterval> {
        self.intervals.get(&id).copied()
    }

    /// Colors the graph into virtual buffers minimising total bytes
    /// (best-fit decreasing).
    ///
    /// Placement probes run against the interval index, not the member
    /// lists; the result is byte-identical to
    /// [`InterferenceGraph::color_reference`] (property-tested).
    #[must_use]
    pub fn color(&self) -> Vec<VirtualBuffer> {
        let index = DenseIndex::build(self);
        let mut order: Vec<(ValueId, u64)> = self.nodes.clone();
        // Deterministic: sort by size descending, then id.
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut buffers: Vec<VirtualBuffer> = Vec::new();
        let mut open: Vec<OpenBuffer> = Vec::new();
        for (id, bytes) in order {
            let idx = index.index_of(id);
            let interval = index.intervals[idx as usize];
            let mut best: Option<(u64, usize)> = None;
            for (i, buf) in buffers.iter().enumerate() {
                if open[i].conflicts(idx, interval, &index) {
                    continue;
                }
                // Since we process in decreasing size order, the buffer
                // is at least as large as this value: waste = buf - v.
                let waste = buf.bytes - bytes.min(buf.bytes);
                if best.is_none_or(|(w, _)| waste < w) {
                    best = Some((waste, i));
                    if waste == 0 {
                        break; // nothing can beat a perfect fit
                    }
                }
            }
            match best {
                Some((_, i)) => {
                    buffers[i].members.push(id);
                    buffers[i].bytes = buffers[i].bytes.max(bytes);
                    open[i].insert(idx, interval);
                }
                None => {
                    buffers.push(VirtualBuffer {
                        members: vec![id],
                        bytes,
                    });
                    let mut o = OpenBuffer::new(index.words);
                    o.insert(idx, interval);
                    open.push(o);
                }
            }
        }
        buffers
    }

    /// The original pairwise best-fit-decreasing coloring, kept as the
    /// executable specification of [`InterferenceGraph::color`]. Every
    /// placement probe scans the buffer's members through
    /// [`InterferenceGraph::interferes`], so it is O(n·m) probes —
    /// fine at paper scale, quadratic on thousand-node graphs. Used by
    /// property tests and the scaling bench only.
    #[must_use]
    pub fn color_reference(&self) -> Vec<VirtualBuffer> {
        let mut order: Vec<(ValueId, u64)> = self.nodes.clone();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut buffers: Vec<VirtualBuffer> = Vec::new();
        for (id, bytes) in order {
            let mut best: Option<(u64, usize)> = None;
            for (i, buf) in buffers.iter().enumerate() {
                if buf.members.iter().any(|&m| self.interferes(id, m)) {
                    continue;
                }
                let waste = buf.bytes - bytes.min(buf.bytes);
                if best.is_none_or(|(w, _)| waste < w) {
                    best = Some((waste, i));
                }
            }
            match best {
                Some((_, i)) => {
                    buffers[i].members.push(id);
                    buffers[i].bytes = buffers[i].bytes.max(bytes);
                }
                None => buffers.push(VirtualBuffer {
                    members: vec![id],
                    bytes,
                }),
            }
        }
        buffers
    }
}

/// Dense, sorted view of an [`InterferenceGraph`] backing the fast
/// coloring paths. Values sorted by [`ValueId`] get dense indices (so
/// index order *is* id order, which the Chaitin tie-break relies on),
/// intervals live in a flat vector instead of a hash map, and false
/// edges become bitset rows.
struct DenseIndex {
    /// Value ids sorted ascending; position = dense index.
    ids: Vec<ValueId>,
    /// Lifespan per dense index (`None` = unknown, conservative).
    intervals: Vec<Option<LiveInterval>>,
    /// False-edge bitset rows, only for values that have false edges.
    false_rows: HashMap<u32, Box<[u64]>>,
    /// Words per member bitset.
    words: usize,
}

impl DenseIndex {
    fn build(g: &InterferenceGraph) -> Self {
        let mut ids: Vec<ValueId> = g.nodes.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        let intervals: Vec<Option<LiveInterval>> =
            ids.iter().map(|id| g.intervals.get(id).copied()).collect();
        let words = ids.len().div_ceil(64).max(1);
        let mut false_rows: HashMap<u32, Box<[u64]>> = HashMap::new();
        for &(a, b) in &g.false_edges {
            // Edges to values outside the graph cannot affect placement.
            let (Ok(ia), Ok(ib)) = (ids.binary_search(&a), ids.binary_search(&b)) else {
                continue;
            };
            let mut set = |row: usize, bit: usize| {
                false_rows
                    .entry(row as u32)
                    .or_insert_with(|| vec![0u64; words].into_boxed_slice())[bit / 64] |=
                    1 << (bit % 64);
            };
            set(ia, ib);
            set(ib, ia);
        }
        Self {
            ids,
            intervals,
            false_rows,
            words,
        }
    }

    fn index_of(&self, id: ValueId) -> u32 {
        self.ids
            .binary_search(&id)
            .expect("value came from this graph's node list") as u32
    }
}

/// Placement index of one buffer being grown by a coloring pass: the
/// occupied lifespan intervals (disjoint by construction, sorted by
/// start) and a member bitset for false-edge intersection.
struct OpenBuffer {
    occupied: Vec<LiveInterval>,
    members: Box<[u64]>,
    has_unknown: bool,
    nonempty: bool,
}

impl OpenBuffer {
    fn new(words: usize) -> Self {
        Self {
            occupied: Vec::new(),
            members: vec![0u64; words].into_boxed_slice(),
            has_unknown: false,
            nonempty: false,
        }
    }

    /// Whether placing the value would violate an interference edge —
    /// exactly `members.iter().any(|m| g.interferes(id, m))`, without
    /// the member scan.
    fn conflicts(&self, idx: u32, interval: Option<LiveInterval>, index: &DenseIndex) -> bool {
        // A member with unknown lifespan conservatively interferes with
        // everything (and vice versa for an unknown candidate).
        if self.has_unknown {
            return true;
        }
        match interval {
            None => {
                if self.nonempty {
                    return true;
                }
            }
            Some(iv) => {
                // Occupied intervals are disjoint, so sorted-by-start is
                // also sorted-by-end: the only possible overlap is the
                // first interval ending at or after our start.
                let p = self.occupied.partition_point(|o| o.end < iv.start);
                if p < self.occupied.len() && self.occupied[p].start <= iv.end {
                    return true;
                }
            }
        }
        if let Some(row) = index.false_rows.get(&idx) {
            if row.iter().zip(self.members.iter()).any(|(r, m)| r & m != 0) {
                return true;
            }
        }
        false
    }

    fn insert(&mut self, idx: u32, interval: Option<LiveInterval>) {
        match interval {
            None => self.has_unknown = true,
            Some(iv) => {
                let p = self.occupied.partition_point(|o| o.start < iv.start);
                self.occupied.insert(p, iv);
            }
        }
        self.members[(idx / 64) as usize] |= 1 << (idx % 64);
        self.nonempty = true;
    }
}

impl InterferenceGraph {
    /// Chaitin-style coloring: repeatedly remove the lowest-degree
    /// value from the graph (the classic simplify phase), then assign
    /// buffers in reverse removal order, still picking the compatible
    /// buffer with the least wasted bytes.
    ///
    /// Provided for comparison with the default best-fit-decreasing
    /// [`InterferenceGraph::color`]; the paper builds on register
    /// allocation \[4, 6\], where this ordering is the standard one.
    ///
    /// The simplify phase maintains degrees incrementally in a bucket
    /// queue over an adjacency built by one interval sweep — the peel
    /// order (min `(degree, id)` each round) and therefore the output
    /// match [`InterferenceGraph::color_chaitin_reference`] exactly.
    #[must_use]
    pub fn color_chaitin(&self) -> Vec<VirtualBuffer> {
        let index = DenseIndex::build(self);
        let n = index.ids.len();
        let adj = self.adjacency(&index);

        // Simplify: peel minimum-(degree, id) nodes off a bucket queue,
        // decrementing surviving neighbours' degrees as we go. Dense
        // indices are id-sorted, so the per-bucket BTreeSet minimum is
        // the smallest ValueId of that degree.
        let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
        let mut buckets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n.max(1)];
        for (i, &d) in degree.iter().enumerate() {
            buckets[d].insert(i as u32);
        }
        let mut removed = vec![false; n];
        let mut stack: Vec<ValueId> = Vec::with_capacity(n);
        let mut cur = 0usize;
        for _ in 0..n {
            while buckets[cur].is_empty() {
                cur += 1;
            }
            let i = *buckets[cur].iter().next().expect("bucket is nonempty");
            buckets[cur].remove(&i);
            removed[i as usize] = true;
            stack.push(index.ids[i as usize]);
            for &j in &adj[i as usize] {
                if removed[j as usize] {
                    continue;
                }
                let d = degree[j as usize];
                buckets[d].remove(&j);
                degree[j as usize] = d - 1;
                buckets[d - 1].insert(j);
                if d - 1 < cur {
                    cur = d - 1;
                }
            }
        }

        // Select: assign in reverse removal order with indexed probes.
        let mut sizes: Vec<u64> = vec![0; n];
        for &(id, bytes) in &self.nodes {
            sizes[index.index_of(id) as usize] = bytes;
        }
        let mut buffers: Vec<VirtualBuffer> = Vec::new();
        let mut open: Vec<OpenBuffer> = Vec::new();
        while let Some(id) = stack.pop() {
            let idx = index.index_of(id);
            let interval = index.intervals[idx as usize];
            let bytes = sizes[idx as usize];
            let mut best: Option<(u64, usize)> = None;
            for (i, buf) in buffers.iter().enumerate() {
                if open[i].conflicts(idx, interval, &index) {
                    continue;
                }
                // Waste if placed here: growth of the buffer plus the
                // slack left when this value is smaller than it.
                let new_size = buf.bytes.max(bytes);
                let waste = (new_size - buf.bytes) + (new_size - bytes);
                if best.is_none_or(|(w, _)| waste < w) {
                    best = Some((waste, i));
                    if waste == 0 {
                        break; // exact fit: no later buffer can win
                    }
                }
            }
            match best {
                Some((_, i)) => {
                    buffers[i].members.push(id);
                    buffers[i].bytes = buffers[i].bytes.max(bytes);
                    open[i].insert(idx, interval);
                }
                None => {
                    buffers.push(VirtualBuffer {
                        members: vec![id],
                        bytes,
                    });
                    let mut o = OpenBuffer::new(index.words);
                    o.insert(idx, interval);
                    open.push(o);
                }
            }
        }
        buffers
    }

    /// The original Chaitin coloring, kept as the executable
    /// specification of [`InterferenceGraph::color_chaitin`]: the
    /// simplify phase re-counts every remaining pair per peel (O(n³)
    /// interference probes). Used by property tests and the scaling
    /// bench only.
    #[must_use]
    pub fn color_chaitin_reference(&self) -> Vec<VirtualBuffer> {
        // Simplify: peel minimum-degree nodes.
        let mut remaining: Vec<ValueId> = self.nodes.iter().map(|&(id, _)| id).collect();
        let mut stack: Vec<ValueId> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let degree = remaining
                        .iter()
                        .filter(|&&o| o != v && self.interferes(v, o))
                        .count();
                    (i, (degree, v))
                })
                .min_by_key(|&(_, key)| key)
                .expect("remaining is nonempty");
            stack.push(remaining.swap_remove(idx));
        }
        // Select: assign in reverse removal order.
        let size_of: HashMap<ValueId, u64> = self.nodes.iter().copied().collect();
        let mut buffers: Vec<VirtualBuffer> = Vec::new();
        while let Some(id) = stack.pop() {
            let bytes = size_of[&id];
            let mut best: Option<(u64, usize)> = None;
            for (i, buf) in buffers.iter().enumerate() {
                if buf.members.iter().any(|&m| self.interferes(id, m)) {
                    continue;
                }
                let new_size = buf.bytes.max(bytes);
                let waste = (new_size - buf.bytes) + (new_size - bytes);
                if best.is_none_or(|(w, _)| waste < w) {
                    best = Some((waste, i));
                }
            }
            match best {
                Some((_, i)) => {
                    buffers[i].members.push(id);
                    buffers[i].bytes = buffers[i].bytes.max(bytes);
                }
                None => buffers.push(VirtualBuffer {
                    members: vec![id],
                    bytes,
                }),
            }
        }
        buffers
    }

    /// Materialises the full interference adjacency (overlap edges via
    /// an O(n log n + E) sweep line, plus unknown-lifespan values that
    /// conservatively touch everything, plus false edges) as dense
    /// neighbour lists. Each undirected edge appears once per endpoint.
    fn adjacency(&self, index: &DenseIndex) -> Vec<Vec<u32>> {
        let n = index.ids.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];

        // Overlap edges: sweep known intervals by start; the active set
        // (a min-heap by end) holds exactly the earlier-starting
        // intervals a new one can still overlap.
        let mut by_start: Vec<u32> = (0..n as u32)
            .filter(|&i| index.intervals[i as usize].is_some())
            .collect();
        by_start.sort_unstable_by_key(|&i| {
            let iv = index.intervals[i as usize].expect("filtered to known");
            (iv.start, i)
        });
        let mut active: BinaryHeap<Reverse<(usize, u32)>> = BinaryHeap::new();
        for &i in &by_start {
            let iv = index.intervals[i as usize].expect("filtered to known");
            while let Some(&Reverse((end, _))) = active.peek() {
                if end < iv.start {
                    active.pop();
                } else {
                    break;
                }
            }
            for &Reverse((_, j)) in &active {
                adj[i as usize].push(j);
                adj[j as usize].push(i);
            }
            active.push(Reverse((iv.end, i)));
        }

        // Unknown lifespans: conservatively adjacent to everything.
        let unknowns: Vec<u32> = (0..n as u32)
            .filter(|&i| index.intervals[i as usize].is_none())
            .collect();
        for (k, &u) in unknowns.iter().enumerate() {
            for v in 0..n as u32 {
                if v != u && index.intervals[v as usize].is_some() {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
            }
            for &u2 in &unknowns[k + 1..] {
                adj[u as usize].push(u2);
                adj[u2 as usize].push(u);
            }
        }

        // False edges not already implied by overlap or unknown-ness.
        for &(a, b) in &self.false_edges {
            let (Ok(ia), Ok(ib)) = (index.ids.binary_search(&a), index.ids.binary_search(&b))
            else {
                continue;
            };
            match (index.intervals[ia], index.intervals[ib]) {
                (Some(x), Some(y)) if !x.overlaps(&y) => {
                    adj[ia].push(ib as u32);
                    adj[ib].push(ia as u32);
                }
                _ => {} // already adjacent via overlap or unknown
            }
        }
        adj
    }
}

/// A virtual buffer: values that share one storage region, sized by the
/// largest member (paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualBuffer {
    /// Values mapped onto this buffer.
    pub members: Vec<ValueId>,
    /// Buffer size: the maximum member size.
    pub bytes: u64,
}

impl VirtualBuffer {
    /// Whether the buffer holds `id`.
    #[must_use]
    pub fn contains(&self, id: ValueId) -> bool {
        self.members.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::NodeId;

    fn f(i: usize) -> ValueId {
        ValueId::Feature(NodeId::new(i))
    }

    fn graph_of(spans: &[(usize, u64, usize, usize)]) -> InterferenceGraph {
        InterferenceGraph::new(
            spans
                .iter()
                .map(|&(i, bytes, s, e)| (f(i), bytes, LiveInterval::new(s, e)))
                .collect(),
        )
    }

    #[test]
    fn disjoint_values_share_one_buffer() {
        // Mirrors the paper's f2/f6 example: disjoint lifespans share,
        // buffer sized by the larger (0.2 MB in the paper's prose).
        let g = graph_of(&[(1, 200_000, 0, 2), (2, 100_000, 3, 5)]);
        let bufs = g.color();
        assert_eq!(bufs.len(), 1);
        assert_eq!(bufs[0].bytes, 200_000);
        assert_eq!(bufs[0].members.len(), 2);
    }

    #[test]
    fn overlapping_values_get_separate_buffers() {
        let g = graph_of(&[(1, 100, 0, 4), (2, 100, 2, 6)]);
        let bufs = g.color();
        assert_eq!(bufs.len(), 2);
    }

    #[test]
    fn false_edge_forces_split() {
        let mut g = graph_of(&[(1, 200, 0, 2), (2, 100, 3, 5)]);
        g.add_false_edge(f(1), f(2));
        assert_eq!(g.false_edge_count(), 1);
        let bufs = g.color();
        assert_eq!(bufs.len(), 2, "false edge must prevent sharing");
    }

    #[test]
    fn coloring_never_places_interfering_values_together() {
        // A chain with staggered overlaps.
        let spans: Vec<(usize, u64, usize, usize)> = (0..20)
            .map(|i| (i, (20 - i) as u64 * 10, i, i + 3))
            .collect();
        let g = graph_of(&spans);
        for buf in g.color() {
            for (ai, &a) in buf.members.iter().enumerate() {
                for &b in &buf.members[ai + 1..] {
                    assert!(
                        !g.interferes(a, b),
                        "{a} and {b} share a buffer but interfere"
                    );
                }
            }
        }
    }

    #[test]
    fn total_bytes_never_exceed_no_sharing() {
        let spans: Vec<(usize, u64, usize, usize)> = (0..12)
            .map(|i| (i, 100 + (i as u64 * 37) % 300, i * 2, i * 2 + 5))
            .collect();
        let g = graph_of(&spans);
        let shared: u64 = g.color().iter().map(|b| b.bytes).sum();
        let unshared: u64 = spans.iter().map(|s| s.1).sum();
        assert!(shared <= unshared);
    }

    #[test]
    fn best_fit_picks_tightest_buffer() {
        // v3 (50 B) fits both the 200 B and the 60 B buffer; it must
        // take the 60 B one.
        let g = graph_of(&[(1, 200, 0, 1), (2, 60, 0, 1), (3, 50, 4, 5)]);
        let bufs = g.color();
        let holder = bufs.iter().find(|b| b.contains(f(3))).unwrap();
        assert_eq!(holder.bytes, 60);
    }

    #[test]
    fn paper_figure5_shape() {
        // Fig. 5: six tensors {f1, f2, f4, f6, f7, f8} colored into 4
        // buffers. Reconstruct a comparable overlap structure: f2, f6
        // and f8 pairwise disjoint (share one buffer); f1, f4, f7
        // pairwise overlapping (one buffer each).
        let g = graph_of(&[
            (2, 200, 0, 1), // f2
            (6, 100, 2, 3), // f6 — shares with f2
            (8, 90, 5, 6),  // f8 — shares with f2/f6
            (1, 300, 0, 4), // f1
            (4, 250, 0, 4), // f4
            (7, 220, 1, 4), // f7
        ]);
        let bufs = g.color();
        assert_eq!(bufs.len(), 4, "six tensors, four buffers");
    }

    #[test]
    fn chaitin_coloring_is_also_conflict_free() {
        let spans: Vec<(usize, u64, usize, usize)> = (0..24)
            .map(|i| (i, 50 + (i as u64 * 91) % 400, i, i + 4))
            .collect();
        let g = graph_of(&spans);
        for buf in g.color_chaitin() {
            for (ai, &a) in buf.members.iter().enumerate() {
                for &b in &buf.members[ai + 1..] {
                    assert!(!g.interferes(a, b));
                }
            }
        }
    }

    #[test]
    fn best_fit_decreasing_not_worse_than_chaitin_on_real_graphs() {
        use crate::liveness::{feature_lifespans, Schedule};
        use crate::value::ValueTable;
        use lcmm_fpga::{AccelDesign, Device, Precision};
        for g in [
            lcmm_graph::zoo::googlenet(),
            lcmm_graph::zoo::inception_v4(),
        ] {
            let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
            let p = d.profile(&g);
            let t = ValueTable::build(&g, &p, Precision::Fix16);
            let s = Schedule::new(&g);
            let spans = feature_lifespans(&s, t.feature_candidates());
            let ig = InterferenceGraph::new(
                t.feature_candidates()
                    .map(|v| (v.id, v.bytes, spans[&v.id]))
                    .collect(),
            );
            let bfd: u64 = ig.color().iter().map(|b| b.bytes).sum();
            let chaitin: u64 = ig.color_chaitin().iter().map(|b| b.bytes).sum();
            // Size-aware BFD should not lose to degree-ordered Chaitin
            // on the byte objective (it may tie).
            assert!(
                bfd <= chaitin + chaitin / 10,
                "{}: bfd {bfd} vs chaitin {chaitin}",
                g.name()
            );
        }
    }

    #[test]
    fn unknown_interval_is_conservative() {
        let mut g = graph_of(&[(1, 100, 0, 1)]);
        g.nodes.push((f(9), 50));
        assert!(g.interferes(f(1), f(9)));
        assert!(!g.interferes(f(1), f(1)));
    }

    /// The indexed fast paths are drop-in replacements: byte-identical
    /// output, including member order inside each buffer.
    #[test]
    fn indexed_coloring_matches_reference_on_zoo_graphs() {
        use crate::liveness::{feature_lifespans, Schedule};
        use crate::value::ValueTable;
        use lcmm_fpga::{AccelDesign, Device, Precision};
        for g in [
            lcmm_graph::zoo::googlenet(),
            lcmm_graph::zoo::resnet50(),
            lcmm_graph::zoo::synthetic(160, 4, 7),
        ] {
            let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
            let p = d.profile(&g);
            let t = ValueTable::build(&g, &p, Precision::Fix16);
            let s = Schedule::new(&g);
            let spans = feature_lifespans(&s, t.feature_candidates());
            let mut ig = InterferenceGraph::new(
                t.feature_candidates()
                    .map(|v| (v.id, v.bytes, spans[&v.id]))
                    .collect(),
            );
            assert_eq!(ig.color(), ig.color_reference(), "{}", g.name());
            assert_eq!(
                ig.color_chaitin(),
                ig.color_chaitin_reference(),
                "{}",
                g.name()
            );
            // Force splits with false edges between same-buffer members
            // and re-check (mirrors what splitting::refine does).
            let bufs = ig.color();
            let mut added = 0;
            for buf in &bufs {
                if buf.members.len() >= 2 {
                    ig.add_false_edge(buf.members[0], buf.members[1]);
                    added += 1;
                    if added == 4 {
                        break;
                    }
                }
            }
            assert!(added > 0, "{}: zoo graph should share buffers", g.name());
            assert_eq!(
                ig.color(),
                ig.color_reference(),
                "{} + false edges",
                g.name()
            );
            assert_eq!(
                ig.color_chaitin(),
                ig.color_chaitin_reference(),
                "{} + false edges",
                g.name()
            );
        }
    }

    /// Unknown lifespans must behave identically in both paths too.
    #[test]
    fn indexed_coloring_matches_reference_with_unknown_intervals() {
        let mut g = graph_of(&[(1, 200, 0, 2), (2, 100, 3, 5), (3, 150, 6, 8)]);
        g.nodes.push((f(9), 50));
        g.nodes.push((f(10), 300));
        g.add_false_edge(f(2), f(3));
        assert_eq!(g.color(), g.color_reference());
        assert_eq!(g.color_chaitin(), g.color_chaitin_reference());
    }
}
