//! Interference graphs and size-minimising buffer coloring (§3.1).
//!
//! Classic register allocation minimises the number of colors; LCMM
//! minimises total buffer *bytes* (the paper adapts \[6\] with exactly
//! this change). We use best-fit-decreasing: process values largest
//! first and put each into the compatible buffer where it wastes the
//! least capacity, opening a new buffer when none is compatible.

use crate::liveness::LiveInterval;
use crate::value::ValueId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// An interference graph over tensor values.
///
/// Edges come from lifespan overlap, plus any *false* edges added by the
/// buffer-splitting pass (§3.4) to force two compatible values apart.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterferenceGraph {
    nodes: Vec<(ValueId, u64)>,
    intervals: HashMap<ValueId, LiveInterval>,
    false_edges: HashSet<(ValueId, ValueId)>,
}

impl InterferenceGraph {
    /// Builds the graph from values with their sizes and lifespans.
    #[must_use]
    pub fn new(values: Vec<(ValueId, u64, LiveInterval)>) -> Self {
        let nodes = values.iter().map(|&(id, bytes, _)| (id, bytes)).collect();
        let intervals = values.into_iter().map(|(id, _, iv)| (id, iv)).collect();
        Self {
            nodes,
            intervals,
            false_edges: HashSet::new(),
        }
    }

    /// Adds a false lifespan-overlap edge (used by buffer splitting).
    pub fn add_false_edge(&mut self, a: ValueId, b: ValueId) {
        let key = if a < b { (a, b) } else { (b, a) };
        self.false_edges.insert(key);
    }

    /// Number of false edges currently in force.
    #[must_use]
    pub fn false_edge_count(&self) -> usize {
        self.false_edges.len()
    }

    /// Whether two values interfere (overlap or false edge).
    #[must_use]
    pub fn interferes(&self, a: ValueId, b: ValueId) -> bool {
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if self.false_edges.contains(&key) {
            return true;
        }
        match (self.intervals.get(&a), self.intervals.get(&b)) {
            (Some(x), Some(y)) => x.overlaps(y),
            _ => true, // unknown lifespan: be conservative
        }
    }

    /// The values in the graph.
    #[must_use]
    pub fn values(&self) -> &[(ValueId, u64)] {
        &self.nodes
    }

    /// Lifespan of a value, if known.
    #[must_use]
    pub fn interval(&self, id: ValueId) -> Option<LiveInterval> {
        self.intervals.get(&id).copied()
    }

    /// Colors the graph into virtual buffers minimising total bytes
    /// (best-fit decreasing).
    #[must_use]
    pub fn color(&self) -> Vec<VirtualBuffer> {
        let mut order: Vec<(ValueId, u64)> = self.nodes.clone();
        // Deterministic: sort by size descending, then id.
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut buffers: Vec<VirtualBuffer> = Vec::new();
        for (id, bytes) in order {
            let mut best: Option<(u64, usize)> = None;
            for (i, buf) in buffers.iter().enumerate() {
                if buf.members.iter().any(|&m| self.interferes(id, m)) {
                    continue;
                }
                // Since we process in decreasing size order, the buffer
                // is at least as large as this value: waste = buf - v.
                let waste = buf.bytes - bytes.min(buf.bytes);
                if best.is_none_or(|(w, _)| waste < w) {
                    best = Some((waste, i));
                }
            }
            match best {
                Some((_, i)) => {
                    buffers[i].members.push(id);
                    buffers[i].bytes = buffers[i].bytes.max(bytes);
                }
                None => buffers.push(VirtualBuffer {
                    members: vec![id],
                    bytes,
                }),
            }
        }
        buffers
    }
}

impl InterferenceGraph {
    /// Chaitin-style coloring: repeatedly remove the lowest-degree
    /// value from the graph (the classic simplify phase), then assign
    /// buffers in reverse removal order, still picking the compatible
    /// buffer with the least wasted bytes.
    ///
    /// Provided for comparison with the default best-fit-decreasing
    /// [`InterferenceGraph::color`]; the paper builds on register
    /// allocation \[4, 6\], where this ordering is the standard one.
    #[must_use]
    pub fn color_chaitin(&self) -> Vec<VirtualBuffer> {
        // Simplify: peel minimum-degree nodes.
        let mut remaining: Vec<ValueId> = self.nodes.iter().map(|&(id, _)| id).collect();
        let mut stack: Vec<ValueId> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let degree = remaining
                        .iter()
                        .filter(|&&o| o != v && self.interferes(v, o))
                        .count();
                    (i, (degree, v))
                })
                .min_by_key(|&(_, key)| key)
                .expect("remaining is nonempty");
            stack.push(remaining.swap_remove(idx));
        }
        // Select: assign in reverse removal order.
        let size_of: HashMap<ValueId, u64> = self.nodes.iter().copied().collect();
        let mut buffers: Vec<VirtualBuffer> = Vec::new();
        while let Some(id) = stack.pop() {
            let bytes = size_of[&id];
            let mut best: Option<(u64, usize)> = None;
            for (i, buf) in buffers.iter().enumerate() {
                if buf.members.iter().any(|&m| self.interferes(id, m)) {
                    continue;
                }
                // Waste if placed here: growth of the buffer plus the
                // slack left when this value is smaller than it.
                let new_size = buf.bytes.max(bytes);
                let waste = (new_size - buf.bytes) + (new_size - bytes);
                if best.is_none_or(|(w, _)| waste < w) {
                    best = Some((waste, i));
                }
            }
            match best {
                Some((_, i)) => {
                    buffers[i].members.push(id);
                    buffers[i].bytes = buffers[i].bytes.max(bytes);
                }
                None => buffers.push(VirtualBuffer {
                    members: vec![id],
                    bytes,
                }),
            }
        }
        buffers
    }
}

/// A virtual buffer: values that share one storage region, sized by the
/// largest member (paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualBuffer {
    /// Values mapped onto this buffer.
    pub members: Vec<ValueId>,
    /// Buffer size: the maximum member size.
    pub bytes: u64,
}

impl VirtualBuffer {
    /// Whether the buffer holds `id`.
    #[must_use]
    pub fn contains(&self, id: ValueId) -> bool {
        self.members.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::NodeId;

    fn f(i: usize) -> ValueId {
        ValueId::Feature(NodeId::new(i))
    }

    fn graph_of(spans: &[(usize, u64, usize, usize)]) -> InterferenceGraph {
        InterferenceGraph::new(
            spans
                .iter()
                .map(|&(i, bytes, s, e)| (f(i), bytes, LiveInterval::new(s, e)))
                .collect(),
        )
    }

    #[test]
    fn disjoint_values_share_one_buffer() {
        // Mirrors the paper's f2/f6 example: disjoint lifespans share,
        // buffer sized by the larger (0.2 MB in the paper's prose).
        let g = graph_of(&[(1, 200_000, 0, 2), (2, 100_000, 3, 5)]);
        let bufs = g.color();
        assert_eq!(bufs.len(), 1);
        assert_eq!(bufs[0].bytes, 200_000);
        assert_eq!(bufs[0].members.len(), 2);
    }

    #[test]
    fn overlapping_values_get_separate_buffers() {
        let g = graph_of(&[(1, 100, 0, 4), (2, 100, 2, 6)]);
        let bufs = g.color();
        assert_eq!(bufs.len(), 2);
    }

    #[test]
    fn false_edge_forces_split() {
        let mut g = graph_of(&[(1, 200, 0, 2), (2, 100, 3, 5)]);
        g.add_false_edge(f(1), f(2));
        assert_eq!(g.false_edge_count(), 1);
        let bufs = g.color();
        assert_eq!(bufs.len(), 2, "false edge must prevent sharing");
    }

    #[test]
    fn coloring_never_places_interfering_values_together() {
        // A chain with staggered overlaps.
        let spans: Vec<(usize, u64, usize, usize)> = (0..20)
            .map(|i| (i, (20 - i) as u64 * 10, i, i + 3))
            .collect();
        let g = graph_of(&spans);
        for buf in g.color() {
            for (ai, &a) in buf.members.iter().enumerate() {
                for &b in &buf.members[ai + 1..] {
                    assert!(
                        !g.interferes(a, b),
                        "{a} and {b} share a buffer but interfere"
                    );
                }
            }
        }
    }

    #[test]
    fn total_bytes_never_exceed_no_sharing() {
        let spans: Vec<(usize, u64, usize, usize)> = (0..12)
            .map(|i| (i, 100 + (i as u64 * 37) % 300, i * 2, i * 2 + 5))
            .collect();
        let g = graph_of(&spans);
        let shared: u64 = g.color().iter().map(|b| b.bytes).sum();
        let unshared: u64 = spans.iter().map(|s| s.1).sum();
        assert!(shared <= unshared);
    }

    #[test]
    fn best_fit_picks_tightest_buffer() {
        // v3 (50 B) fits both the 200 B and the 60 B buffer; it must
        // take the 60 B one.
        let g = graph_of(&[(1, 200, 0, 1), (2, 60, 0, 1), (3, 50, 4, 5)]);
        let bufs = g.color();
        let holder = bufs.iter().find(|b| b.contains(f(3))).unwrap();
        assert_eq!(holder.bytes, 60);
    }

    #[test]
    fn paper_figure5_shape() {
        // Fig. 5: six tensors {f1, f2, f4, f6, f7, f8} colored into 4
        // buffers. Reconstruct a comparable overlap structure: f2, f6
        // and f8 pairwise disjoint (share one buffer); f1, f4, f7
        // pairwise overlapping (one buffer each).
        let g = graph_of(&[
            (2, 200, 0, 1), // f2
            (6, 100, 2, 3), // f6 — shares with f2
            (8, 90, 5, 6),  // f8 — shares with f2/f6
            (1, 300, 0, 4), // f1
            (4, 250, 0, 4), // f4
            (7, 220, 1, 4), // f7
        ]);
        let bufs = g.color();
        assert_eq!(bufs.len(), 4, "six tensors, four buffers");
    }

    #[test]
    fn chaitin_coloring_is_also_conflict_free() {
        let spans: Vec<(usize, u64, usize, usize)> = (0..24)
            .map(|i| (i, 50 + (i as u64 * 91) % 400, i, i + 4))
            .collect();
        let g = graph_of(&spans);
        for buf in g.color_chaitin() {
            for (ai, &a) in buf.members.iter().enumerate() {
                for &b in &buf.members[ai + 1..] {
                    assert!(!g.interferes(a, b));
                }
            }
        }
    }

    #[test]
    fn best_fit_decreasing_not_worse_than_chaitin_on_real_graphs() {
        use crate::liveness::{feature_lifespans, Schedule};
        use crate::value::ValueTable;
        use lcmm_fpga::{AccelDesign, Device, Precision};
        for g in [
            lcmm_graph::zoo::googlenet(),
            lcmm_graph::zoo::inception_v4(),
        ] {
            let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
            let p = d.profile(&g);
            let t = ValueTable::build(&g, &p, Precision::Fix16);
            let s = Schedule::new(&g);
            let spans = feature_lifespans(&s, t.feature_candidates());
            let ig = InterferenceGraph::new(
                t.feature_candidates()
                    .map(|v| (v.id, v.bytes, spans[&v.id]))
                    .collect(),
            );
            let bfd: u64 = ig.color().iter().map(|b| b.bytes).sum();
            let chaitin: u64 = ig.color_chaitin().iter().map(|b| b.bytes).sum();
            // Size-aware BFD should not lose to degree-ordered Chaitin
            // on the byte objective (it may tie).
            assert!(
                bfd <= chaitin + chaitin / 10,
                "{}: bfd {bfd} vs chaitin {chaitin}",
                g.name()
            );
        }
    }

    #[test]
    fn unknown_interval_is_conservative() {
        let mut g = graph_of(&[(1, 100, 0, 1)]);
        g.nodes.push((f(9), 50));
        assert!(g.interferes(f(1), f(9)));
        assert!(!g.interferes(f(1), f(1)));
    }
}
