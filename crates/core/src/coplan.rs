//! Per-tenant analysis for multi-tenant co-planning.
//!
//! Co-planning N networks on one device needs, for each tenant, the
//! DNNK *value curve* — the best achievable latency reduction as a
//! function of the SRAM capacity granted to that tenant. Because the
//! tenants' virtual buffers never touch each other's ops, the joint
//! knapsack over the union of all buffers decomposes exactly into one
//! curve per tenant plus a second-level DP over the capacity split (the
//! `lcmm_multi` crate runs that DP); per-tenant pivot compensation is
//! preserved because each curve is produced by the unmodified DNNK DP.
//!
//! The curve is computed from passes 1–2 (feature lifespans + prefetch
//! spans) and the *initial* buffer coloring — splitting refinement is
//! deliberately left to the per-tenant finalisation runs, which re-run
//! the full pipeline with [`crate::LcmmOptions::tensor_budget`] set to
//! the chosen share.

use crate::alloc::{dnnk, AllocProblem};
use crate::eval::Evaluator;
use crate::pipeline::{build_front_end, FrontEnd, LcmmOptions};
use crate::prefetch::StreamingMode;
use lcmm_fpga::{AccelDesign, GraphProfile};
use lcmm_graph::Graph;

/// SRAM capacity quantum shared with the DNNK DP (one URAM block).
pub use crate::alloc::CAPACITY_UNIT_BYTES;

/// A tenant's DNNK value curve over quantised capacity.
#[derive(Debug, Clone)]
pub struct GainCurve {
    values: Vec<f64>,
}

impl GainCurve {
    /// Builds a curve from raw values (entry `u` = gain at `u` units).
    /// Useful for tests and for synthesising curves outside the DP.
    #[must_use]
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "a curve needs at least the 0 entry");
        Self { values }
    }

    /// Number of capacity units the curve covers (entries are `0..=units`).
    #[must_use]
    pub fn units(&self) -> usize {
        self.values.len().saturating_sub(1)
    }

    /// Best latency reduction (seconds) at `units` capacity units,
    /// saturating at the curve's last entry.
    #[must_use]
    pub fn value_at(&self, units: usize) -> f64 {
        let i = units.min(self.values.len().saturating_sub(1));
        self.values[i]
    }

    /// The raw curve, entry `u` = best gain with `u` units.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Builds the DNNK value curve for one tenant against a capacity pool
/// of `pool_bytes`.
///
/// `design` must be the tenant's *derated* LCMM design (the one the
/// finalisation run will use) and `profile` its latency table for
/// `graph`; `options` controls which of passes 1–2 contribute buffers,
/// exactly as in the full pipeline. The curve always uses the DNNK DP
/// regardless of `options.allocator` — it is a split-search estimate,
/// and the finalisation runs apply the configured allocator.
#[must_use]
pub fn tenant_gain_curve(
    graph: &Graph,
    profile: &GraphProfile,
    design: &AccelDesign,
    options: &LcmmOptions,
    pool_bytes: u64,
) -> GainCurve {
    // `profile` must be the tenant's unfused latency table: fusion is
    // derived here (exactly as the pipeline and `PlanArtifacts` do), so
    // fused tenants contribute fusion-aware gain curves to the joint
    // capacity DP without the caller doing anything.
    let prepared = crate::fusion::prepare(graph, profile, design, options);
    let (fusion, effective): (crate::fusion::FusionPlan, &GraphProfile) = match &prepared {
        Some((plan, fused)) => (plan.clone(), fused),
        None => (crate::fusion::FusionPlan::default(), profile),
    };
    let evaluator = Evaluator::new(graph, effective);
    let front = build_front_end(graph, effective, &evaluator, design, options, &fusion, None)
        .expect("the front end is infallible without a cancel token");
    curve_from_front_end(&evaluator, &front, options.weight_streaming, pool_bytes)
}

/// Initial buffer coloring of prebuilt pass 1–2 artifacts, as in
/// `splitting::refine` before any split. Pool-independent, so
/// [`crate::delta::PlanArtifacts`] computes it once per artifact set.
pub(crate) fn initial_coloring(front: &FrontEnd) -> Vec<crate::interference::VirtualBuffer> {
    let mut buffers = front.feature_graph.color();
    buffers.extend(front.weight_graph.color());
    buffers
}

/// Builds the DNNK value curve from prebuilt pass 1–2 artifacts.
/// [`tenant_gain_curve`] and the artifact replays of [`crate::delta`]
/// both route through here, so the two are bit-identical by
/// construction.
pub(crate) fn curve_from_front_end(
    evaluator: &Evaluator<'_>,
    front: &FrontEnd,
    streaming: StreamingMode,
    pool_bytes: u64,
) -> GainCurve {
    let buffers = initial_coloring(front);
    curve_from_buffers(evaluator, front, &buffers, streaming, pool_bytes)
}

/// The DNNK value curve of an already-colored buffer set.
pub(crate) fn curve_from_buffers(
    evaluator: &Evaluator<'_>,
    front: &FrontEnd,
    buffers: &[crate::interference::VirtualBuffer],
    streaming: StreamingMode,
    pool_bytes: u64,
) -> GainCurve {
    let problem =
        AllocProblem::with_streaming(evaluator, buffers, pool_bytes, &front.prefetch, streaming);
    GainCurve {
        values: dnnk::gain_curve(&problem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use lcmm_fpga::{Device, Precision};
    use lcmm_graph::zoo;

    #[test]
    fn curve_matches_pipeline_budget_semantics() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let base = AccelDesign::explore(&g, &device, Precision::Fix16);
        let pipeline = Pipeline::new(LcmmOptions::default());
        let design = pipeline.lcmm_design(base);
        let profile = design.profile(&g);
        let budget = design.tensor_sram_budget();
        let curve = tenant_gain_curve(&g, &profile, &design, &LcmmOptions::default(), budget);
        assert_eq!(curve.units(), (budget / CAPACITY_UNIT_BYTES) as usize);
        assert_eq!(curve.value_at(0), 0.0);
        assert!(curve.value_at(curve.units()) > 0.0);
        // Saturation beyond the pool.
        assert_eq!(
            curve.value_at(curve.units() + 10),
            curve.value_at(curve.units())
        );
    }

    #[test]
    fn disabled_passes_flatten_the_curve() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let base = AccelDesign::explore(&g, &device, Precision::Fix16);
        let opts = LcmmOptions::default()
            .with_feature_reuse(false)
            .with_weight_prefetch(false);
        let pipeline = Pipeline::new(opts);
        let design = pipeline.lcmm_design(base);
        let profile = design.profile(&g);
        let curve = tenant_gain_curve(&g, &profile, &design, &opts, 16 << 20);
        assert!(curve.values().iter().all(|&v| v == 0.0));
    }
}
