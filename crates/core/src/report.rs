//! Serializable experiment records.
//!
//! The CLI and benches print text tables; these structs are the
//! machine-readable form (`--json`) so downstream tooling can consume
//! the reproduction's numbers without scraping.

use crate::pipeline::compare;
use crate::{LcmmResult, UmmBaseline};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};

/// One side (UMM or LCMM) of a Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignRecord {
    /// End-to-end latency, seconds.
    pub latency: f64,
    /// Achieved throughput, ops/s.
    pub throughput_ops: f64,
    /// Clock, Hz.
    pub frequency_hz: f64,
    /// DSP utilisation in [0, 1].
    pub dsp_util: f64,
    /// CLB utilisation in [0, 1].
    pub clb_util: f64,
    /// BRAM utilisation in [0, 1].
    pub bram_util: f64,
    /// URAM utilisation in [0, 1].
    pub uram_util: f64,
    /// Combined SRAM utilisation in [0, 1].
    pub sram_util: f64,
}

impl DesignRecord {
    fn from_umm(umm: &UmmBaseline, device: &Device) -> Self {
        Self {
            latency: umm.latency,
            throughput_ops: umm.throughput_ops(),
            frequency_hz: umm.design.freq_hz,
            dsp_util: umm.resources.dsp_util,
            clb_util: umm.resources.clb_util,
            bram_util: umm.resources.bram_util,
            uram_util: umm.resources.uram_util,
            sram_util: umm.resources.sram_util(device),
        }
    }

    fn from_lcmm(lcmm: &LcmmResult, device: &Device) -> Self {
        Self {
            latency: lcmm.latency,
            throughput_ops: lcmm.throughput_ops(),
            frequency_hz: lcmm.design.freq_hz,
            dsp_util: lcmm.resources.dsp_util,
            clb_util: lcmm.resources.clb_util,
            bram_util: lcmm.resources.bram_util,
            uram_util: lcmm.resources.uram_util,
            sram_util: lcmm.resources.sram_util(device),
        }
    }
}

/// One benchmark × precision record: everything Table 1 and Table 2
/// print about the pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRecord {
    /// Network name.
    pub model: String,
    /// Precision label (`8-bit`, ...).
    pub precision: String,
    /// The UMM baseline.
    pub umm: DesignRecord,
    /// The LCMM design.
    pub lcmm: DesignRecord,
    /// `umm.latency / lcmm.latency`.
    pub speedup: f64,
    /// Memory-bound layer count (UMM profile).
    pub memory_bound_layers: usize,
    /// POL: fraction of memory-bound layers that benefit.
    pub pol: f64,
    /// Number of allocated tensor buffers.
    pub buffers: usize,
    /// Total allocated tensor-buffer bytes.
    pub buffer_bytes: u64,
    /// Accepted buffer-splitting iterations.
    pub split_iterations: usize,
}

/// Runs the comparison and collects the record.
#[must_use]
pub fn comparison_record(graph: &Graph, device: &Device, precision: Precision) -> ComparisonRecord {
    let (umm, lcmm) = compare(graph, device, precision);
    record_from_comparison(graph, device, precision, &umm, &lcmm)
}

/// Collects the record from an already-evaluated pair — the harness
/// path, which reuses memoized baselines/results instead of recomputing
/// them per record.
#[must_use]
pub fn record_from_comparison(
    graph: &Graph,
    device: &Device,
    precision: Precision,
    umm: &UmmBaseline,
    lcmm: &LcmmResult,
) -> ComparisonRecord {
    ComparisonRecord {
        model: graph.name().to_string(),
        precision: precision.label().to_string(),
        umm: DesignRecord::from_umm(umm, device),
        lcmm: DesignRecord::from_lcmm(lcmm, device),
        speedup: lcmm.speedup_over(umm.latency),
        memory_bound_layers: lcmm.memory_bound_layers,
        pol: lcmm.pol(),
        buffers: lcmm.allocated_buffer_sizes().len(),
        buffer_bytes: lcmm.allocated_buffer_sizes().iter().sum(),
        split_iterations: lcmm.split_iterations,
    }
}

/// The full Table 1/2 dataset: one record per benchmark × precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// All records, in suite × precision order.
    pub records: Vec<ComparisonRecord>,
}

impl SuiteReport {
    /// Runs the whole benchmark suite.
    #[must_use]
    pub fn run(device: &Device) -> Self {
        let mut records = Vec::new();
        for graph in lcmm_graph::zoo::benchmark_suite() {
            for precision in Precision::ALL {
                records.push(comparison_record(&graph, device, precision));
            }
        }
        Self { records }
    }

    /// Geometric-free average speedup (arithmetic mean, as the paper
    /// reports it).
    #[must_use]
    pub fn average_speedup(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.speedup).sum::<f64>() / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn record_is_consistent() {
        let g = zoo::googlenet();
        let device = Device::vu9p();
        let r = comparison_record(&g, &device, Precision::Fix16);
        assert_eq!(r.model, "googlenet");
        assert!((r.speedup - r.umm.latency / r.lcmm.latency).abs() < 1e-12);
        assert!(r.pol >= 0.0 && r.pol <= 1.0);
        assert!(r.buffers > 0);
        assert!(r.buffer_bytes > 0);
    }

    #[test]
    fn record_round_trips_through_json() {
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let r = comparison_record(&g, &device, Precision::Fix8);
        let json = serde_json::to_string(&r).expect("serialises");
        let back: ComparisonRecord = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, r);
    }
}
