//! Buffer splitting (§3.4): undoing harmful buffer sharing.
//!
//! Coloring fuses disjoint-lifespan tensors into one virtual buffer
//! sized by the largest member. If DNNK then spills that buffer, *every*
//! member goes off-chip — including small tensors with large latency
//! value that would easily have fit on their own ("misspilling"). The
//! splitting pass adds a *false* lifespan-overlap edge inside the worst
//! spilled buffer, forcing a re-color to separate the size-defining
//! tensor from a valuable small member, and retries allocation. Each
//! iteration is kept only if end-to-end latency improves.

use crate::alloc::{AllocOutcome, AllocProblem};
use crate::eval::{Evaluator, Residency};
use crate::interference::{InterferenceGraph, VirtualBuffer};
use crate::prefetch::{PrefetchPlan, StreamingMode};
use crate::profiling;
use crate::value::{ValueId, ValueKind};
use lcmm_fpga::Precision;
use std::time::Instant;

/// Configuration of the splitting loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitConfig {
    /// Maximum accepted split iterations.
    pub max_iterations: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self { max_iterations: 8 }
    }
}

/// Result of the refinement loop.
#[derive(Debug)]
pub struct SplitResult {
    /// The best allocation found.
    pub outcome: AllocOutcome,
    /// The buffer set matching `outcome.chosen`.
    pub buffers: Vec<VirtualBuffer>,
    /// Number of accepted split iterations.
    pub iterations: usize,
}

/// The allocator callback used by the refinement loop.
pub type AllocatorFn = fn(&AllocProblem<'_>) -> AllocOutcome;

/// Runs allocation, then iteratively splits misspilled buffers while it
/// helps. `precision` sizes the split candidates (bytes, not element
/// counts) so the decisions match the allocator's real buffer sizes.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn refine(
    evaluator: &Evaluator<'_>,
    precision: Precision,
    budget_bytes: u64,
    plan: &PrefetchPlan,
    streaming: StreamingMode,
    mut feature_graph: InterferenceGraph,
    mut weight_graph: InterferenceGraph,
    allocator: AllocatorFn,
    config: SplitConfig,
) -> SplitResult {
    let color_all = |fg: &InterferenceGraph, wg: &InterferenceGraph| -> Vec<VirtualBuffer> {
        let t = Instant::now();
        let mut bufs = fg.color();
        bufs.extend(wg.color());
        profiling::add_coloring_seconds(t.elapsed().as_secs_f64());
        bufs
    };

    let mut buffers = color_all(&feature_graph, &weight_graph);
    let mut best = {
        let problem =
            AllocProblem::with_streaming(evaluator, &buffers, budget_bytes, plan, streaming);
        profiling::count_allocator_invocation();
        allocator(&problem)
    };
    let mut iterations = 0;

    while iterations < config.max_iterations {
        let Some((a, b)) = propose_split(evaluator, precision, &buffers, &best) else {
            break;
        };
        // Tentatively add the false edge in the owning graph.
        let mut fg = feature_graph.clone();
        let mut wg = weight_graph.clone();
        match a.kind() {
            ValueKind::Feature => fg.add_false_edge(a, b),
            ValueKind::Weight => wg.add_false_edge(a, b),
        }
        let new_buffers = color_all(&fg, &wg);
        let candidate = {
            let problem = AllocProblem::with_streaming(
                evaluator,
                &new_buffers,
                budget_bytes,
                plan,
                streaming,
            );
            profiling::count_allocator_invocation();
            allocator(&problem)
        };
        if candidate.latency < best.latency {
            profiling::count_split_accepted();
            best = candidate;
            buffers = new_buffers;
            feature_graph = fg;
            weight_graph = wg;
            iterations += 1;
        } else {
            profiling::count_split_rejected();
            break;
        }
    }

    SplitResult {
        outcome: best,
        buffers,
        iterations,
    }
}

/// Picks the next false edge to try: in the largest spilled multi-member
/// buffer, separate the size-defining member from the co-member whose
/// standalone latency value is largest (the misspilling victim).
#[must_use]
pub fn propose_split(
    evaluator: &Evaluator<'_>,
    precision: Precision,
    buffers: &[VirtualBuffer],
    outcome: &AllocOutcome,
) -> Option<(ValueId, ValueId)> {
    let mut empty = Residency::new();
    let spilled = buffers
        .iter()
        .zip(&outcome.chosen)
        .filter(|(b, &c)| !c && b.members.len() >= 2)
        .map(|(b, _)| b)
        .max_by_key(|b| b.bytes)?;
    // The size-defining tensor.
    let sizes: Vec<u64> = spilled
        .members
        .iter()
        .map(|&m| member_bytes(evaluator, precision, m))
        .collect();
    let (big_idx, _) = sizes.iter().enumerate().max_by_key(|(_, &s)| s)?;
    let big = spilled.members[big_idx];
    // The most valuable other member.
    let victim = spilled
        .members
        .iter()
        .copied()
        .filter(|&m| m != big)
        .max_by(|&a, &b| {
            let ga = evaluator.gain_of(&mut empty, &[a]);
            let gb = evaluator.gain_of(&mut empty, &[b]);
            // Total, not `partial_cmp(..).expect(..)`: a degenerate
            // profile must degrade the split choice, not panic the
            // whole pipeline.
            ga.total_cmp(&gb)
        })?;
    Some((big, victim))
}

/// Byte size of one buffer member, comparable to `VirtualBuffer::bytes`
/// (element counts alone would under-weigh wide-precision tensors).
fn member_bytes(evaluator: &Evaluator<'_>, precision: Precision, id: ValueId) -> u64 {
    let graph = evaluator.graph();
    let elems = match id {
        ValueId::Feature(n) => graph.node(n).output_shape().elems(),
        ValueId::Weight(n) => graph.node_weight_elems(n),
    };
    elems * precision.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{dnnk, CAPACITY_UNIT_BYTES};
    use crate::liveness::LiveInterval;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::{ConvParams, FeatureShape, Graph, GraphBuilder};

    /// A graph engineered to missplill: a huge early tensor shares a
    /// lifespan-disjoint buffer with a small but valuable late tensor.
    fn misspill_graph() -> Graph {
        let mut b = GraphBuilder::new("misspill");
        let x = b.input(FeatureShape::new(256, 56, 56)).expect("input");
        let c0 = b
            .conv("big", x, ConvParams::square(512, 3, 1, 1))
            .expect("big");
        let c1 = b
            .conv("mid", c0, ConvParams::square(64, 3, 2, 1))
            .expect("mid");
        let c2 = b
            .conv("small1", c1, ConvParams::square(512, 3, 2, 1))
            .expect("s1");
        let c3 = b
            .conv("small2", c2, ConvParams::square(512, 3, 1, 1))
            .expect("s2");
        b.finish(c3).expect("valid")
    }

    #[test]
    fn refine_never_worse_than_plain_allocation() {
        let g = misspill_graph();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Float32);
        let p = d.profile(&g);
        let ev = Evaluator::new(&g, &p);

        // Build feature interference where the big early tensor and a
        // small late tensor share (disjoint lifespans).
        let ids: Vec<ValueId> = g.conv_layers().map(|n| ValueId::Feature(n.id())).collect();
        let sizes: Vec<u64> = g
            .conv_layers()
            .map(|n| n.output_shape().elems() * 4)
            .collect();
        let fg = InterferenceGraph::new(vec![
            (ids[0], sizes[0], LiveInterval::new(0, 1)),
            (ids[1], sizes[1], LiveInterval::new(1, 2)),
            (ids[2], sizes[2], LiveInterval::new(2, 3)),
            (ids[3], sizes[3], LiveInterval::new(3, 4)),
        ]);
        let wg = InterferenceGraph::new(Vec::new());
        let plan = PrefetchPlan::default();
        // A budget that can hold the small tensors but not the big one.
        let budget = 40 * CAPACITY_UNIT_BYTES;

        let plain = {
            let bufs = {
                let mut b = fg.color();
                b.extend(wg.color());
                b
            };
            let problem = AllocProblem::new(&ev, &bufs, budget, &plan);
            dnnk::allocate(&problem)
        };
        let refined = refine(
            &ev,
            Precision::Float32,
            budget,
            &plan,
            StreamingMode::Off,
            fg,
            wg,
            dnnk::allocate,
            SplitConfig::default(),
        );
        assert!(refined.outcome.latency <= plain.latency + 1e-15);
    }

    #[test]
    fn propose_split_targets_largest_spilled_buffer() {
        let g = misspill_graph();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Float32);
        let p = d.profile(&g);
        let ev = Evaluator::new(&g, &p);
        let ids: Vec<ValueId> = g.conv_layers().map(|n| ValueId::Feature(n.id())).collect();
        let buffers = vec![VirtualBuffer {
            members: vec![ids[0], ids[3]],
            bytes: g.node(ids[0].node()).output_shape().elems() * 4,
        }];
        let outcome = {
            let plan = PrefetchPlan::default();
            let problem = AllocProblem::new(&ev, &buffers, 0, &plan);
            AllocOutcome::from_chosen(&problem, vec![false])
        };
        let (big, victim) =
            propose_split(&ev, Precision::Float32, &buffers, &outcome).expect("split proposed");
        assert_eq!(big, ids[0]);
        assert_eq!(victim, ids[3]);
    }

    /// Regression test for the element-count bug: `member_bytes` used to
    /// return raw element counts, so the "size-defining member" was not
    /// measured in the same unit as `VirtualBuffer::bytes`. After the
    /// fix, sizes scale with the precision byte-width and the proposal
    /// is stable across precisions.
    #[test]
    fn size_defining_member_is_stable_across_precisions() {
        let g = misspill_graph();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Float32);
        let p = d.profile(&g);
        let ev = Evaluator::new(&g, &p);
        let ids: Vec<ValueId> = g.conv_layers().map(|n| ValueId::Feature(n.id())).collect();
        let big_elems = g.node(ids[0].node()).output_shape().elems();
        let buffers = vec![VirtualBuffer {
            members: vec![ids[0], ids[3]],
            bytes: big_elems * 4,
        }];
        let plan = PrefetchPlan::default();
        let problem = AllocProblem::new(&ev, &buffers, 0, &plan);
        let outcome = AllocOutcome::from_chosen(&problem, vec![false]);
        let mut picks = Vec::new();
        for precision in [Precision::Fix8, Precision::Float32] {
            let (big, victim) =
                propose_split(&ev, precision, &buffers, &outcome).expect("split proposed");
            // The proposed sizes now live in the buffer's unit: the
            // size-defining member at this precision accounts for the
            // buffer's byte size exactly at Float32 (4 B/elem).
            if precision == Precision::Float32 {
                assert_eq!(big_elems * precision.bytes(), buffers[0].bytes);
            }
            picks.push((big, victim));
        }
        assert_eq!(picks[0], picks[1], "precision must not change the split");
        assert_eq!(picks[0].0, ids[0]);
    }

    #[test]
    fn no_split_when_everything_allocated() {
        let g = misspill_graph();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Float32);
        let p = d.profile(&g);
        let ev = Evaluator::new(&g, &p);
        let buffers = vec![VirtualBuffer {
            members: vec![ValueId::Feature(g.node_by_name("big").unwrap().id())],
            bytes: 100,
        }];
        let plan = PrefetchPlan::default();
        let problem = AllocProblem::new(&ev, &buffers, 1 << 30, &plan);
        let outcome = AllocOutcome::from_chosen(&problem, vec![true]);
        assert!(propose_split(&ev, Precision::Float32, &buffers, &outcome).is_none());
    }

    #[test]
    fn default_config_caps_iterations() {
        assert_eq!(SplitConfig::default().max_iterations, 8);
    }
}
