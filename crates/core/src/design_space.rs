//! The block-level residency design space (paper Fig. 2(b)).
//!
//! Before LCMM, the natural granularity of "put this on chip" decisions
//! is a network block (an inception module, a residual unit): for each
//! block, either all its tensors get on-chip buffers or none do.
//! Inception-v4's 14 inception blocks span a 2^14 = 16384-point space;
//! sweeping it shows that more SRAM does not monotonically buy more
//! performance — the observation that motivates DNNK.

use crate::eval::{Evaluator, Residency};
use crate::value::{ValueId, ValueTable};
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};

/// One evaluated point of the block design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Bit `b` set ⇔ block `b`'s tensors are on chip.
    pub mask: u32,
    /// Naive SRAM consumption (no buffer sharing), bytes.
    pub sram_bytes: u64,
    /// End-to-end latency, seconds.
    pub latency: f64,
}

impl DesignPoint {
    /// Throughput in ops/s given the network's op count.
    #[must_use]
    pub fn throughput_ops(&self, total_ops: u64) -> f64 {
        total_ops as f64 / self.latency
    }
}

/// The swept design space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignSpace {
    /// The block labels, in bit order.
    pub blocks: Vec<String>,
    /// All 2^n evaluated points.
    pub points: Vec<DesignPoint>,
    /// Total operations of one inference (2 × MACs).
    pub total_ops: u64,
}

/// Sweeps every on/off combination of the given blocks.
///
/// # Panics
///
/// Panics if more than 20 blocks are passed (2^20 evaluations is the
/// cap for an exhaustive sweep).
#[must_use]
pub fn sweep(
    graph: &Graph,
    evaluator: &Evaluator<'_>,
    values: &ValueTable,
    blocks: &[String],
) -> DesignSpace {
    assert!(
        blocks.len() <= 20,
        "exhaustive sweep capped at 20 blocks, got {}",
        blocks.len()
    );
    // Per-block value lists and naive sizes.
    let mut block_values: Vec<Vec<ValueId>> = Vec::with_capacity(blocks.len());
    let mut block_bytes: Vec<u64> = Vec::with_capacity(blocks.len());
    for block in blocks {
        let mut ids = Vec::new();
        let mut bytes = 0;
        for node in graph.block_nodes(block) {
            for id in [ValueId::Feature(node), ValueId::Weight(node)] {
                if let Some(v) = values.get(id) {
                    if v.allocatable {
                        ids.push(id);
                        bytes += v.bytes;
                    }
                }
            }
        }
        block_values.push(ids);
        block_bytes.push(bytes);
    }

    let n = blocks.len();
    let mut points = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let mut residency = Residency::new();
        let mut sram = 0;
        for b in 0..n {
            if mask >> b & 1 == 1 {
                residency.extend(block_values[b].iter().copied());
                sram += block_bytes[b];
            }
        }
        points.push(DesignPoint {
            mask,
            sram_bytes: sram,
            latency: evaluator.total_latency(&residency),
        });
    }
    DesignSpace {
        blocks: blocks.to_vec(),
        points,
        total_ops: 2 * graph.total_macs(),
    }
}

/// The inception blocks of a graph (labels starting `inception_`), the
/// default sweep dimensions for Fig. 2(b).
#[must_use]
pub fn inception_blocks(graph: &Graph) -> Vec<String> {
    graph
        .blocks()
        .into_iter()
        .filter(|b| b.starts_with("inception_"))
        .map(str::to_string)
        .collect()
}

impl DesignSpace {
    /// The point with the lowest latency.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty (never happens for `sweep` output).
    #[must_use]
    pub fn best(&self) -> DesignPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                a.latency
                    .partial_cmp(&b.latency)
                    .expect("latencies are finite")
            })
            .expect("design space is never empty")
    }

    /// Points that fit `sram_limit` bytes.
    #[must_use]
    pub fn feasible(&self, sram_limit: u64) -> Vec<DesignPoint> {
        self.points
            .iter()
            .copied()
            .filter(|p| p.sram_bytes <= sram_limit)
            .collect()
    }

    /// Whether performance is non-monotone in SRAM spend: some point
    /// uses less memory than another yet achieves lower latency.
    #[must_use]
    pub fn is_non_monotone(&self) -> bool {
        // Compare every point against the all-on point's neighbourhood:
        // cheaper-and-faster pairs exist iff sorting by SRAM does not
        // sort by latency.
        let mut by_sram: Vec<&DesignPoint> = self.points.iter().collect();
        by_sram.sort_by_key(|p| p.sram_bytes);
        by_sram
            .windows(2)
            .any(|w| w[1].latency > w[0].latency + 1e-15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
    use lcmm_graph::zoo;

    fn setup(graph: &Graph) -> (AccelDesign, GraphProfile) {
        let d = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let p = d.profile(graph);
        (d, p)
    }

    #[test]
    fn googlenet_block_sweep_has_512_points() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let blocks = inception_blocks(&g);
        assert_eq!(blocks.len(), 9);
        let space = sweep(&g, &ev, &values, &blocks);
        assert_eq!(space.points.len(), 512);
    }

    #[test]
    fn empty_mask_matches_umm() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let blocks = inception_blocks(&g);
        let space = sweep(&g, &ev, &values, &blocks);
        let empty = space.points.iter().find(|pt| pt.mask == 0).unwrap();
        assert!((empty.latency - p.total_latency()).abs() < 1e-12);
        assert_eq!(empty.sram_bytes, 0);
    }

    #[test]
    fn latency_decreases_with_full_mask() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let blocks = inception_blocks(&g);
        let space = sweep(&g, &ev, &values, &blocks);
        let empty = space.points.iter().find(|pt| pt.mask == 0).unwrap().latency;
        let full = space
            .points
            .iter()
            .find(|pt| pt.mask == 511)
            .unwrap()
            .latency;
        assert!(full < empty);
        assert!(space.best().latency <= full);
    }

    #[test]
    fn sram_is_additive_over_blocks() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let blocks = inception_blocks(&g);
        let space = sweep(&g, &ev, &values, &blocks);
        let singles: u64 = (0..blocks.len())
            .map(|b| {
                space
                    .points
                    .iter()
                    .find(|pt| pt.mask == 1 << b)
                    .unwrap()
                    .sram_bytes
            })
            .sum();
        let full = space.points.iter().find(|pt| pt.mask == 511).unwrap();
        assert_eq!(full.sram_bytes, singles);
    }

    #[test]
    fn feasible_filters_by_sram() {
        let g = zoo::googlenet();
        let (_, p) = setup(&g);
        let ev = Evaluator::new(&g, &p);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let blocks = inception_blocks(&g);
        let space = sweep(&g, &ev, &values, &blocks);
        let all = space.feasible(u64::MAX).len();
        let none = space.feasible(0).len();
        assert_eq!(all, 512);
        assert_eq!(none, 1); // only the empty mask uses 0 bytes
    }
}
