//! The paper's published numbers, as structured reference data.
//!
//! Embedding Table 1–3 of Wei et al. (DAC'19) lets the harness print
//! paper-vs-measured side by side and lets tests quantify reproduction
//! fidelity (sign agreement, ordering agreement, relative deviation)
//! instead of eyeballing.

use lcmm_fpga::Precision;
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTable1Row {
    /// Benchmark short code as used in the paper (`RN`, `GN`, `IN`).
    pub model: &'static str,
    /// Zoo model name.
    pub zoo_name: &'static str,
    /// Precision.
    pub precision_bits: u8,
    /// UMM latency, ms.
    pub umm_latency_ms: f64,
    /// UMM throughput, Tops.
    pub umm_tops: f64,
    /// LCMM latency, ms.
    pub lcmm_latency_ms: f64,
    /// LCMM throughput, Tops.
    pub lcmm_tops: f64,
    /// Reported speedup.
    pub speedup: f64,
    /// LCMM SRAM utilisation, percent.
    pub lcmm_sram_pct: f64,
    /// POL (percentage of memory-bound layers helped), percent.
    pub pol_pct: f64,
}

/// The paper's Table 1 + the POL column of Table 2.
pub const TABLE1: [PaperTable1Row; 9] = [
    PaperTable1Row {
        model: "RN",
        zoo_name: "resnet152",
        precision_bits: 8,
        umm_latency_ms: 18.806,
        umm_tops: 1.227,
        lcmm_latency_ms: 13.258,
        lcmm_tops: 1.747,
        speedup: 1.42,
        lcmm_sram_pct: 86.0,
        pol_pct: 94.0,
    },
    PaperTable1Row {
        model: "RN",
        zoo_name: "resnet152",
        precision_bits: 16,
        umm_latency_ms: 22.253,
        umm_tops: 1.126,
        lcmm_latency_ms: 15.243,
        lcmm_tops: 1.644,
        speedup: 1.46,
        lcmm_sram_pct: 85.0,
        pol_pct: 94.0,
    },
    PaperTable1Row {
        model: "RN",
        zoo_name: "resnet152",
        precision_bits: 32,
        umm_latency_ms: 125.720,
        umm_tops: 0.184,
        lcmm_latency_ms: 86.754,
        lcmm_tops: 0.266,
        speedup: 1.45,
        lcmm_sram_pct: 80.0,
        pol_pct: 84.0,
    },
    PaperTable1Row {
        model: "GN",
        zoo_name: "googlenet",
        precision_bits: 8,
        umm_latency_ms: 5.589,
        umm_tops: 0.936,
        lcmm_latency_ms: 4.650,
        lcmm_tops: 1.148,
        speedup: 1.23,
        lcmm_sram_pct: 88.0,
        pol_pct: 83.0,
    },
    PaperTable1Row {
        model: "GN",
        zoo_name: "googlenet",
        precision_bits: 16,
        umm_latency_ms: 6.366,
        umm_tops: 0.668,
        lcmm_latency_ms: 4.929,
        lcmm_tops: 0.863,
        speedup: 1.29,
        lcmm_sram_pct: 83.0,
        pol_pct: 82.0,
    },
    PaperTable1Row {
        model: "GN",
        zoo_name: "googlenet",
        precision_bits: 32,
        umm_latency_ms: 24.454,
        umm_tops: 0.213,
        lcmm_latency_ms: 19.439,
        lcmm_tops: 0.269,
        speedup: 1.25,
        lcmm_sram_pct: 83.0,
        pol_pct: 61.0,
    },
    PaperTable1Row {
        model: "IN",
        zoo_name: "inception_v4",
        precision_bits: 8,
        umm_latency_ms: 7.110,
        umm_tops: 1.293,
        lcmm_latency_ms: 6.030,
        lcmm_tops: 1.528,
        speedup: 1.17,
        lcmm_sram_pct: 89.0,
        pol_pct: 78.0,
    },
    PaperTable1Row {
        model: "IN",
        zoo_name: "inception_v4",
        precision_bits: 16,
        umm_latency_ms: 9.595,
        umm_tops: 0.968,
        lcmm_latency_ms: 6.972,
        lcmm_tops: 1.319,
        speedup: 1.36,
        lcmm_sram_pct: 88.0,
        pol_pct: 79.0,
    },
    PaperTable1Row {
        model: "IN",
        zoo_name: "inception_v4",
        precision_bits: 32,
        umm_latency_ms: 37.515,
        umm_tops: 0.213,
        lcmm_latency_ms: 28.255,
        lcmm_tops: 0.325,
        speedup: 1.33,
        lcmm_sram_pct: 81.0,
        pol_pct: 66.0,
    },
];

/// The paper's headline: average speedup over UMM.
pub const AVERAGE_SPEEDUP: f64 = 1.36;

/// Table 3: throughput ratios against the state of the art.
pub const VS_CLOUD_DNN_RESNET50: f64 = 1.35;
/// Table 3: throughput ratio against TGPA on ResNet-152.
pub const VS_TGPA_RESNET152: f64 = 1.12;

/// Looks up the paper row for a zoo model name and precision.
#[must_use]
pub fn table1_row(zoo_name: &str, precision: Precision) -> Option<&'static PaperTable1Row> {
    let bits = match precision {
        Precision::Fix8 => 8,
        Precision::Fix16 => 16,
        Precision::Float32 => 32,
    };
    TABLE1
        .iter()
        .find(|r| r.zoo_name == zoo_name && r.precision_bits == bits)
}

/// Reproduction fidelity of a measured speedup set against the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fidelity {
    /// Fraction of rows where measured speedup > 1 iff paper's is > 1
    /// (always true in the paper, so this is "LCMM wins everywhere").
    pub sign_agreement: f64,
    /// Fraction of same-model precision transitions (8→16, 16→32) whose
    /// direction (rise/fall) matches the paper's.
    pub trend_agreement: f64,
    /// Mean |measured − paper| / paper over the speedup column.
    pub mean_relative_deviation: f64,
}

/// Computes fidelity for `(zoo_name, precision_bits, measured_speedup)`
/// triples.
#[must_use]
pub fn fidelity(measured: &[(String, u8, f64)]) -> Fidelity {
    let mut sign_hits = 0usize;
    let mut sign_total = 0usize;
    let mut dev_sum = 0.0;
    let mut dev_n = 0usize;
    for (name, bits, speedup) in measured {
        if let Some(row) = TABLE1
            .iter()
            .find(|r| r.zoo_name == *name && r.precision_bits == *bits)
        {
            sign_total += 1;
            if (*speedup > 1.0) == (row.speedup > 1.0) {
                sign_hits += 1;
            }
            dev_sum += (speedup - row.speedup).abs() / row.speedup;
            dev_n += 1;
        }
    }
    // Trend: for each model, compare 8→16 and 16→32 direction.
    let mut trend_hits = 0usize;
    let mut trend_total = 0usize;
    for model in ["resnet152", "googlenet", "inception_v4"] {
        let get = |bits: u8, set: &[(String, u8, f64)]| -> Option<f64> {
            set.iter()
                .find(|(n, b, _)| n == model && *b == bits)
                .map(|(_, _, s)| *s)
        };
        let paper = |bits: u8| -> Option<f64> {
            TABLE1
                .iter()
                .find(|r| r.zoo_name == model && r.precision_bits == bits)
                .map(|r| r.speedup)
        };
        for (lo, hi) in [(8u8, 16u8), (16, 32)] {
            if let (Some(ml), Some(mh), Some(pl), Some(ph)) =
                (get(lo, measured), get(hi, measured), paper(lo), paper(hi))
            {
                trend_total += 1;
                if (mh > ml) == (ph > pl) {
                    trend_hits += 1;
                }
            }
        }
    }
    Fidelity {
        sign_agreement: ratio(sign_hits, sign_total),
        trend_agreement: ratio(trend_hits, trend_total),
        mean_relative_deviation: if dev_n == 0 {
            0.0
        } else {
            dev_sum / dev_n as f64
        },
    }
}

fn ratio(hits: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete_and_averages_to_headline() {
        assert_eq!(TABLE1.len(), 9);
        // The table rows average 1.33; the paper's prose claims 1.36
        // (a small internal inconsistency in the original) — accept the
        // band between them.
        let avg: f64 = TABLE1.iter().map(|r| r.speedup).sum::<f64>() / 9.0;
        assert!((avg - AVERAGE_SPEEDUP).abs() < 0.05, "got {avg}");
    }

    #[test]
    fn lookup_resolves() {
        let r = table1_row("googlenet", Precision::Fix16).expect("exists");
        assert_eq!(r.speedup, 1.29);
        assert!(table1_row("alexnet", Precision::Fix8).is_none());
    }

    #[test]
    fn paper_rows_are_internally_consistent() {
        for r in &TABLE1 {
            // Speedup column matches the latency columns to rounding.
            let implied = r.umm_latency_ms / r.lcmm_latency_ms;
            assert!(
                (implied - r.speedup).abs() < 0.05,
                "{} {}: implied {implied:.3} vs reported {}",
                r.model,
                r.precision_bits,
                r.speedup
            );
        }
    }

    #[test]
    fn fidelity_of_perfect_reproduction_is_one() {
        let measured: Vec<(String, u8, f64)> = TABLE1
            .iter()
            .map(|r| (r.zoo_name.to_string(), r.precision_bits, r.speedup))
            .collect();
        let f = fidelity(&measured);
        assert_eq!(f.sign_agreement, 1.0);
        assert_eq!(f.trend_agreement, 1.0);
        assert!(f.mean_relative_deviation < 1e-12);
    }

    #[test]
    fn fidelity_of_this_reproduction() {
        use lcmm_fpga::Device;
        let device = Device::vu9p();
        let mut measured = Vec::new();
        for graph in lcmm_graph::zoo::benchmark_suite() {
            for precision in Precision::ALL {
                let (umm, lcmm) = crate::pipeline::compare(&graph, &device, precision);
                let bits = match precision {
                    Precision::Fix8 => 8,
                    Precision::Fix16 => 16,
                    Precision::Float32 => 32,
                };
                measured.push((
                    graph.name().to_string(),
                    bits,
                    lcmm.speedup_over(umm.latency),
                ));
            }
        }
        let f = fidelity(&measured);
        assert_eq!(f.sign_agreement, 1.0, "LCMM must win every configuration");
        assert!(f.trend_agreement >= 5.0 / 6.0, "trend agreement {f:?}");
        assert!(
            f.mean_relative_deviation < 0.20,
            "mean deviation {:.3} too high",
            f.mean_relative_deviation
        );
    }
}
