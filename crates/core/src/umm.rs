//! The UMM baseline: uniform memory management (paper §2.1, Fig. 1).
//!
//! Every tensor of every layer streams through DRAM tile by tile; the
//! only on-chip storage is the double-buffered tile buffers. This is the
//! design of \[18\] and the baseline of the paper's Table 1.

use lcmm_fpga::{resources, AccelDesign, Device, GraphProfile, Precision, ResourceReport};
use lcmm_graph::Graph;

/// A fully evaluated UMM design point.
#[derive(Debug, Clone)]
pub struct UmmBaseline {
    /// The accelerator design (array, clock, tile budget).
    pub design: AccelDesign,
    /// The operation latency table.
    pub profile: GraphProfile,
    /// End-to-end latency, seconds.
    pub latency: f64,
    /// Total operations of one inference (2 × MACs).
    pub ops: u64,
    /// Resource utilisation.
    pub resources: ResourceReport,
}

impl UmmBaseline {
    /// Builds and evaluates the UMM baseline for `graph`.
    #[must_use]
    pub fn build(graph: &Graph, device: &Device, precision: Precision) -> Self {
        let design = AccelDesign::explore(graph, device, precision);
        Self::from_design(graph, design)
    }

    /// Evaluates an existing design as a UMM baseline.
    #[must_use]
    pub fn from_design(graph: &Graph, design: AccelDesign) -> Self {
        let profile = design.profile(graph);
        let latency = profile.total_latency();
        let ops = design.batch as u64 * 2 * graph.total_macs();
        let resources = resources::report(&design, &[]);
        Self {
            design,
            profile,
            latency,
            ops,
            resources,
        }
    }

    /// Achieved throughput in ops/s.
    #[must_use]
    pub fn throughput_ops(&self) -> f64 {
        self.ops as f64 / self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn baseline_throughput_below_peak() {
        let g = zoo::googlenet();
        let umm = UmmBaseline::build(&g, &Device::vu9p(), Precision::Fix16);
        assert!(umm.throughput_ops() < umm.design.peak_ops());
        assert!(umm.latency > 0.0);
    }

    #[test]
    fn umm_uses_only_tile_buffers() {
        let g = zoo::resnet152();
        let umm = UmmBaseline::build(&g, &Device::vu9p(), Precision::Fix8);
        // SRAM utilisation stays in the tile-buffer band (paper: 10-22%).
        let sram = umm.resources.sram_util(&umm.design.device);
        assert!(sram < 0.30, "got {sram}");
    }

    #[test]
    fn latency_matches_profile_sum() {
        let g = zoo::alexnet();
        let umm = UmmBaseline::build(&g, &Device::vu9p(), Precision::Fix16);
        assert!((umm.latency - umm.profile.total_latency()).abs() < 1e-15);
    }
}
