//! Global liveness analysis over the computation graph (§3.1).
//!
//! Layers execute sequentially in topological order, so a value's
//! lifespan is an interval of schedule positions: from the step that
//! materialises it to the last step that reads it. Two values may share
//! a buffer exactly when their intervals do not overlap.

use crate::value::{TensorValue, ValueId};
use lcmm_fpga::Precision;
use lcmm_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A closed interval of schedule positions during which a value is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LiveInterval {
    /// Position of the defining step.
    pub start: usize,
    /// Position of the last use (inclusive).
    pub end: usize,
}

impl LiveInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Self { start, end }
    }

    /// Whether two lifespans overlap (closed intervals).
    #[must_use]
    pub fn overlaps(&self, other: &LiveInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Interval length in steps (≥ 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty; provided for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The sequential execution schedule: node → position.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    positions: Vec<usize>,
    order: Vec<NodeId>,
}

impl Schedule {
    /// Builds the schedule from the graph's topological order.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        Self::from_order(graph, graph.topo_order())
    }

    /// Builds a liveness-minimising schedule (extension beyond the
    /// paper): a greedy list scheduler that, among ready nodes, prefers
    /// the one that frees the most feature bytes net of the bytes it
    /// creates. Shorter lifespans mean a sparser interference graph and
    /// smaller colored buffers, which gives DNNK more slack.
    ///
    /// Scores are in feature *bytes* at [`Precision::Fix16`]; use
    /// [`Schedule::minimizing_liveness_for`] to score at another
    /// precision. The feature precision is uniform across a graph, so
    /// the chosen schedule is the same for every precision — scaling
    /// all scores by a constant byte-width preserves every argmax —
    /// but the score unit now matches what the docs promise.
    #[must_use]
    pub fn minimizing_liveness(graph: &Graph) -> Self {
        Self::minimizing_liveness_for(graph, Precision::Fix16)
    }

    /// [`Schedule::minimizing_liveness`] with an explicit feature
    /// precision for the bytes-freed score.
    ///
    /// A ready node's score only grows while it waits (a source starts
    /// counting as "freed" exactly when its remaining-reader count
    /// drops to one, and counts never come back up), so the ready set
    /// is a max-heap with eager score updates: when a source hits one
    /// remaining reader, that unique reader's cached score is bumped
    /// and re-pushed; popped entries whose score does not match the
    /// cache are stale and skipped. This replaces the reference
    /// implementation's O(ready²) rescan per step with O((V+E) log V)
    /// total while choosing the identical node each step.
    #[must_use]
    pub fn minimizing_liveness_for(graph: &Graph, precision: Precision) -> Self {
        let n = graph.len();
        let elem_bytes = i128::from(precision.bytes());
        let bytes_of =
            |id: NodeId| -> i128 { graph.node(id).output_shape().elems() as i128 * elem_bytes };
        // Concat-resolved sources per node, computed once: the scheduler
        // revisits a node's sources every time it becomes ready and again
        // when it runs, and re-resolving through concats allocates each
        // time.
        let sources: Vec<Vec<NodeId>> = graph
            .iter()
            .map(|node| lcmm_fpga::resolved_sources(graph, node))
            .collect();
        // Readers per value (resolved through concats, matching the
        // liveness model), plus the reverse map used to find the one
        // remaining reader when a count hits one.
        let mut remaining_readers = vec![0usize; n];
        let mut readers_of: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for node in graph.iter() {
            for &src in &sources[node.id().index()] {
                remaining_readers[src.index()] += 1;
                readers_of[src.index()].push(node.id());
            }
        }
        let created_of = |id: NodeId| -> i128 {
            if matches!(graph.node(id).op(), lcmm_graph::OpKind::Concat) {
                0
            } else {
                bytes_of(id)
            }
        };
        // Score of a node at the moment it becomes ready; later source
        // expiries arrive as increments.
        let fresh_score = |id: NodeId, remaining_readers: &[usize]| -> i128 {
            let freed: i128 = lcmm_fpga::resolved_sources(graph, graph.node(id))
                .into_iter()
                .filter(|s| remaining_readers[s.index()] == 1)
                .map(bytes_of)
                .sum();
            freed - created_of(id)
        };
        let mut indegree: Vec<usize> = graph.iter().map(|n| n.inputs().len()).collect();
        let mut heap: BinaryHeap<(i128, Reverse<NodeId>)> = BinaryHeap::new();
        let mut cur_score: Vec<i128> = vec![i128::MIN; n];
        let mut scheduled = vec![false; n];
        for node in graph.iter() {
            if node.inputs().is_empty() {
                let s = fresh_score(node.id(), &remaining_readers);
                cur_score[node.id().index()] = s;
                heap.push((s, Reverse(node.id())));
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some((score, Reverse(id))) = heap.pop() {
            if scheduled[id.index()] || score != cur_score[id.index()] {
                continue; // superseded by a later, larger score
            }
            scheduled[id.index()] = true;
            order.push(id);
            for src in lcmm_fpga::resolved_sources(graph, graph.node(id)) {
                remaining_readers[src.index()] -= 1;
                if remaining_readers[src.index()] != 1 {
                    continue;
                }
                // Exactly one read of `src` is left; the node holding
                // it now frees those bytes by running. (If `id` itself
                // read `src` twice, the leftover read is its own and
                // no unscheduled reader exists — nothing to bump.)
                let reader = readers_of[src.index()]
                    .iter()
                    .copied()
                    .find(|r| !scheduled[r.index()]);
                if let Some(reader) = reader {
                    if cur_score[reader.index()] != i128::MIN {
                        cur_score[reader.index()] += bytes_of(src);
                        heap.push((cur_score[reader.index()], Reverse(reader)));
                    }
                }
            }
            for &consumer in graph.consumers(id) {
                indegree[consumer.index()] -= 1;
                if indegree[consumer.index()] == 0 {
                    let s = fresh_score(consumer, &remaining_readers);
                    cur_score[consumer.index()] = s;
                    heap.push((s, Reverse(consumer)));
                }
            }
        }
        assert_eq!(
            order.len(),
            graph.len(),
            "graph is acyclic, so all nodes schedule"
        );
        Self::from_order(graph, order)
    }

    /// The original ready-set scan, kept as the executable
    /// specification of [`Schedule::minimizing_liveness_for`]: every
    /// step rescans all ready nodes and re-sums their sources, O(ready²)
    /// work per step. Used by property tests and the scaling bench only.
    #[must_use]
    pub fn minimizing_liveness_reference(graph: &Graph, precision: Precision) -> Self {
        let elem_bytes = i128::from(precision.bytes());
        let mut remaining_readers = vec![0usize; graph.len()];
        for node in graph.iter() {
            for src in lcmm_fpga::resolved_sources(graph, node) {
                remaining_readers[src.index()] += 1;
            }
        }
        let mut indegree: Vec<usize> = graph.iter().map(|n| n.inputs().len()).collect();
        let mut ready: Vec<NodeId> = graph
            .iter()
            .filter(|n| n.inputs().is_empty())
            .map(lcmm_graph::Node::id)
            .collect();
        let mut order = Vec::with_capacity(graph.len());
        while !ready.is_empty() {
            // Score: bytes freed by running this node now, minus bytes
            // its output materialises.
            let (best_idx, _) = ready
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let node = graph.node(id);
                    let freed: i128 = lcmm_fpga::resolved_sources(graph, node)
                        .into_iter()
                        .filter(|s| remaining_readers[s.index()] == 1)
                        .map(|s| graph.node(s).output_shape().elems() as i128 * elem_bytes)
                        .sum();
                    let created = if matches!(node.op(), lcmm_graph::OpKind::Concat) {
                        0
                    } else {
                        node.output_shape().elems() as i128 * elem_bytes
                    };
                    (i, (freed - created, Reverse(id)))
                })
                .max_by_key(|&(_, score)| score)
                .expect("ready set is nonempty");
            let id = ready.swap_remove(best_idx);
            order.push(id);
            for src in lcmm_fpga::resolved_sources(graph, graph.node(id)) {
                remaining_readers[src.index()] -= 1;
            }
            for &consumer in graph.consumers(id) {
                indegree[consumer.index()] -= 1;
                if indegree[consumer.index()] == 0 {
                    ready.push(consumer);
                }
            }
        }
        assert_eq!(
            order.len(),
            graph.len(),
            "graph is acyclic, so all nodes schedule"
        );
        Self::from_order(graph, order)
    }

    fn from_order(graph: &Graph, order: Vec<NodeId>) -> Self {
        let mut positions = vec![0; graph.len()];
        for (rank, id) in order.iter().enumerate() {
            positions[id.index()] = rank;
        }
        Self { positions, order }
    }

    /// Whether this schedule respects every data dependency of `graph`.
    #[must_use]
    pub fn is_valid_for(&self, graph: &Graph) -> bool {
        graph.iter().all(|node| {
            node.inputs()
                .iter()
                .all(|&i| self.position(i) < self.position(node.id()))
        })
    }

    /// Position of a node in the schedule.
    #[must_use]
    pub fn position(&self, id: NodeId) -> usize {
        self.positions[id.index()]
    }

    /// Node at a given position.
    #[must_use]
    pub fn at(&self, position: usize) -> NodeId {
        self.order[position]
    }

    /// Number of scheduled steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Computes lifespans of feature values.
///
/// The interval runs from the producer's position to the last reader's
/// position; a value with no readers (e.g. the network output) lives
/// only at its defining step.
#[must_use]
pub fn feature_lifespans<'a, I>(schedule: &Schedule, values: I) -> HashMap<ValueId, LiveInterval>
where
    I: IntoIterator<Item = &'a TensorValue>,
{
    values
        .into_iter()
        .map(|v| {
            let def = schedule.position(v.id.node());
            let last_use = v
                .readers
                .iter()
                .map(|&r| schedule.position(r))
                .max()
                .unwrap_or(def)
                .max(def);
            (v.id, LiveInterval::new(def, last_use))
        })
        .collect()
}

/// Peak simultaneously-live feature bytes under `spans`, via one
/// O(n log n) event sweep: each value contributes an allocate event at
/// `start` and a free event at `end + 1`, and the running sum's maximum
/// is the peak. Frees sort before allocations at the same step, so a
/// value ending at step *t* never inflates the peak against one
/// starting at *t* (closed intervals touching at a boundary already
/// overlap and both count).
///
/// Values missing from `spans` (e.g. weights when `spans` covers
/// features only) are ignored.
#[must_use]
pub fn peak_live_bytes<'a, I>(spans: &HashMap<ValueId, LiveInterval>, values: I) -> u64
where
    I: IntoIterator<Item = &'a TensorValue>,
{
    let mut deltas: Vec<(usize, i128)> = Vec::new();
    for v in values {
        if let Some(iv) = spans.get(&v.id) {
            deltas.push((iv.start, i128::from(v.bytes)));
            deltas.push((iv.end + 1, -i128::from(v.bytes)));
        }
    }
    deltas.sort_unstable();
    let (mut cur, mut peak) = (0i128, 0i128);
    for (_, d) in deltas {
        cur += d;
        peak = peak.max(cur);
    }
    u64::try_from(peak).expect("live bytes are a sum of u64 sizes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueTable;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::zoo;

    #[test]
    fn interval_overlap_cases() {
        let a = LiveInterval::new(0, 5);
        let b = LiveInterval::new(5, 9);
        let c = LiveInterval::new(6, 7);
        assert!(a.overlaps(&b)); // shared endpoint counts
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert_eq!(a.len(), 6);
    }

    #[test]
    #[should_panic(expected = "before start")]
    fn reversed_interval_panics() {
        let _ = LiveInterval::new(3, 2);
    }

    #[test]
    fn schedule_positions_are_consistent() {
        let g = zoo::googlenet();
        let s = Schedule::new(&g);
        assert_eq!(s.len(), g.len());
        for rank in 0..s.len() {
            assert_eq!(s.position(s.at(rank)), rank);
        }
    }

    #[test]
    fn sequential_values_do_not_interfere() {
        // In GoogLeNet, inception_3a's branch output dies once 3b has
        // consumed it; it must not overlap 5b's branch outputs.
        let g = zoo::googlenet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(&g);
        let table = ValueTable::build(&g, &profile, Precision::Fix16);
        let s = Schedule::new(&g);
        let spans = feature_lifespans(&s, table.iter());
        let early = spans[&ValueId::Feature(g.node_by_name("inception_3a/1x1").unwrap().id())];
        let late = spans[&ValueId::Feature(g.node_by_name("inception_5b/1x1").unwrap().id())];
        assert!(!early.overlaps(&late));
    }

    #[test]
    fn branch_values_of_same_module_interfere() {
        let g = zoo::googlenet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(&g);
        let table = ValueTable::build(&g, &profile, Precision::Fix16);
        let s = Schedule::new(&g);
        let spans = feature_lifespans(&s, table.iter());
        let b1 = spans[&ValueId::Feature(g.node_by_name("inception_3a/1x1").unwrap().id())];
        let b2 = spans[&ValueId::Feature(g.node_by_name("inception_3a/3x3").unwrap().id())];
        assert!(
            b1.overlaps(&b2),
            "parallel branches are simultaneously live"
        );
    }

    #[test]
    fn minimizing_liveness_schedule_is_valid() {
        for g in [zoo::googlenet(), zoo::inception_v4(), zoo::resnet50()] {
            let s = Schedule::minimizing_liveness(&g);
            assert!(s.is_valid_for(&g), "{}: dependencies violated", g.name());
            assert!(Schedule::new(&g).is_valid_for(&g));
            assert_eq!(s.len(), g.len());
        }
    }

    #[test]
    fn minimizing_liveness_shortens_adversarial_lifespans() {
        use lcmm_graph::{ConvParams, GraphBuilder};
        // Construction order deliberately stretches a huge tensor's
        // lifespan: its consumer is inserted after a long unrelated
        // chain, so id-order scheduling keeps the big tensor live the
        // whole time. The liveness-aware scheduler should consume it
        // immediately.
        let mut b = GraphBuilder::new("adversarial");
        let x = b
            .input(crate::liveness::tests::shape(64, 56))
            .expect("input");
        let big = b
            .conv("big", x, ConvParams::square(512, 3, 1, 1))
            .expect("big");
        // Long unrelated chain of *large* tensors from the input: under
        // id order, `big` stays live across all of them.
        let mut chain = x;
        for i in 0..8 {
            chain = b
                .conv(format!("chain{i}"), chain, ConvParams::pointwise(256))
                .expect("chain");
        }
        // The big tensor's only consumer, inserted last.
        let sink = b
            .conv("sink", big, ConvParams::square(32, 3, 2, 1))
            .expect("sink");
        let merged = b
            .conv("post", sink, ConvParams::pointwise(32))
            .expect("post");
        let _ = chain;
        let g = b.finish(merged).expect("valid");

        let table = value_table(&g);
        let peak = |schedule: &Schedule| -> u64 {
            let features: Vec<&crate::value::TensorValue> = table
                .iter()
                .filter(|v| v.id.kind() == crate::value::ValueKind::Feature)
                .collect();
            let spans = feature_lifespans(schedule, features.iter().copied());
            peak_live_bytes(&spans, features.iter().copied())
        };
        let topo_peak = peak(&Schedule::new(&g));
        let min_peak = peak(&Schedule::minimizing_liveness(&g));
        assert!(
            min_peak < topo_peak,
            "expected liveness-aware schedule to cut peak: {min_peak} vs {topo_peak}"
        );
    }

    #[test]
    fn minimizing_liveness_never_hurts_peak_on_zoo() {
        for g in [zoo::googlenet(), zoo::inception_v4()] {
            let table = value_table(&g);
            let peak = |schedule: &Schedule| -> u64 {
                let spans = feature_lifespans(schedule, table.feature_candidates());
                peak_live_bytes(&spans, table.feature_candidates())
            };
            assert!(
                peak(&Schedule::minimizing_liveness(&g)) <= peak(&Schedule::new(&g)),
                "{}",
                g.name()
            );
        }
    }

    #[test]
    fn heap_scheduler_matches_reference_scan() {
        for g in [
            zoo::googlenet(),
            zoo::inception_v4(),
            zoo::resnet50(),
            zoo::densenet121(),
            zoo::synthetic(300, 5, 11),
        ] {
            for precision in [Precision::Fix8, Precision::Fix16, Precision::Float32] {
                let fast = Schedule::minimizing_liveness_for(&g, precision);
                let slow = Schedule::minimizing_liveness_reference(&g, precision);
                assert!(
                    (0..fast.len()).all(|i| fast.at(i) == slow.at(i)),
                    "{} @ {precision:?}: heap scheduler diverged from reference",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn schedule_is_invariant_under_precision() {
        // The score unit is bytes, but feature precision is uniform, so
        // scaling cannot change any argmax: Fix8 and Float32 must yield
        // the same order (the PR-1 member_bytes unit-bug shape, caught
        // here at the scheduler level).
        for g in [zoo::googlenet(), zoo::synthetic(200, 4, 7)] {
            let a = Schedule::minimizing_liveness_for(&g, Precision::Fix8);
            let b = Schedule::minimizing_liveness_for(&g, Precision::Float32);
            assert!(
                (0..a.len()).all(|i| a.at(i) == b.at(i)),
                "{}: schedule depends on precision",
                g.name()
            );
        }
    }

    #[test]
    fn peak_live_bytes_sweep_matches_hand_computation() {
        // Three values: A [0,2] 100 B, B [1,3] 50 B, C [3,5] 70 B.
        // Peak is steps 1–2 where A and B overlap: 150. At step 3 the
        // free of A (end+1 = 3) lands before the allocation of C.
        let mk = |i: usize, bytes: u64| crate::value::TensorValue {
            id: ValueId::Feature(lcmm_graph::NodeId::new(i)),
            bytes,
            readers: Vec::new(),
            allocatable: true,
            touches_memory_bound: false,
        };
        let values = [mk(0, 100), mk(1, 50), mk(2, 70)];
        let spans: HashMap<ValueId, LiveInterval> = [
            (values[0].id, LiveInterval::new(0, 2)),
            (values[1].id, LiveInterval::new(1, 3)),
            (values[2].id, LiveInterval::new(3, 5)),
        ]
        .into_iter()
        .collect();
        assert_eq!(peak_live_bytes(&spans, values.iter()), 150);
        assert_eq!(peak_live_bytes(&spans, std::iter::empty()), 0);
    }

    fn value_table(g: &Graph) -> ValueTable {
        let design = AccelDesign::explore(g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(g);
        ValueTable::build(g, &profile, Precision::Fix16)
    }

    pub(crate) fn shape(c: usize, hw: usize) -> crate::liveness::tests::FS {
        lcmm_graph::FeatureShape::new(c, hw, hw)
    }

    pub(crate) type FS = lcmm_graph::FeatureShape;

    #[test]
    fn def_after_last_reader_is_clamped() {
        // The output value has no readers; its interval is a point.
        let g = zoo::alexnet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(&g);
        let table = ValueTable::build(&g, &profile, Precision::Fix16);
        let s = Schedule::new(&g);
        let spans = feature_lifespans(&s, table.iter());
        let out = spans[&ValueId::Feature(g.output_node().id())];
        assert_eq!(out.start, out.end);
    }
}
