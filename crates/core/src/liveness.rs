//! Global liveness analysis over the computation graph (§3.1).
//!
//! Layers execute sequentially in topological order, so a value's
//! lifespan is an interval of schedule positions: from the step that
//! materialises it to the last step that reads it. Two values may share
//! a buffer exactly when their intervals do not overlap.

use crate::value::{TensorValue, ValueId};
use lcmm_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A closed interval of schedule positions during which a value is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LiveInterval {
    /// Position of the defining step.
    pub start: usize,
    /// Position of the last use (inclusive).
    pub end: usize,
}

impl LiveInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Self { start, end }
    }

    /// Whether two lifespans overlap (closed intervals).
    #[must_use]
    pub fn overlaps(&self, other: &LiveInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Interval length in steps (≥ 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty; provided for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The sequential execution schedule: node → position.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    positions: Vec<usize>,
    order: Vec<NodeId>,
}

impl Schedule {
    /// Builds the schedule from the graph's topological order.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        Self::from_order(graph, graph.topo_order())
    }

    /// Builds a liveness-minimising schedule (extension beyond the
    /// paper): a greedy list scheduler that, among ready nodes, prefers
    /// the one that frees the most feature bytes net of the bytes it
    /// creates. Shorter lifespans mean a sparser interference graph and
    /// smaller colored buffers, which gives DNNK more slack.
    #[must_use]
    pub fn minimizing_liveness(graph: &Graph) -> Self {
        // Readers per value (resolved through concats, matching the
        // liveness model).
        let mut remaining_readers = vec![0usize; graph.len()];
        for node in graph.iter() {
            for src in lcmm_fpga::resolved_sources(graph, node) {
                remaining_readers[src.index()] += 1;
            }
        }
        let mut indegree: Vec<usize> = graph.iter().map(|n| n.inputs().len()).collect();
        let mut ready: Vec<NodeId> = graph
            .iter()
            .filter(|n| n.inputs().is_empty())
            .map(lcmm_graph::Node::id)
            .collect();
        let mut order = Vec::with_capacity(graph.len());
        while !ready.is_empty() {
            // Score: bytes freed by running this node now, minus bytes
            // its output materialises.
            let (best_idx, _) = ready
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let node = graph.node(id);
                    let freed: i128 = lcmm_fpga::resolved_sources(graph, node)
                        .into_iter()
                        .filter(|s| remaining_readers[s.index()] == 1)
                        .map(|s| graph.node(s).output_shape().elems() as i128)
                        .sum();
                    let created = if matches!(node.op(), lcmm_graph::OpKind::Concat) {
                        0
                    } else {
                        node.output_shape().elems() as i128
                    };
                    (i, (freed - created, std::cmp::Reverse(id)))
                })
                .max_by_key(|&(_, score)| score)
                .expect("ready set is nonempty");
            let id = ready.swap_remove(best_idx);
            order.push(id);
            for src in lcmm_fpga::resolved_sources(graph, graph.node(id)) {
                remaining_readers[src.index()] -= 1;
            }
            for &consumer in graph.consumers(id) {
                indegree[consumer.index()] -= 1;
                if indegree[consumer.index()] == 0 {
                    ready.push(consumer);
                }
            }
        }
        assert_eq!(
            order.len(),
            graph.len(),
            "graph is acyclic, so all nodes schedule"
        );
        Self::from_order(graph, order)
    }

    fn from_order(graph: &Graph, order: Vec<NodeId>) -> Self {
        let mut positions = vec![0; graph.len()];
        for (rank, id) in order.iter().enumerate() {
            positions[id.index()] = rank;
        }
        Self { positions, order }
    }

    /// Whether this schedule respects every data dependency of `graph`.
    #[must_use]
    pub fn is_valid_for(&self, graph: &Graph) -> bool {
        graph.iter().all(|node| {
            node.inputs()
                .iter()
                .all(|&i| self.position(i) < self.position(node.id()))
        })
    }

    /// Position of a node in the schedule.
    #[must_use]
    pub fn position(&self, id: NodeId) -> usize {
        self.positions[id.index()]
    }

    /// Node at a given position.
    #[must_use]
    pub fn at(&self, position: usize) -> NodeId {
        self.order[position]
    }

    /// Number of scheduled steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Computes lifespans of feature values.
///
/// The interval runs from the producer's position to the last reader's
/// position; a value with no readers (e.g. the network output) lives
/// only at its defining step.
#[must_use]
pub fn feature_lifespans<'a, I>(schedule: &Schedule, values: I) -> HashMap<ValueId, LiveInterval>
where
    I: IntoIterator<Item = &'a TensorValue>,
{
    values
        .into_iter()
        .map(|v| {
            let def = schedule.position(v.id.node());
            let last_use = v
                .readers
                .iter()
                .map(|&r| schedule.position(r))
                .max()
                .unwrap_or(def)
                .max(def);
            (v.id, LiveInterval::new(def, last_use))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueTable;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::zoo;

    #[test]
    fn interval_overlap_cases() {
        let a = LiveInterval::new(0, 5);
        let b = LiveInterval::new(5, 9);
        let c = LiveInterval::new(6, 7);
        assert!(a.overlaps(&b)); // shared endpoint counts
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert_eq!(a.len(), 6);
    }

    #[test]
    #[should_panic(expected = "before start")]
    fn reversed_interval_panics() {
        let _ = LiveInterval::new(3, 2);
    }

    #[test]
    fn schedule_positions_are_consistent() {
        let g = zoo::googlenet();
        let s = Schedule::new(&g);
        assert_eq!(s.len(), g.len());
        for rank in 0..s.len() {
            assert_eq!(s.position(s.at(rank)), rank);
        }
    }

    #[test]
    fn sequential_values_do_not_interfere() {
        // In GoogLeNet, inception_3a's branch output dies once 3b has
        // consumed it; it must not overlap 5b's branch outputs.
        let g = zoo::googlenet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(&g);
        let table = ValueTable::build(&g, &profile, Precision::Fix16);
        let s = Schedule::new(&g);
        let spans = feature_lifespans(&s, table.iter());
        let early = spans[&ValueId::Feature(g.node_by_name("inception_3a/1x1").unwrap().id())];
        let late = spans[&ValueId::Feature(g.node_by_name("inception_5b/1x1").unwrap().id())];
        assert!(!early.overlaps(&late));
    }

    #[test]
    fn branch_values_of_same_module_interfere() {
        let g = zoo::googlenet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(&g);
        let table = ValueTable::build(&g, &profile, Precision::Fix16);
        let s = Schedule::new(&g);
        let spans = feature_lifespans(&s, table.iter());
        let b1 = spans[&ValueId::Feature(g.node_by_name("inception_3a/1x1").unwrap().id())];
        let b2 = spans[&ValueId::Feature(g.node_by_name("inception_3a/3x3").unwrap().id())];
        assert!(
            b1.overlaps(&b2),
            "parallel branches are simultaneously live"
        );
    }

    #[test]
    fn minimizing_liveness_schedule_is_valid() {
        for g in [zoo::googlenet(), zoo::inception_v4(), zoo::resnet50()] {
            let s = Schedule::minimizing_liveness(&g);
            assert!(s.is_valid_for(&g), "{}: dependencies violated", g.name());
            assert!(Schedule::new(&g).is_valid_for(&g));
            assert_eq!(s.len(), g.len());
        }
    }

    #[test]
    fn minimizing_liveness_shortens_adversarial_lifespans() {
        use lcmm_graph::{ConvParams, GraphBuilder};
        // Construction order deliberately stretches a huge tensor's
        // lifespan: its consumer is inserted after a long unrelated
        // chain, so id-order scheduling keeps the big tensor live the
        // whole time. The liveness-aware scheduler should consume it
        // immediately.
        let mut b = GraphBuilder::new("adversarial");
        let x = b.input(crate::liveness::tests::shape(64, 56));
        let big = b
            .conv("big", x, ConvParams::square(512, 3, 1, 1))
            .expect("big");
        // Long unrelated chain of *large* tensors from the input: under
        // id order, `big` stays live across all of them.
        let mut chain = x;
        for i in 0..8 {
            chain = b
                .conv(format!("chain{i}"), chain, ConvParams::pointwise(256))
                .expect("chain");
        }
        // The big tensor's only consumer, inserted last.
        let sink = b
            .conv("sink", big, ConvParams::square(32, 3, 2, 1))
            .expect("sink");
        let merged = b
            .conv("post", sink, ConvParams::pointwise(32))
            .expect("post");
        let _ = chain;
        let g = b.finish(merged).expect("valid");

        let table = value_table(&g);
        let peak = |schedule: &Schedule| -> u64 {
            let features: Vec<&crate::value::TensorValue> = table
                .iter()
                .filter(|v| v.id.kind() == crate::value::ValueKind::Feature)
                .collect();
            let spans = feature_lifespans(schedule, features.iter().copied());
            let mut deltas: Vec<(usize, i64)> = Vec::new();
            for v in &features {
                let iv = spans[&v.id];
                deltas.push((iv.start, v.bytes as i64));
                deltas.push((iv.end + 1, -(v.bytes as i64)));
            }
            deltas.sort_unstable();
            let (mut cur, mut peak) = (0i64, 0i64);
            for (_, d) in deltas {
                cur += d;
                peak = peak.max(cur);
            }
            peak as u64
        };
        let topo_peak = peak(&Schedule::new(&g));
        let min_peak = peak(&Schedule::minimizing_liveness(&g));
        assert!(
            min_peak < topo_peak,
            "expected liveness-aware schedule to cut peak: {min_peak} vs {topo_peak}"
        );
    }

    #[test]
    fn minimizing_liveness_never_hurts_peak_on_zoo() {
        for g in [zoo::googlenet(), zoo::inception_v4()] {
            let table = value_table(&g);
            let peak = |schedule: &Schedule| -> i64 {
                let spans = feature_lifespans(schedule, table.feature_candidates());
                let mut deltas: Vec<(usize, i64)> = Vec::new();
                for v in table.feature_candidates() {
                    let iv = spans[&v.id];
                    deltas.push((iv.start, v.bytes as i64));
                    deltas.push((iv.end + 1, -(v.bytes as i64)));
                }
                deltas.sort_unstable();
                let (mut cur, mut pk) = (0i64, 0i64);
                for (_, d) in deltas {
                    cur += d;
                    pk = pk.max(cur);
                }
                pk
            };
            assert!(
                peak(&Schedule::minimizing_liveness(&g)) <= peak(&Schedule::new(&g)),
                "{}",
                g.name()
            );
        }
    }

    fn value_table(g: &Graph) -> ValueTable {
        let design = AccelDesign::explore(g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(g);
        ValueTable::build(g, &profile, Precision::Fix16)
    }

    pub(crate) fn shape(c: usize, hw: usize) -> crate::liveness::tests::FS {
        lcmm_graph::FeatureShape::new(c, hw, hw)
    }

    pub(crate) type FS = lcmm_graph::FeatureShape;

    #[test]
    fn def_after_last_reader_is_clamped() {
        // The output value has no readers; its interval is a point.
        let g = zoo::alexnet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(&g);
        let table = ValueTable::build(&g, &profile, Precision::Fix16);
        let s = Schedule::new(&g);
        let spans = feature_lifespans(&s, table.iter());
        let out = spans[&ValueId::Feature(g.output_node().id())];
        assert_eq!(out.start, out.end);
    }
}
