//! Layer Conscious Memory Management (LCMM) — the paper's contribution.
//!
//! LCMM decides, at compile time, which tensors of a DNN live in the
//! FPGA's on-chip SRAM and which stream through DRAM, so that the
//! memory-bound layers stop waiting on transfers. It combines four
//! passes (paper Fig. 4):
//!
//! 1. [`liveness`]/[`interference`] — feature tensors with disjoint
//!    lifespans share one *virtual buffer* (graph coloring minimising
//!    total bytes);
//! 2. [`prefetch`] — weights of memory-bound layers are fetched early
//!    enough to hide their load time; disjoint prefetch spans also share
//!    buffers;
//! 3. [`alloc`] — the DNNK knapsack assigns physical on-chip storage to
//!    the virtual buffers, maximising latency reduction under the SRAM
//!    budget with pivot compensation;
//! 4. [`splitting`] — spilled buffers whose members have very unequal
//!    value get split and retried.
//!
//! # Quick tour
//!
//! ```
//! use lcmm_core::{PlanRequest, UmmBaseline};
//! use lcmm_fpga::{Device, Precision};
//!
//! let graph = lcmm_graph::zoo::googlenet();
//! let device = Device::vu9p();
//! let umm = UmmBaseline::build(&graph, &device, Precision::Fix16);
//! let lcmm = PlanRequest::new(&graph, &device, Precision::Fix16)
//!     .run()
//!     .expect("googlenet fits the VU9P DSP budget");
//!
//! assert!(lcmm.latency <= umm.latency, "LCMM must never lose to UMM");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod calibrate;
pub mod cancel;
pub mod coplan;
pub mod delta;
pub mod design_space;
pub mod energy;
pub mod error;
pub mod eval;
pub mod fusion;
pub mod harness;
pub mod interference;
pub mod liveness;
pub mod manifest;
pub mod paper;
pub mod pipeline;
pub mod prefetch;
pub mod profiling;
pub mod report;
pub mod request;
pub mod splitting;
pub mod strategies;
pub mod umm;
pub mod value;

pub use lcmm_graph::fast_hash;

pub use cancel::CancelToken;
pub use coplan::{tenant_gain_curve, GainCurve};
pub use delta::PlanArtifacts;
pub use error::LcmmError;
pub use eval::{Evaluator, Residency};
pub use fusion::{FusedGroup, FusionMode, FusionPlan};
pub use harness::Harness;
pub use pipeline::{AllocatorKind, LcmmOptions, LcmmResult, Pipeline};
pub use prefetch::{StreamingMode, WeightMode, STREAM_PING_PONG_BYTES};
pub use profiling::PassStats;
pub use request::PlanRequest;
pub use umm::UmmBaseline;
pub use value::{TensorValue, ValueId, ValueKind, ValueTable};
