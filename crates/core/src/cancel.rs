//! Cooperative cancellation for pipeline runs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the
//! party that wants a run stopped (a serve worker enforcing a deadline,
//! a client disconnect) and the pipeline, which polls
//! [`CancelToken::check`] between passes. Cancellation is cooperative:
//! a pass that has already started runs to its next check point.

use crate::error::LcmmError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that never expires on its own; only [`CancelToken::cancel`]
    /// trips it.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally expires at `deadline`.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trips the token; every subsequent [`CancelToken::check`] fails
    /// with [`LcmmError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether the deadline (if any) has passed.
    #[must_use]
    pub fn is_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cooperative check point: explicit cancellation wins over
    /// deadline expiry when both apply.
    ///
    /// # Errors
    ///
    /// [`LcmmError::Cancelled`] after [`CancelToken::cancel`],
    /// [`LcmmError::DeadlineExceeded`] once the deadline has passed.
    pub fn check(&self) -> Result<(), LcmmError> {
        if self.is_cancelled() {
            return Err(LcmmError::Cancelled);
        }
        if self.is_expired() {
            return Err(LcmmError::DeadlineExceeded);
        }
        Ok(())
    }
}

/// Checks an optional token (the common pipeline-internal shape: `None`
/// means an uncancellable legacy call).
pub(crate) fn check_opt(token: Option<&CancelToken>) -> Result<(), LcmmError> {
    match token {
        Some(t) => t.check(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_passes_checks() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert!(!t.is_expired());
    }

    #[test]
    fn cancel_trips_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert_eq!(clone.check(), Err(LcmmError::Cancelled));
    }

    #[test]
    fn past_deadline_reports_timeout() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Err(LcmmError::DeadlineExceeded));
        // Explicit cancellation takes precedence over expiry.
        t.cancel();
        assert_eq!(t.check(), Err(LcmmError::Cancelled));
    }

    #[test]
    fn future_deadline_passes() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }
}
