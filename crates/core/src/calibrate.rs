//! Calibration fitting: recover the DDR access-efficiency knob from a
//! target headline.
//!
//! DESIGN.md fixes `DdrConfig::access_efficiency = 0.21` by hand; this
//! module is the reproducible procedure behind that number — a
//! bisection over the knob until a chosen workload's average LCMM
//! speedup matches a target (e.g. the paper's 1.36×). The suite-average
//! speedup is monotone decreasing in efficiency (more bandwidth → less
//! to recover), which makes bisection sound.

use crate::pipeline::compare;
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};

/// Result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The fitted access efficiency.
    pub access_efficiency: f64,
    /// The average speedup achieved at that efficiency.
    pub achieved_speedup: f64,
    /// The requested target.
    pub target_speedup: f64,
    /// Bisection iterations used.
    pub iterations: usize,
}

/// Average LCMM speedup of `workloads` at a given efficiency.
#[must_use]
pub fn average_speedup_at(
    workloads: &[(Graph, Precision)],
    base_device: &Device,
    access_efficiency: f64,
) -> f64 {
    let mut device = base_device.clone();
    device.ddr.access_efficiency = access_efficiency;
    let mut total = 0.0;
    for (graph, precision) in workloads {
        let (umm, lcmm) = compare(graph, &device, *precision);
        total += lcmm.speedup_over(umm.latency);
    }
    total / workloads.len().max(1) as f64
}

/// Bisects the efficiency knob until the average speedup of `workloads`
/// hits `target_speedup` within `tolerance`, or `max_iterations` runs
/// out.
///
/// # Panics
///
/// Panics if `workloads` is empty or `target_speedup` is not positive.
#[must_use]
pub fn fit_access_efficiency(
    workloads: &[(Graph, Precision)],
    base_device: &Device,
    target_speedup: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Calibration {
    assert!(
        !workloads.is_empty(),
        "calibration needs at least one workload"
    );
    assert!(target_speedup > 0.0, "target speedup must be positive");
    let (mut lo, mut hi) = (0.05f64, 1.0f64);
    let mut best = Calibration {
        access_efficiency: (lo + hi) / 2.0,
        achieved_speedup: 0.0,
        target_speedup,
        iterations: 0,
    };
    for i in 1..=max_iterations {
        let mid = (lo + hi) / 2.0;
        let achieved = average_speedup_at(workloads, base_device, mid);
        best = Calibration {
            access_efficiency: mid,
            achieved_speedup: achieved,
            target_speedup,
            iterations: i,
        };
        if (achieved - target_speedup).abs() <= tolerance {
            break;
        }
        // Speedup decreases with efficiency: too-high speedup means the
        // knob is too low.
        if achieved > target_speedup {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn speedup_is_monotone_in_efficiency() {
        let workloads = vec![(zoo::googlenet(), Precision::Fix16)];
        let device = Device::vu9p();
        let hi_bw = average_speedup_at(&workloads, &device, 0.6);
        let lo_bw = average_speedup_at(&workloads, &device, 0.15);
        assert!(
            lo_bw > hi_bw,
            "scarce bandwidth must help LCMM: {lo_bw} vs {hi_bw}"
        );
    }

    #[test]
    fn bisection_recovers_a_known_point() {
        // Measure the speedup at a known knob value, then ask the
        // fitter to find a knob reproducing it.
        let workloads = vec![(zoo::googlenet(), Precision::Fix16)];
        let device = Device::vu9p();
        let reference = average_speedup_at(&workloads, &device, 0.21);
        let fit = fit_access_efficiency(&workloads, &device, reference, 0.02, 12);
        assert!(
            (fit.achieved_speedup - reference).abs() <= 0.05,
            "fit {fit:?} vs reference {reference}"
        );
        assert!((fit.access_efficiency - 0.21).abs() < 0.08, "fit {fit:?}");
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_workloads_panic() {
        let _ = fit_access_efficiency(&[], &Device::vu9p(), 1.3, 0.01, 4);
    }
}
