//! Tensor values: the allocation units of LCMM.
//!
//! A *value* is a tensor that physically holds bytes during inference:
//! either the feature map materialised by one node, or the weights of
//! one conv/FC layer. Concat outputs are not values — concatenation is
//! address aliasing on this architecture, so "the concat's tensor" is
//! the set of its source values (see
//! `lcmm_fpga::resolved_sources`).
//!
//! The paper's tables (Fig. 7) index tensors as `t_d(i)` per node and
//! data source; a feature value here unifies the producer's `of` tensor
//! with every consumer's `if` view of the same data, which is what the
//! hardware actually allocates.

use lcmm_fpga::{GraphProfile, Precision};
use lcmm_graph::fast_hash::FxHashMap;
use lcmm_graph::{Graph, NodeId, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of data a value holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueKind {
    /// A feature map (activation) tensor.
    Feature,
    /// A weight tensor.
    Weight,
}

/// Identifier of a tensor value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueId {
    /// The feature map produced by this node.
    Feature(NodeId),
    /// The weights owned by this node.
    Weight(NodeId),
}

impl ValueId {
    /// The node this value belongs to.
    #[must_use]
    pub fn node(self) -> NodeId {
        match self {
            ValueId::Feature(n) | ValueId::Weight(n) => n,
        }
    }

    /// The value's kind.
    #[must_use]
    pub fn kind(self) -> ValueKind {
        match self {
            ValueId::Feature(_) => ValueKind::Feature,
            ValueId::Weight(_) => ValueKind::Weight,
        }
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueId::Feature(n) => write!(f, "f({n})"),
            ValueId::Weight(n) => write!(f, "w({n})"),
        }
    }
}

/// One tensor value and everything the memory manager needs to know
/// about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorValue {
    /// The value's identity.
    pub id: ValueId,
    /// Size in bytes at the design's precision.
    pub bytes: u64,
    /// Nodes that read this value (resolved through concats). For a
    /// weight value this is just the owning layer.
    pub readers: Vec<NodeId>,
    /// Whether the value may be placed on-chip at all. The network input
    /// (arrives from the host via DRAM) and the final output (must be
    /// returned via DRAM) are not allocatable.
    pub allocatable: bool,
    /// Whether any node touching this value is memory bound — the
    /// paper's candidate filter: compute-bound tensors "are not included
    /// in the interference graph".
    pub touches_memory_bound: bool,
}

/// All values of a graph, with lookup by id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueTable {
    values: Vec<TensorValue>,
    index: FxHashMap<ValueId, usize>,
}

impl ValueTable {
    /// Extracts the value set of `graph` at `precision` (batch 1), using
    /// `profile` to mark which values touch memory-bound nodes.
    #[must_use]
    pub fn build(graph: &Graph, profile: &GraphProfile, precision: Precision) -> Self {
        Self::build_batched(graph, profile, precision, 1)
    }

    /// Like [`ValueTable::build`] for a batched design: feature tensors
    /// hold `batch` images' activations, weights are shared.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn build_batched(
        graph: &Graph,
        profile: &GraphProfile,
        precision: Precision,
        batch: usize,
    ) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        let mut values = Vec::new();
        // Readers of each non-concat node's output, resolved through
        // concats: start from the raw consumer lists and push reads
        // through concat nodes.
        let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); graph.len()];
        for node in graph.iter() {
            for source in lcmm_fpga::resolved_sources(graph, node) {
                readers[source.index()].push(node.id());
            }
        }
        let output_value = resolve_output_values(graph);
        // Boundedness per node, computed once: the per-reader probe
        // below would otherwise re-derive it once per edge.
        let memory_bound: Vec<bool> = graph
            .iter()
            .map(|n| node_touches_memory_bound(graph, profile, n.id()))
            .collect();
        for node in graph.iter() {
            if matches!(node.op(), OpKind::Concat) {
                continue;
            }
            let id = ValueId::Feature(node.id());
            let is_input = matches!(node.op(), OpKind::Input);
            let is_output = output_value.contains(&node.id());
            // The reader lists are consumed here; taking them avoids a
            // clone per value.
            let node_readers = std::mem::take(&mut readers[node.id().index()]);
            let touches_memory_bound = memory_bound[node.id().index()]
                || node_readers.iter().any(|&r| memory_bound[r.index()]);
            values.push(TensorValue {
                id,
                bytes: batch as u64 * precision.tensor_bytes(node.output_shape().elems()),
                readers: node_readers,
                allocatable: !is_input && !is_output,
                touches_memory_bound,
            });
            if node.op().has_weights() {
                values.push(TensorValue {
                    id: ValueId::Weight(node.id()),
                    bytes: precision.tensor_bytes(graph.node_weight_elems(node.id())),
                    readers: vec![node.id()],
                    allocatable: true,
                    touches_memory_bound: memory_bound[node.id().index()],
                });
            }
        }
        let index = values.iter().enumerate().map(|(i, v)| (v.id, i)).collect();
        Self { values, index }
    }

    /// Looks a value up by id.
    #[must_use]
    pub fn get(&self, id: ValueId) -> Option<&TensorValue> {
        self.index.get(&id).map(|&i| &self.values[i])
    }

    /// Iterates over all values.
    pub fn iter(&self) -> impl Iterator<Item = &TensorValue> {
        self.values.iter()
    }

    /// Number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Allocatable feature values that touch a memory-bound node — the
    /// candidates for feature buffer reuse (§3.1).
    pub fn feature_candidates(&self) -> impl Iterator<Item = &TensorValue> {
        self.values.iter().filter(|v| {
            v.id.kind() == ValueKind::Feature && v.allocatable && v.touches_memory_bound
        })
    }

    /// Weight values of memory-bound layers — the candidates for weight
    /// prefetching and sharing (§3.2).
    pub fn weight_candidates(&self) -> impl Iterator<Item = &TensorValue> {
        self.values
            .iter()
            .filter(|v| v.id.kind() == ValueKind::Weight && v.allocatable && v.touches_memory_bound)
    }
}

/// Nodes whose feature value constitutes (part of) the network output:
/// the output node itself, or — when the output is a concat — the
/// concat's resolved sources.
fn resolve_output_values(graph: &Graph) -> Vec<NodeId> {
    let out = graph.output_node();
    if matches!(out.op(), OpKind::Concat) {
        lcmm_fpga::resolved_sources(graph, out)
    } else {
        vec![out.id()]
    }
}

fn node_touches_memory_bound(graph: &Graph, profile: &GraphProfile, id: NodeId) -> bool {
    // Boundedness is meaningful for nodes that actually move data; for
    // concat (free) it is always false.
    let row = profile.node(id);
    let _ = graph;
    row.worst_transfer() > row.compute
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_fpga::{AccelDesign, Device};
    use lcmm_graph::zoo;

    fn table(graph: &Graph) -> ValueTable {
        let design = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let profile = design.profile(graph);
        ValueTable::build(graph, &profile, Precision::Fix16)
    }

    #[test]
    fn concat_produces_no_value() {
        let g = zoo::googlenet();
        let t = table(&g);
        let cat = g.node_by_name("inception_3a/output").unwrap().id();
        assert!(t.get(ValueId::Feature(cat)).is_none());
    }

    #[test]
    fn branch_values_read_by_next_module() {
        let g = zoo::googlenet();
        let t = table(&g);
        let b1 = g.node_by_name("inception_3a/1x1").unwrap().id();
        let v = t.get(ValueId::Feature(b1)).unwrap();
        // 3a/1x1 feeds the concat, which is read by all of 3b's branch
        // heads and 3b's pool.
        assert!(v.readers.len() >= 4, "got {:?}", v.readers);
    }

    #[test]
    fn input_and_output_not_allocatable() {
        let g = zoo::alexnet();
        let t = table(&g);
        let input = g.node_by_name("input").unwrap().id();
        assert!(!t.get(ValueId::Feature(input)).unwrap().allocatable);
        let out = g.output_node().id();
        assert!(!t.get(ValueId::Feature(out)).unwrap().allocatable);
    }

    #[test]
    fn weights_exist_for_compute_layers_only() {
        let g = zoo::alexnet();
        let t = table(&g);
        let conv1 = g.node_by_name("conv1").unwrap().id();
        let pool1 = g.node_by_name("pool1").unwrap().id();
        assert!(t.get(ValueId::Weight(conv1)).is_some());
        assert!(t.get(ValueId::Weight(pool1)).is_none());
    }

    #[test]
    fn value_sizes_follow_precision() {
        let g = zoo::alexnet();
        let design = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let profile = design.profile(&g);
        let t8 = ValueTable::build(&g, &profile, Precision::Fix8);
        let t32 = ValueTable::build(&g, &profile, Precision::Float32);
        let conv1 = g.node_by_name("conv1").unwrap().id();
        let b8 = t8.get(ValueId::Feature(conv1)).unwrap().bytes;
        let b32 = t32.get(ValueId::Feature(conv1)).unwrap().bytes;
        assert_eq!(b32, 4 * b8);
    }

    #[test]
    fn candidates_are_subsets() {
        let g = zoo::inception_v4();
        let t = table(&g);
        let features = t.feature_candidates().count();
        let weights = t.weight_candidates().count();
        assert!(features > 0 && weights > 0);
        assert!(features + weights <= t.len());
        for v in t.feature_candidates() {
            assert!(v.allocatable && v.touches_memory_bound);
        }
    }

    #[test]
    fn value_id_accessors() {
        let id = ValueId::Weight(NodeId::new(3));
        assert_eq!(id.node().index(), 3);
        assert_eq!(id.kind(), ValueKind::Weight);
        assert_eq!(id.to_string(), "w(n3)");
    }
}
