//! Strategy analogues of the paper's Table 3 comparison designs.
//!
//! The paper compares LCMM against two end-to-end ResNet accelerators:
//!
//! * **Cloud-DNN** \[3\] — partitions the network across sub-accelerators
//!   and keeps *all* intermediate feature maps on chip, streaming
//!   weights from DRAM;
//! * **TGPA** \[17\] — a tile-grained pipeline that forwards feature
//!   tiles between accelerators on chip (features never round-trip
//!   through DRAM), at lower DSP utilisation.
//!
//! We reproduce the memory-management *strategies*, not the RTL: each
//! analogue exercises the same residency decision rule inside our
//! performance model, so Table 3's ordering can be regenerated.

use crate::eval::{Evaluator, Residency};
use crate::value::ValueTable;
use lcmm_fpga::{resources, AccelDesign, Device, Precision, ResourceReport};
use lcmm_graph::Graph;

/// A fully evaluated comparison strategy.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Strategy label for report rows.
    pub name: &'static str,
    /// The accelerator design used.
    pub design: AccelDesign,
    /// End-to-end latency, seconds.
    pub latency: f64,
    /// Total operations of one inference (2 × MACs).
    pub ops: u64,
    /// Resource utilisation.
    pub resources: ResourceReport,
}

impl StrategyResult {
    /// Achieved throughput, ops/s.
    #[must_use]
    pub fn throughput_ops(&self) -> f64 {
        self.ops as f64 / self.latency
    }

    /// Performance density in ops per DSP slice per cycle — the last
    /// row of Table 3.
    #[must_use]
    pub fn perf_density(&self) -> f64 {
        self.throughput_ops() / (self.resources.dsp_used as f64 * self.design.freq_hz)
    }
}

/// Cloud-DNN analogue: every intermediate feature map resident on chip
/// (largest-first until the SRAM cap), weights streamed from DRAM.
#[must_use]
pub fn cloud_dnn_like(graph: &Graph, device: &Device, precision: Precision) -> StrategyResult {
    // Cloud-DNN closes timing slightly higher than our LCMM designs
    // (214 MHz in Table 3); model with a 200 MHz clock.
    let design = AccelDesign::explore(graph, device, precision).with_frequency(200e6);
    let profile = design.profile(graph);
    let evaluator = Evaluator::new(graph, &profile);
    let values = ValueTable::build(graph, &profile, precision);

    // Keep all intermediate features on chip, no buffer sharing; when
    // the budget runs out, the largest remaining tensors stay in DRAM
    // (the design would simply not fit otherwise).
    let mut features: Vec<&crate::value::TensorValue> = values
        .iter()
        .filter(|v| v.id.kind() == crate::value::ValueKind::Feature && v.allocatable)
        .collect();
    features.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.id.cmp(&b.id)));
    let budget = design.tensor_sram_budget();
    let mut residency = Residency::new();
    let mut used = 0;
    let mut buffer_sizes = Vec::new();
    for v in features {
        if used + v.bytes <= budget {
            residency.insert(v.id);
            used += v.bytes;
            buffer_sizes.push(v.bytes);
        }
    }
    let latency = evaluator.total_latency(&residency);
    let resources = resources::report(&design, &buffer_sizes);
    StrategyResult {
        name: "cloud-dnn-like",
        design,
        latency,
        ops: 2 * graph.total_macs(),
        resources,
    }
}

/// TGPA analogue: feature tiles stream between pipelined accelerators —
/// features never touch DRAM and occupy only small inter-stage FIFOs —
/// but the heterogeneous pipeline leaves DSPs on the table (60 %
/// utilisation in Table 3) and weights stream from DRAM.
#[must_use]
pub fn tgpa_like(graph: &Graph, device: &Device, precision: Precision) -> StrategyResult {
    let design = AccelDesign::explore_with_dsp_fraction(graph, device, precision, 0.60)
        .with_frequency(200e6);
    let profile = design.profile(graph);
    let evaluator = Evaluator::new(graph, &profile);
    let values = ValueTable::build(graph, &profile, precision);

    // All allocatable features stream on chip.
    let residency: Residency = values
        .iter()
        .filter(|v| v.id.kind() == crate::value::ValueKind::Feature && v.allocatable)
        .map(|v| v.id)
        .collect();
    let latency = evaluator.total_latency(&residency);
    // Inter-stage FIFOs: one tile-depth buffer per streamed value.
    let fifo_bytes = 32 * 1024;
    let buffer_sizes = vec![fifo_bytes; residency.len()];
    let resources = resources::report(&design, &buffer_sizes);
    StrategyResult {
        name: "tgpa-like",
        design,
        latency,
        ops: 2 * graph.total_macs(),
        resources,
    }
}

/// The paper's stated future work (§4.2): TGPA's tile-grained feature
/// streaming *combined with* LCMM's weight prefetching and DNNK
/// allocation. Features never touch DRAM (FIFO-only storage) and the
/// remaining SRAM is spent on prefetch-shared weight buffers.
#[must_use]
pub fn tgpa_plus_lcmm(graph: &Graph, device: &Device, precision: Precision) -> StrategyResult {
    use crate::alloc::{dnnk, AllocProblem};
    use crate::interference::InterferenceGraph;
    use crate::liveness::Schedule;
    use crate::prefetch::PrefetchPlan;

    let design = AccelDesign::explore_with_dsp_fraction(graph, device, precision, 0.60)
        .with_frequency(200e6);
    let profile = design.profile(graph);
    let evaluator = Evaluator::new(graph, &profile);
    let values = ValueTable::build(graph, &profile, precision);
    let schedule = Schedule::new(graph);

    // Streamed features: resident for free (FIFOs only).
    let streaming: Residency = values
        .iter()
        .filter(|v| v.id.kind() == crate::value::ValueKind::Feature && v.allocatable)
        .map(|v| v.id)
        .collect();

    // Weight side: the full LCMM §3.2 + §3.3 treatment, with prefetch
    // hiding capacity computed on the streamed schedule.
    let plan = PrefetchPlan::build(
        &evaluator,
        &schedule,
        &streaming,
        values.weight_candidates(),
    );
    let spans = plan.intervals();
    let weight_graph = InterferenceGraph::new(
        values
            .weight_candidates()
            .filter(|v| spans.contains_key(&v.id))
            .map(|v| (v.id, v.bytes, spans[&v.id]))
            .collect(),
    );
    let buffers = weight_graph.color();
    let fifo_bytes = 32 * 1024u64;
    let fifo_total = fifo_bytes * streaming.len() as u64;
    let budget = design.tensor_sram_budget().saturating_sub(fifo_total);
    let problem = AllocProblem::new(&evaluator, &buffers, budget, &plan);
    let outcome = dnnk::allocate(&problem);

    let mut residency = streaming;
    for v in outcome.residency.iter() {
        residency.insert(*v);
    }
    for (buf, &chosen) in buffers.iter().zip(&outcome.chosen) {
        // Only shared (multi-member) buffers reload per inference and
        // pay exposure; single-member buffers are persistent.
        if chosen && buf.members.len() > 1 {
            for &m in &buf.members {
                if let crate::value::ValueId::Weight(node) = m {
                    residency.set_exposed_weight(node, problem.exposure_of(m));
                }
            }
        }
    }
    let latency = evaluator.total_latency(&residency);
    let mut buffer_sizes: Vec<u64> = buffers
        .iter()
        .zip(&outcome.chosen)
        .filter(|(_, &c)| c)
        .map(|(b, _)| b.bytes)
        .collect();
    buffer_sizes.extend(std::iter::repeat_n(
        fifo_bytes,
        values
            .iter()
            .filter(|v| v.id.kind() == crate::value::ValueKind::Feature && v.allocatable)
            .count(),
    ));
    let resources = resources::report(&design, &buffer_sizes);
    StrategyResult {
        name: "tgpa+lcmm",
        design,
        latency,
        ops: 2 * graph.total_macs(),
        resources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compare;
    use lcmm_graph::zoo;

    #[test]
    fn lcmm_beats_cloud_dnn_analogue_on_resnet50() {
        let g = zoo::resnet50();
        let device = Device::vu9p();
        let cloud = cloud_dnn_like(&g, &device, Precision::Fix16);
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let ratio = lcmm.throughput_ops() / cloud.throughput_ops();
        // Paper: 1.35x. Accept a generous band around it.
        assert!(ratio > 1.0, "LCMM should win, got ratio {ratio}");
        assert!(ratio < 2.5, "implausible ratio {ratio}");
    }

    #[test]
    fn lcmm_beats_tgpa_analogue_on_resnet152() {
        let g = zoo::resnet152();
        let device = Device::vu9p();
        let tgpa = tgpa_like(&g, &device, Precision::Fix16);
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let ratio = lcmm.throughput_ops() / tgpa.throughput_ops();
        // Paper: 1.12x.
        assert!(ratio > 1.0, "LCMM should win, got ratio {ratio}");
        assert!(ratio < 2.0, "implausible ratio {ratio}");
    }

    #[test]
    fn tgpa_has_higher_perf_density() {
        // The paper concedes TGPA's heterogeneous design is denser per
        // DSP; our analogue (fewer DSPs, features free) should show it.
        let g = zoo::resnet152();
        let device = Device::vu9p();
        let tgpa = tgpa_like(&g, &device, Precision::Fix16);
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let lcmm_density =
            lcmm.throughput_ops() / (lcmm.resources.dsp_used as f64 * lcmm.design.freq_hz);
        assert!(tgpa.perf_density() > 0.0 && lcmm_density > 0.0);
    }

    #[test]
    fn future_work_combination_beats_plain_tgpa() {
        // §4.2: "LCMM is orthogonal to the heterogeneous design
        // methodology which could be integrated ... to further improve
        // performance density."
        let g = zoo::resnet152();
        let device = Device::vu9p();
        let tgpa = tgpa_like(&g, &device, Precision::Fix16);
        let combined = tgpa_plus_lcmm(&g, &device, Precision::Fix16);
        assert!(
            combined.latency < tgpa.latency,
            "combined {} >= tgpa {}",
            combined.latency,
            tgpa.latency
        );
        // Same array, so the win shows up directly in perf density.
        assert!(combined.perf_density() > tgpa.perf_density());
    }

    #[test]
    fn future_work_combination_is_densest() {
        let g = zoo::resnet152();
        let device = Device::vu9p();
        let combined = tgpa_plus_lcmm(&g, &device, Precision::Fix16);
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let lcmm_density =
            lcmm.throughput_ops() / (lcmm.resources.dsp_used as f64 * lcmm.design.freq_hz);
        assert!(
            combined.perf_density() > lcmm_density,
            "combined density {} <= lcmm {}",
            combined.perf_density(),
            lcmm_density
        );
    }

    #[test]
    fn cloud_dnn_uses_more_sram_than_lcmm() {
        let g = zoo::resnet50();
        let device = Device::vu9p();
        let cloud = cloud_dnn_like(&g, &device, Precision::Fix16);
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let cloud_sram = cloud.resources.sram_util(&device);
        let lcmm_sram = lcmm.resources.sram_util(&device);
        // Both use a lot; cloud-dnn's "keep everything" should not use
        // less than LCMM's targeted allocation on this workload.
        assert!(cloud_sram > 0.3, "cloud sram {cloud_sram}");
        assert!(lcmm_sram > 0.3, "lcmm sram {lcmm_sram}");
    }
}
