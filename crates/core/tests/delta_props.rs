//! Property tests for incremental delta-planning: a budget-only replan
//! through [`lcmm_core::PlanArtifacts`] must be **bit-identical** to a
//! from-scratch [`lcmm_core::PlanRequest`] on every graph, option
//! variant, and budget — and the harness's artifact cache must behave
//! identically at any `--jobs` setting and never serve stale artifacts
//! across an invalidation.

use lcmm_core::{AllocatorKind, Harness, LcmmOptions, LcmmResult, PlanArtifacts, PlanRequest};
use lcmm_fpga::{AccelDesign, Device, Precision};
use lcmm_graph::{zoo, Graph};
use proptest::prelude::*;
use std::sync::Arc;

fn base(graph: &Graph) -> AccelDesign {
    AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16)
}

/// Everything observable about a result, bit-for-bit. Latency goes in
/// as raw bits (`-0.0 != 0.0` here, deliberately); the plan structures
/// without `PartialEq` go through their canonical JSON.
fn fingerprint(r: &LcmmResult) -> String {
    format!(
        "{:016x}|{}|{}|{}|{}|{}|{}",
        r.latency.to_bits(),
        r.split_iterations,
        serde_json::to_string(&r.chosen).expect("chosen serialises"),
        serde_json::to_string(&r.buffers).expect("buffers serialise"),
        serde_json::to_string(&r.residency).expect("residency serialises"),
        serde_json::to_string(&r.prefetch).expect("prefetch serialises"),
        serde_json::to_string(&r.resources).expect("resources serialise"),
    )
}

/// One of the pass/allocator variants whose front ends differ.
fn options_variant(sel: u8) -> LcmmOptions {
    match sel % 5 {
        0 => LcmmOptions::default(),
        1 => LcmmOptions::feature_reuse_only(),
        2 => LcmmOptions::weight_prefetch_only(),
        3 => LcmmOptions::default().with_allocator(AllocatorKind::Greedy),
        _ => LcmmOptions::default().with_splitting(false),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core tentpole property: for random graphs, random option
    /// variants, and a budget sweep spanning zero, sub-saturation,
    /// exact, and past-saturation budgets, replaying cached artifacts
    /// is byte-for-byte the scratch pipeline.
    #[test]
    fn replan_is_bit_identical_to_scratch(
        depth in 2usize..7,
        branching in 1usize..4,
        seed in any::<u64>(),
        sel in any::<u8>(),
    ) {
        let g = zoo::synthetic(depth, branching, seed);
        let options = options_variant(sel);
        let artifacts = PlanArtifacts::build(&g, base(&g), options, None).unwrap();
        let full = artifacts.design().tensor_sram_budget();
        let budgets = [
            None,
            Some(0),
            Some(1),
            Some(full / 3 + 1),
            Some(full),
            Some(full.saturating_mul(2)),
        ];
        for budget in budgets {
            let delta = artifacts.replan_with_budget(&g, budget, None).unwrap();
            let scratch = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(options.with_tensor_budget(budget))
                .with_design(base(&g))
                .run()
                .unwrap();
            prop_assert_eq!(
                fingerprint(&delta),
                fingerprint(&scratch),
                "budget {:?} diverged on {}-node graph (variant {})",
                budget,
                g.len(),
                sel % 5
            );
        }
    }
}

/// The artifact cache is oblivious to the worker count: a single-job
/// harness replanning sequentially and a 4-job harness replanning
/// through `par_map` produce bit-identical results from exactly one
/// front-end build each.
#[test]
fn replans_are_deterministic_across_jobs() {
    let g = zoo::alexnet();
    let serial = Harness::new(1);
    let threaded = Harness::new(4);
    let design = serial
        .try_design(&g, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let full = {
        // Budgets are against the derated design, same as the CLI path.
        let artifacts =
            PlanArtifacts::build(&g, (*design).clone(), LcmmOptions::default(), None).unwrap();
        artifacts.design().tensor_sram_budget()
    };
    let budgets: Vec<Option<u64>> = vec![
        None,
        Some(0),
        Some(full / 4),
        Some(full / 2),
        Some(3 * full / 4),
        Some(full),
    ];
    let from_serial: Vec<String> = budgets
        .iter()
        .map(|&b| {
            let r = serial
                .try_replan_with_budget(&g, &design, LcmmOptions::default(), b, None)
                .unwrap();
            fingerprint(&r)
        })
        .collect();
    let design4 = threaded
        .try_design(&g, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let from_threads: Vec<String> = threaded
        .par_map(&budgets, |&b| {
            let r = threaded
                .try_replan_with_budget(&g, &design4, LcmmOptions::default(), b, None)
                .unwrap();
            fingerprint(&r)
        })
        .into_iter()
        .collect();
    assert_eq!(from_serial, from_threads, "jobs=1 and jobs=4 diverged");
    let stats = serial.cache_stats();
    assert_eq!(
        stats.artifact_misses, 1,
        "every budget must share the single artifact build"
    );
    assert_eq!(stats.artifact_hits, budgets.len() - 1);
    // Concurrent first-misses may legitimately build twice (the cache
    // deduplicates the stored Arc, not the computation), but every
    // lookup is accounted for and most are hits.
    let stats = threaded.cache_stats();
    assert!(stats.artifact_misses >= 1);
    assert_eq!(stats.artifact_hits + stats.artifact_misses, budgets.len());
}

/// After `invalidate_graph`, the harness rebuilds the artifacts rather
/// than serving the dropped ones — reproducing the same bits — while
/// artifacts of other graphs survive untouched.
#[test]
fn invalidation_never_serves_stale_artifacts() {
    let g = zoo::alexnet();
    let other = zoo::squeezenet();
    let harness = Harness::new(2);
    let design = harness
        .try_design(&g, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let other_design = harness
        .try_design(&other, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let before = harness
        .try_replan_with_budget(&g, &design, LcmmOptions::default(), Some(1 << 20), None)
        .unwrap();
    let other_before = harness
        .try_replan_with_budget(&other, &other_design, LcmmOptions::default(), None, None)
        .unwrap();
    assert_eq!(harness.cache_stats().artifact_misses, 2);

    let dropped = harness.invalidate_graph(&g);
    assert!(dropped > 0, "alexnet entries must be evicted");

    // Same request again: a fresh Arc (recomputed, not replayed) with
    // identical bits.
    let design_again = harness
        .try_design(&g, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let after = harness
        .try_replan_with_budget(
            &g,
            &design_again,
            LcmmOptions::default(),
            Some(1 << 20),
            None,
        )
        .unwrap();
    assert!(!Arc::ptr_eq(&before, &after), "stale result served");
    assert_eq!(fingerprint(&before), fingerprint(&after));
    assert_eq!(
        harness.cache_stats().artifact_misses,
        3,
        "the invalidated artifact set must be rebuilt"
    );

    // The other graph's caches were untouched: replaying is a pure hit.
    let other_after = harness
        .try_replan_with_budget(&other, &other_design, LcmmOptions::default(), None, None)
        .unwrap();
    assert!(Arc::ptr_eq(&other_before, &other_after));
    assert_eq!(harness.cache_stats().artifact_misses, 3);
}
