//! Property tests over the LCMM passes on randomly generated graphs.

use lcmm_core::alloc::{dnnk, dnnk_iterative, AllocProblem};
use lcmm_core::interference::InterferenceGraph;
use lcmm_core::liveness::{feature_lifespans, Schedule};
use lcmm_core::manifest::AllocationManifest;
use lcmm_core::pipeline::compare;
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::value::ValueTable;
use lcmm_core::{Evaluator, Residency};
use lcmm_fpga::{AccelDesign, Device, Precision};
use lcmm_graph::{ConvParams, FeatureShape, Graph, GraphBuilder};
use proptest::prelude::*;

/// Random valid graph: a chain with occasional forks and residuals.
fn build(steps: &[(u8, u8)]) -> Graph {
    let mut b = GraphBuilder::new("prop");
    let mut cur = b.input(FeatureShape::new(16, 14, 14)).expect("input");
    for (i, &(sel, c)) in steps.iter().enumerate() {
        let channels = 8 + (c as usize % 64) * 8;
        let shape = b.shape(cur).expect("exists");
        cur = match sel % 4 {
            0 => b
                .conv(format!("c{i}"), cur, ConvParams::pointwise(channels))
                .expect("ok"),
            1 => b
                .conv(format!("c{i}"), cur, ConvParams::square(channels, 3, 1, 1))
                .expect("ok"),
            2 => {
                let l = b
                    .conv(format!("l{i}"), cur, ConvParams::pointwise(channels))
                    .expect("ok");
                let r = b
                    .conv(format!("r{i}"), cur, ConvParams::square(channels, 3, 1, 1))
                    .expect("ok");
                b.concat(format!("cat{i}"), &[l, r]).expect("same spatial")
            }
            _ => {
                let f = b
                    .conv(
                        format!("f{i}"),
                        cur,
                        ConvParams::square(shape.channels, 3, 1, 1),
                    )
                    .expect("ok");
                b.eltwise_add(format!("add{i}"), &[cur, f])
                    .expect("same shape")
            }
        };
    }
    b.finish(cur).expect("acyclic by construction")
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((any::<u8>(), any::<u8>()), 2..12).prop_map(|s| build(&s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Prefetch plans never hide more than the schedule's idle weight-
    /// interface capacity, and exposure implies the backtrace hit the
    /// graph head.
    #[test]
    fn prefetch_invariants(graph in arb_graph()) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let ev = Evaluator::new(&graph, &profile);
        let values = ValueTable::build(&graph, &profile, Precision::Fix16);
        let schedule = Schedule::new(&graph);
        let r = Residency::new();
        let plan = PrefetchPlan::build(&ev, &schedule, &r, values.weight_candidates());
        let idle: f64 = (0..schedule.len())
            .map(|pos| {
                let n = schedule.at(pos);
                (ev.node_latency(n, &r) - profile.node(n).weight).max(0.0)
            })
            .sum();
        let hidden: f64 = plan.iter().map(|(_, e)| e.load_seconds - e.exposed_seconds).sum();
        prop_assert!(hidden <= idle + 1e-9);
        for (_, e) in plan.iter() {
            prop_assert!(e.start <= e.end);
            prop_assert!(e.exposed_seconds >= 0.0);
            if e.exposed_seconds > 0.0 {
                prop_assert_eq!(e.start, 0);
            }
        }
    }

    /// The full pipeline (vs UMM at the same clock) never loses, and
    /// its manifest is internally consistent.
    #[test]
    fn pipeline_and_manifest_invariants(graph in arb_graph()) {
        let device = Device::vu9p();
        let (_, lcmm) = compare(&graph, &device, Precision::Fix16);
        let lcmm_profile = lcmm.design.profile(&graph);
        prop_assert!(lcmm.latency <= lcmm_profile.total_latency() + 1e-12);

        let manifest = AllocationManifest::build(&graph, &lcmm);
        let mut cursor = 0;
        for buf in &manifest.buffers {
            prop_assert_eq!(buf.base, cursor);
            cursor += buf.bytes;
            for t in &buf.tensors {
                prop_assert!(t.bytes <= buf.bytes);
            }
        }
        prop_assert_eq!(manifest.total_bytes, cursor);
        prop_assert!(manifest.total_bytes <= manifest.budget_bytes);
    }

    /// Both coloring algorithms are conflict-free and byte-bounded on
    /// random feature interference graphs.
    #[test]
    fn both_colorings_sound(graph in arb_graph()) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let values = ValueTable::build(&graph, &profile, Precision::Fix16);
        let schedule = Schedule::new(&graph);
        let spans = feature_lifespans(&schedule, values.iter());
        let items: Vec<_> = values
            .iter()
            .filter(|v| v.allocatable)
            .map(|v| (v.id, v.bytes, spans[&v.id]))
            .collect();
        let no_share: u64 = items.iter().map(|(_, b, _)| *b).sum();
        let ig = InterferenceGraph::new(items);
        for buffers in [ig.color(), ig.color_chaitin()] {
            let total: u64 = buffers.iter().map(|b| b.bytes).sum();
            prop_assert!(total <= no_share);
            for buf in &buffers {
                for (i, &a) in buf.members.iter().enumerate() {
                    for &b in &buf.members[i + 1..] {
                        prop_assert!(!ig.interferes(a, b));
                    }
                }
            }
        }
    }

    /// The iterated allocator never loses to single-pass DNNK.
    #[test]
    fn iteration_never_hurts(graph in arb_graph(), budget_mb in 1u64..16) {
        let device = Device::vu9p();
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        let profile = design.profile(&graph);
        let ev = Evaluator::new(&graph, &profile);
        let values = ValueTable::build(&graph, &profile, Precision::Fix16);
        let schedule = Schedule::new(&graph);
        let plan = PrefetchPlan::build(&ev, &schedule, &Residency::new(), values.weight_candidates());
        let spans = feature_lifespans(&schedule, values.feature_candidates());
        let ig = InterferenceGraph::new(
            values.feature_candidates().map(|v| (v.id, v.bytes, spans[&v.id])).collect(),
        );
        let buffers = ig.color();
        prop_assume!(!buffers.is_empty());
        let problem = AllocProblem::new(&ev, &buffers, budget_mb << 20, &plan);
        let single = dnnk::allocate(&problem);
        let iterated = dnnk_iterative::allocate(&problem);
        prop_assert!(iterated.latency <= single.latency + 1e-15);
        prop_assert!(iterated.bytes <= budget_mb << 20);
    }
}
