//! Property tests for per-layer weight streaming (AutoWS).
//!
//! Three guarantees keep streaming safe to leave enabled everywhere:
//! forcing every mode to `Pinned` must reproduce the legacy (streaming
//! off) plans **bit-identically** on arbitrary graphs, allocators and
//! budgets; mode selection must be oblivious to the harness worker
//! count; and an `Auto` plan must respect the knapsack budget with its
//! *occupied* (mode-aware) bytes.

use lcmm_core::{
    AllocatorKind, Harness, LcmmOptions, LcmmResult, PlanRequest, StreamingMode, WeightMode,
};
use lcmm_fpga::{AccelDesign, Device, Precision};
use lcmm_graph::{zoo, Graph};
use proptest::prelude::*;

fn base(graph: &Graph) -> AccelDesign {
    AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16)
}

/// Everything observable about a result, bit-for-bit, including the
/// per-buffer weight-mode table (via its stable labels — `WeightMode`
/// deliberately has no serde impl).
fn fingerprint(r: &LcmmResult) -> String {
    let modes: Vec<String> = r.weight_modes.iter().map(WeightMode::label).collect();
    format!(
        "{:016x}|{}|{}|{}|{}|{}|{}",
        r.latency.to_bits(),
        r.split_iterations,
        modes.join(","),
        serde_json::to_string(&r.chosen).expect("chosen serialises"),
        serde_json::to_string(&r.buffers).expect("buffers serialise"),
        serde_json::to_string(&r.residency).expect("residency serialises"),
        serde_json::to_string(&r.prefetch).expect("prefetch serialises"),
    )
}

fn plan(
    graph: &Graph,
    allocator: AllocatorKind,
    streaming: StreamingMode,
    budget: Option<u64>,
) -> LcmmResult {
    PlanRequest::new(graph, &Device::vu9p(), Precision::Fix16)
        .options(
            LcmmOptions::default()
                .with_allocator(allocator)
                .with_weight_streaming(streaming)
                .with_tensor_budget(budget),
        )
        .with_design(base(graph))
        .run()
        .expect("an explored design is always feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forcing every weight to `Pinned` walks the mode-aware DP instead
    /// of the legacy column loop, yet must land on the same plan to the
    /// last bit — on random graphs, across allocators, and across a
    /// budget sweep spanning zero, sub-unit, partial and full budgets.
    #[test]
    fn forced_pinned_is_bit_identical_to_off(
        depth in 2usize..7,
        branching in 1usize..4,
        seed in any::<u64>(),
        alloc_sel in any::<u8>(),
    ) {
        let g = zoo::synthetic(depth, branching, seed);
        let allocator = [
            AllocatorKind::Dnnk,
            AllocatorKind::DnnkIterative,
            AllocatorKind::Greedy,
        ][alloc_sel as usize % 3];
        let full = base(&g).tensor_sram_budget();
        for budget in [None, Some(0), Some(36 * 1024 - 1), Some(full / 5 + 1), Some(full / 2)] {
            let off = plan(&g, allocator, StreamingMode::Off, budget);
            let pinned = plan(&g, allocator, StreamingMode::Pinned, budget);
            prop_assert!(
                pinned.weight_modes.iter().all(|m| matches!(m, WeightMode::Pinned)),
                "forced-pinned plan reported a non-pinned mode"
            );
            prop_assert_eq!(
                fingerprint(&off),
                fingerprint(&pinned),
                "budget {:?} with {:?} diverged on {}-node graph",
                budget,
                allocator,
                g.len()
            );
        }
    }

    /// An `Auto` plan never spends more *occupied* SRAM than the budget
    /// the knapsack was given, even at degenerate budgets, and never
    /// plans worse than the pinned-only plan of the same budget.
    #[test]
    fn auto_fits_budget_and_never_regresses(
        depth in 2usize..7,
        branching in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = zoo::synthetic(depth, branching, seed);
        let full = base(&g).tensor_sram_budget();
        for budget in [Some(0), Some(36 * 1024), Some(full / 8), Some(full / 2)] {
            let auto = plan(&g, AllocatorKind::Dnnk, StreamingMode::Auto, budget);
            let off = plan(&g, AllocatorKind::Dnnk, StreamingMode::Off, budget);
            let occupied: u64 = auto.occupied_buffer_sizes().iter().sum();
            let effective = budget.unwrap().min(auto.design.tensor_sram_budget());
            prop_assert!(
                occupied <= effective,
                "occupied {} B over budget {} B",
                occupied,
                effective
            );
            prop_assert!(
                auto.latency <= off.latency + 1e-12,
                "auto ({}) planned worse than pinned-only ({})",
                auto.latency,
                off.latency
            );
        }
    }
}

/// Mode selection is oblivious to the worker count: a single-job
/// harness and a 4-job harness replanning the same tiny budgets with
/// AutoWS produce bit-identical plans and identical mode tables.
#[test]
fn mode_selection_is_deterministic_across_jobs() {
    let g = zoo::alexnet();
    let options = LcmmOptions::default().with_weight_streaming(StreamingMode::Auto);
    let serial = Harness::new(1);
    let threaded = Harness::new(4);
    let design = serial
        .try_design(&g, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let full = design.tensor_sram_budget();
    let budgets: Vec<Option<u64>> = vec![
        Some(36 * 1024),
        Some(1 << 20),
        Some(full / 8),
        Some(full / 2),
        None,
    ];
    let from_serial: Vec<String> = budgets
        .iter()
        .map(|&b| {
            let r = serial
                .try_replan_with_budget(&g, &design, options, b, None)
                .unwrap();
            fingerprint(&r)
        })
        .collect();
    let design4 = threaded
        .try_design(&g, &Device::vu9p(), Precision::Fix16)
        .unwrap();
    let from_threads: Vec<String> = threaded
        .par_map(&budgets, |&b| {
            let r = threaded
                .try_replan_with_budget(&g, &design4, options, b, None)
                .unwrap();
            fingerprint(&r)
        })
        .into_iter()
        .collect();
    assert_eq!(from_serial, from_threads, "jobs=1 and jobs=4 diverged");
    // The tiny budgets must actually exercise streaming, or this test
    // proves nothing about mode selection.
    assert!(
        from_serial
            .iter()
            .any(|f| f.contains("streamed") || f.contains("partial")),
        "no tiny budget picked a non-pinned mode: {from_serial:?}"
    );
}
