//! Property and acceptance tests for fused-layer planning.
//!
//! Three guarantees: `fusion = Off` leaves every plan bit-identical to
//! the legacy pipeline across random graphs × allocators × budgets;
//! fused delta replays through [`lcmm_core::PlanArtifacts`] equal
//! from-scratch fused plans at every budget; and on tight SRAM budgets
//! (≤ 1/8× of VU9P) `fusion = auto` strictly reduces both the analytic
//! total latency and the off-chip transfer time on the shortcut-heavy
//! zoo networks — the headline win of the subsystem.

use lcmm_core::{
    AllocatorKind, Evaluator, FusionMode, LcmmOptions, LcmmResult, PlanArtifacts, PlanRequest,
};
use lcmm_fpga::{AccelDesign, Device, Precision};
use lcmm_graph::{zoo, Graph};
use proptest::prelude::*;

fn base(graph: &Graph) -> AccelDesign {
    AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16)
}

/// Everything observable about a result, bit-for-bit (the delta_props
/// fingerprint plus the fusion plan).
fn fingerprint(r: &LcmmResult) -> String {
    format!(
        "{:016x}|{}|{}|{}|{}|{}|{}|{}",
        r.latency.to_bits(),
        r.split_iterations,
        serde_json::to_string(&r.chosen).expect("chosen serialises"),
        serde_json::to_string(&r.buffers).expect("buffers serialise"),
        serde_json::to_string(&r.residency).expect("residency serialises"),
        serde_json::to_string(&r.prefetch).expect("prefetch serialises"),
        serde_json::to_string(&r.resources).expect("resources serialise"),
        serde_json::to_string(&r.fusion).expect("fusion serialises"),
    )
}

fn allocator_variant(sel: u8) -> AllocatorKind {
    match sel % 3 {
        0 => AllocatorKind::Dnnk,
        1 => AllocatorKind::DnnkIterative,
        _ => AllocatorKind::Greedy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `fusion = Off` is the legacy pipeline: for random graphs,
    /// allocators, and a budget sweep, a request that spells the
    /// default out explicitly is byte-for-byte the request that never
    /// mentions fusion, and no fused groups leak into the result.
    #[test]
    fn off_is_bit_identical_to_legacy(
        depth in 2usize..7,
        branching in 1usize..4,
        seed in any::<u64>(),
        sel in any::<u8>(),
    ) {
        let g = zoo::synthetic(depth, branching, seed);
        let legacy = LcmmOptions::default().with_allocator(allocator_variant(sel));
        let explicit = legacy.with_fusion(FusionMode::Off);
        let full = base(&g).tensor_sram_budget();
        for budget in [None, Some(0), Some(full / 8), Some(full / 3 + 1), Some(full)] {
            let a = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(legacy.with_tensor_budget(budget))
                .with_design(base(&g))
                .run()
                .unwrap();
            let b = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(explicit.with_tensor_budget(budget))
                .with_design(base(&g))
                .run()
                .unwrap();
            prop_assert!(a.fusion.is_empty(), "legacy result carries fused groups");
            prop_assert_eq!(fingerprint(&a), fingerprint(&b), "budget {:?} diverged", budget);
        }
    }

    /// Fused delta replays are bit-identical to from-scratch fused
    /// plans at every budget: fusion is budget-invariant, so the
    /// cached front end (which embeds the plan) replays exactly.
    #[test]
    fn fused_replan_is_bit_identical_to_scratch(
        depth in 3usize..7,
        branching in 1usize..3,
        seed in any::<u64>(),
    ) {
        let g = zoo::synthetic(depth, branching, seed);
        let options = LcmmOptions::default().with_fusion(FusionMode::Auto);
        let artifacts = PlanArtifacts::build(&g, base(&g), options, None).unwrap();
        let full = artifacts.design().tensor_sram_budget();
        for budget in [None, Some(0), Some(full / 8), Some(full / 3 + 1), Some(full)] {
            let delta = artifacts.replan_with_budget(&g, budget, None).unwrap();
            let scratch = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(options.with_tensor_budget(budget))
                .with_design(base(&g))
                .run()
                .unwrap();
            prop_assert_eq!(
                fingerprint(&delta),
                fingerprint(&scratch),
                "budget {:?} diverged on {}-node graph",
                budget,
                g.len()
            );
        }
    }
}

/// The acceptance criterion of the fusion subsystem: on shortcut-heavy
/// zoo networks at a 1/8× SRAM budget, `fusion = auto` strictly
/// reduces both the analytic end-to-end latency and the off-chip
/// transfer time against the unfused pipeline.
#[test]
fn auto_strictly_beats_off_on_tight_budgets() {
    for graph in [zoo::resnet50(), zoo::mobilenet()] {
        let design = base(&graph);
        let budget = Some(design.tensor_sram_budget() / 8);
        let run = |mode: FusionMode| {
            PlanRequest::new(&graph, &Device::vu9p(), Precision::Fix16)
                .options(
                    LcmmOptions::default()
                        .with_fusion(mode)
                        .with_tensor_budget(budget),
                )
                .with_design(design.clone())
                .run()
                .unwrap()
        };
        let off = run(FusionMode::Off);
        let auto = run(FusionMode::Auto);
        assert!(!auto.fusion.is_empty(), "{}: no groups fused", graph.name());
        assert!(
            auto.latency < off.latency,
            "{}: fused latency {} !< unfused {}",
            graph.name(),
            auto.latency,
            off.latency
        );
        // Transfer time is measured against each plan's own latency
        // table (the fused table already has interior transfers
        // eliminated and halo re-loads inflated) under each plan's own
        // residency — the traffic the accelerator would actually move.
        let off_profile = off.design.profile(&graph);
        let off_transfer = Evaluator::new(&graph, &off_profile).transfer_seconds(&off.residency);
        let fused_profile = auto.fusion.apply(&auto.design.profile(&graph));
        let auto_transfer =
            Evaluator::new(&graph, &fused_profile).transfer_seconds(&auto.residency);
        assert!(
            auto_transfer < off_transfer,
            "{}: fused transfer {} !< unfused {}",
            graph.name(),
            auto_transfer,
            off_transfer
        );
    }
}

/// Fusion composes with the other pipeline modes: every allocator ×
/// streaming setting plans cleanly with fusion on, at degenerate
/// budgets included, and never loses to its own unfused twin by more
/// than the modelled recomputation bound at full budget.
#[test]
fn auto_plans_cleanly_across_modes_and_budgets() {
    use lcmm_core::StreamingMode;
    let g = zoo::resnet50();
    let design = base(&g);
    let full = design.tensor_sram_budget();
    for streaming in [StreamingMode::Off, StreamingMode::Auto] {
        for budget in [Some(0), Some(full / 8), Some(full / 2), None] {
            let result = PlanRequest::new(&g, &Device::vu9p(), Precision::Fix16)
                .options(
                    LcmmOptions::default()
                        .with_fusion(FusionMode::Auto)
                        .with_weight_streaming(streaming)
                        .with_tensor_budget(budget),
                )
                .with_design(design.clone())
                .run()
                .unwrap();
            assert!(
                result.latency.is_finite() && result.latency > 0.0,
                "{streaming:?}/{budget:?}: latency {}",
                result.latency
            );
            // No eliminated tensor may appear in the residency: it has
            // no bytes to pin.
            for value in result.residency.iter() {
                if let lcmm_core::ValueId::Feature(n) = value {
                    assert!(
                        !result.fusion.eliminates(*n),
                        "{streaming:?}/{budget:?}: eliminated tensor {n:?} resident"
                    );
                }
            }
        }
    }
}
