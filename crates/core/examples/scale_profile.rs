//! Prints per-pass timings of the pipeline on a synthetic scale graph.
//!
//! Usage: `cargo run --release -p lcmm-core --example scale_profile [depth]`

use lcmm_core::PlanRequest;
use lcmm_fpga::{Device, Precision};
use std::time::Instant;

fn main() {
    let depth: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let t = Instant::now();
    let g = lcmm_graph::zoo::synthetic(depth, 4, 7);
    println!("build graph ({} nodes): {:?}", g.len(), t.elapsed());

    let t = Instant::now();
    let device = Device::vu9p();
    let design = lcmm_fpga::AccelDesign::explore(&g, &device, Precision::Fix16);
    println!("explore design: {:?}", t.elapsed());

    let t = Instant::now();
    let result = PlanRequest::new(&g, &device, Precision::Fix16)
        .with_design(design)
        .run()
        .expect("explored design is feasible");
    println!("pipeline: {:?}", t.elapsed());
    let s = result.stats;
    println!("  profile_seconds     = {:.4}", s.profile_seconds);
    println!("  liveness_seconds    = {:.4}", s.liveness_seconds);
    println!("  prefetch_seconds    = {:.4}", s.prefetch_seconds);
    println!("  alloc_split_seconds = {:.4}", s.alloc_split_seconds);
    println!("  coloring_seconds    = {:.4}", s.coloring_seconds);
    println!("  reporting_seconds   = {:.4}", s.reporting_seconds);
    println!("  total_seconds       = {:.4}", s.total_seconds);
    println!("  evaluator_calls     = {}", s.evaluator_calls);
    println!("  dnnk_dp_cells       = {}", s.dnnk_dp_cells);
    println!("  allocator_invocations = {}", s.allocator_invocations);
    println!(
        "  gain cache: hits={} misses={} exact={}",
        s.gain_cache_hits, s.gain_cache_misses, s.gain_exact_recomputes
    );

    let schedule = lcmm_core::liveness::Schedule::new(&g);
    let t = Instant::now();
    let min = lcmm_core::liveness::Schedule::minimizing_liveness(&g);
    println!(
        "minimizing_liveness: {:?} ({} steps)",
        t.elapsed(),
        min.len()
    );
    drop(schedule);
}
