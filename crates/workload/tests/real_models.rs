//! Real-model acceptance tests: the bursty two-tenant trace against
//! actually co-planned zoo networks.
//!
//! These are the regression teeth behind the workload subsystem's two
//! headline claims: byte-identical reports at any `--jobs`, and an
//! adaptive controller that strictly beats *every* static share of the
//! grid on the builtin bursty trace.

use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_multi::{CoplanOptions, TenantSpec};
use lcmm_workload::{run_workload, ControllerConfig};
use serde_json::Value;

fn tenants(models: &[&str]) -> Vec<TenantSpec> {
    models
        .iter()
        .map(|&name| {
            let graph = lcmm_graph::zoo::by_name(name).expect("zoo model");
            TenantSpec::new(name.to_string(), graph, Precision::Fix16)
        })
        .collect()
}

#[test]
fn reports_are_byte_identical_across_jobs() {
    let device = Device::vu9p();
    let tenants = tenants(&["mobilenet", "alexnet"]);
    let controller = ControllerConfig::default().with_enabled(true);
    let opts = CoplanOptions::default().with_search_steps(4);
    let lines: Vec<String> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let harness = Harness::new(jobs);
            let report = run_workload(&harness, &device, &tenants, "bursty2", &controller, &opts)
                .expect("bursty2 runs");
            serde_json::to_string(&report).expect("report serialises")
        })
        .collect();
    assert_eq!(lines[0], lines[1], "--jobs must not change a single byte");
}

#[test]
fn controller_beats_every_static_share_on_bursty2() {
    let harness = Harness::new(4);
    let device = Device::vu9p();
    let tenants = tenants(&["mobilenet", "alexnet"]);
    let controller = ControllerConfig::default().with_enabled(true);
    let opts = CoplanOptions::default().with_search_steps(4);
    let report = run_workload(&harness, &device, &tenants, "bursty2", &controller, &opts)
        .expect("bursty2 runs");
    assert_eq!(
        report.get("controller_beats_best_static"),
        Some(&Value::Bool(true)),
        "the adaptive run must strictly beat the best static share"
    );
    // "Beats best" must mean beats *all*: check the full grid.
    let worst = report
        .get("worst_p99_seconds")
        .and_then(Value::as_f64)
        .expect("worst p99");
    let grid = report.get("grid").and_then(Value::as_array).expect("grid");
    assert!(grid.len() >= 3, "steps 4 must yield at least 3 shares");
    for (i, row) in grid.iter().enumerate() {
        let static_worst = row
            .get("worst_p99_seconds")
            .and_then(Value::as_f64)
            .expect("grid row p99");
        assert!(
            worst < static_worst,
            "static share {i} ({static_worst}) not beaten by the controller ({worst})"
        );
    }
    // The controller must actually have acted, within budget.
    let replans = report["controller"]
        .get("replans")
        .and_then(Value::as_u64)
        .expect("replans");
    assert!(replans >= 1, "the controller never switched");
    assert!(replans <= 8, "replan budget overrun");
}

#[test]
fn disabling_the_controller_reports_the_best_static_run() {
    let harness = Harness::new(2);
    let device = Device::vu9p();
    let tenants = tenants(&["alexnet", "squeezenet"]);
    let controller = ControllerConfig::default().with_enabled(false);
    let opts = CoplanOptions::default().with_search_steps(2);
    let report = run_workload(
        &harness,
        &device,
        &tenants,
        "poisson:40;poisson:40",
        &controller,
        &opts,
    )
    .expect("poisson pair runs");
    assert_eq!(
        report.get("controller_beats_best_static"),
        Some(&Value::Bool(false))
    );
    let worst = report
        .get("worst_p99_seconds")
        .and_then(Value::as_f64)
        .expect("worst p99");
    let best_grid = report
        .get("grid")
        .and_then(Value::as_array)
        .expect("grid")
        .iter()
        .filter_map(|row| row.get("worst_p99_seconds").and_then(Value::as_f64))
        .fold(f64::MAX, f64::min);
    assert_eq!(worst, best_grid, "static mode must report the best share");
}
