//! End-to-end workload runs and their deterministic JSON report.
//!
//! [`run_workload`] is the one-call surface behind `lcmm workload` and
//! the serve daemon's `workload` op: prepare the share grid, resolve
//! the trace, replay it statically at *every* grid point, replay it
//! once more under the controller, and report per-tenant p50/p99,
//! SLO-violation curves and whether the controller strictly beat the
//! best static share. Field order is fixed (alphabetical at every
//! level, like `coplan_summary`) so the report is byte-stable across
//! runs and `--jobs` settings.

use crate::controller::ControllerConfig;
use crate::exec::{prepare, simulate, PreparedGrid, RunOutcome, TenantOutcome};
use crate::trace::{
    parse_trace, ArrivalProcess, TenantTraffic, TraceSource, WorkloadSpec, DEFAULT_MAX_BATCH,
};
use lcmm_core::{Harness, LcmmError};
use lcmm_fpga::Device;
use lcmm_multi::{CoplanOptions, TenantSpec};
use serde_json::Value;

/// Multiples of a tenant's SLO anchor at which the violation curve is
/// sampled.
const SLO_CURVE_MULTIPLES: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];

/// Runs the full workload study: plans the share grid, replays `trace`
/// at every static share and (when `controller.enabled`) once under
/// the adaptive controller, and returns the fixed-field-order JSON
/// report.
///
/// `trace` is a `--trace` argument: `bursty2`, an inline spec, or a
/// JSON file path ([`parse_trace`]). With the controller off, the
/// reported run is the best static share's.
///
/// # Errors
///
/// Trace-parse and co-planning errors
/// ([`LcmmError::InvalidRequest`], [`LcmmError::BudgetInfeasible`], …).
pub fn run_workload(
    harness: &Harness,
    device: &Device,
    tenants: &[TenantSpec],
    trace: &str,
    controller: &ControllerConfig,
    opts: &CoplanOptions,
) -> Result<Value, LcmmError> {
    let source = parse_trace(trace, tenants.len())?;
    let grid = prepare(harness, device, tenants, opts)?;
    let spec = match source {
        TraceSource::Bursty2 => bursty2_spec(&grid)?,
        TraceSource::Spec(spec) => spec,
    };

    // Static sweep: the same trace at every prepared point, fanned out
    // through the order-preserving par_map (each run is internally
    // sequential, so the sweep is byte-identical at any --jobs).
    let static_cfg = controller.clone().with_enabled(false);
    let indices: Vec<usize> = (0..grid.points.len()).collect();
    let static_runs = harness.par_map(&indices, |&p| simulate(&grid, &spec, &static_cfg, p));
    let mut best_static = 0;
    for (i, run) in static_runs.iter().enumerate() {
        if run.worst_p99() < static_runs[best_static].worst_p99() {
            best_static = i;
        }
    }

    let chosen = if controller.enabled {
        simulate(&grid, &spec, controller, grid.even_point())
    } else {
        static_runs[best_static].clone()
    };
    let beats = controller.enabled && chosen.worst_p99() < static_runs[best_static].worst_p99();

    Ok(report(
        &grid,
        &spec,
        trace,
        controller,
        &chosen,
        &static_runs,
        beats,
    ))
}

/// Materialises the builtin two-tenant anti-phase burst trace against
/// the prepared grid: each tenant bursts (in turn) at the geometric
/// mean of its service capacity at the even split and at its most
/// favourable split — fast enough to overload the even split, slow
/// enough that a skewed split absorbs it. The right share therefore
/// *changes* halfway through the trace, which is exactly the regime an
/// adaptive controller must win in.
fn bursty2_spec(grid: &PreparedGrid) -> Result<WorkloadSpec, LcmmError> {
    assert_eq!(grid.models.len(), 2, "bursty2 is a two-tenant trace");
    let even = grid.even_point();
    let slowest = grid.points[even]
        .service_seconds
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    let horizon = 400.0 * slowest;
    let max_batch = DEFAULT_MAX_BATCH as f64;
    let mut tenants = Vec::with_capacity(2);
    for t in 0..2 {
        let mut hi = 0;
        for (i, p) in grid.points.iter().enumerate() {
            if p.shares[t] > grid.points[hi].shares[t] {
                hi = i;
            }
        }
        let cap_even = max_batch / grid.points[even].service_seconds[t];
        let cap_hi = max_batch / grid.points[hi].service_seconds[t];
        // Geometric mean sits strictly between the two capacities
        // whenever the favourable split actually helps; when it barely
        // does, force a mild overload so the trace stays bursty.
        let peak = (cap_even * cap_hi).sqrt().max(1.2 * cap_even);
        let base = 0.2 * cap_even.min(cap_hi);
        tenants.push(TenantTraffic::new(ArrivalProcess::Burst {
            base,
            peak,
            period: horizon,
            duty: 0.45,
            phase: if t == 0 { 0.0 } else { 0.5 * horizon },
        }));
    }
    WorkloadSpec::new(tenants)
        .with_horizon_seconds(horizon)
        .sanitized()
}

/// The SLO anchor for tenant `t`: its explicit SLO (trace first, then
/// tenant spec), else the best service latency any split offers it.
fn slo_anchor(grid: &PreparedGrid, spec: &WorkloadSpec, t: usize) -> f64 {
    spec.tenants[t]
        .slo_seconds
        .or(grid.slos[t])
        .unwrap_or_else(|| grid.min_service(t))
}

fn tenant_value(
    grid: &PreparedGrid,
    spec: &WorkloadSpec,
    t: usize,
    outcome: &TenantOutcome,
) -> Value {
    let anchor = slo_anchor(grid, spec, t);
    let curve: Vec<Value> = SLO_CURVE_MULTIPLES
        .iter()
        .map(|&m| {
            let slo = m * anchor;
            Value::Map(vec![
                (
                    "fraction".to_string(),
                    Value::F64(outcome.violation_fraction(slo)),
                ),
                ("slo_seconds".to_string(), Value::F64(slo)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("arrivals".to_string(), Value::U64(outcome.arrivals)),
        ("batches".to_string(), Value::U64(outcome.batches)),
        ("completed".to_string(), Value::U64(outcome.completed)),
        ("dropped".to_string(), Value::U64(outcome.dropped)),
        ("histogram".to_string(), outcome.histogram.to_value()),
        (
            "mean_seconds".to_string(),
            Value::F64(outcome.histogram.mean_seconds()),
        ),
        ("model".to_string(), Value::Str(grid.models[t].clone())),
        ("p50_seconds".to_string(), Value::F64(outcome.p50())),
        ("p99_seconds".to_string(), Value::F64(outcome.p99())),
        ("slo_violation_curve".to_string(), Value::Seq(curve)),
    ])
}

#[allow(clippy::too_many_arguments)]
fn report(
    grid: &PreparedGrid,
    spec: &WorkloadSpec,
    trace_label: &str,
    controller: &ControllerConfig,
    chosen: &RunOutcome,
    static_runs: &[RunOutcome],
    beats: bool,
) -> Value {
    let controller_value = Value::Map(vec![
        ("enabled".to_string(), Value::Bool(controller.enabled)),
        ("hysteresis".to_string(), Value::F64(controller.hysteresis)),
        (
            "replan_budget".to_string(),
            Value::U64(controller.replan_budget as u64),
        ),
        (
            "replans".to_string(),
            Value::U64(chosen.switches.len() as u64),
        ),
        (
            "switches".to_string(),
            Value::Seq(
                chosen
                    .switches
                    .iter()
                    .map(|&(epoch, point)| {
                        Value::Map(vec![
                            ("epoch".to_string(), Value::U64(epoch)),
                            ("point".to_string(), Value::U64(point as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "window_seconds".to_string(),
            Value::F64(chosen.window_seconds),
        ),
    ]);

    let grid_rows: Vec<Value> = grid
        .points
        .iter()
        .zip(static_runs)
        .map(|(point, run)| {
            Value::Map(vec![
                (
                    "p50_seconds".to_string(),
                    Value::Seq(run.tenants.iter().map(|t| Value::F64(t.p50())).collect()),
                ),
                (
                    "p99_seconds".to_string(),
                    Value::Seq(run.tenants.iter().map(|t| Value::F64(t.p99())).collect()),
                ),
                (
                    "shares".to_string(),
                    Value::Seq(point.shares.iter().map(|&s| Value::F64(s)).collect()),
                ),
                ("worst_p99_seconds".to_string(), Value::F64(run.worst_p99())),
            ])
        })
        .collect();

    let tenants: Vec<Value> = chosen
        .tenants
        .iter()
        .enumerate()
        .map(|(t, outcome)| tenant_value(grid, spec, t, outcome))
        .collect();

    let trace_value = Value::Map(vec![
        (
            "horizon_seconds".to_string(),
            Value::F64(spec.horizon_seconds),
        ),
        ("max_batch".to_string(), Value::U64(spec.max_batch as u64)),
        ("queue_cap".to_string(), Value::U64(spec.queue_cap as u64)),
        ("spec".to_string(), Value::Str(trace_label.to_string())),
    ]);

    Value::Map(vec![
        ("controller".to_string(), controller_value),
        (
            "controller_beats_best_static".to_string(),
            Value::Bool(beats),
        ),
        ("device".to_string(), Value::Str(grid.device.clone())),
        ("grid".to_string(), Value::Seq(grid_rows)),
        (
            "models".to_string(),
            Value::Seq(grid.models.iter().map(|m| Value::Str(m.clone())).collect()),
        ),
        ("seed".to_string(), Value::U64(spec.seed)),
        ("tenants".to_string(), Value::Seq(tenants)),
        ("trace".to_string(), trace_value),
        (
            "worst_p99_seconds".to_string(),
            Value::F64(chosen.worst_p99()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::PreparedPoint;

    fn grid2(points: Vec<Vec<f64>>) -> PreparedGrid {
        PreparedGrid {
            models: vec!["a".to_string(), "b".to_string()],
            device: "test".to_string(),
            points: points
                .into_iter()
                .enumerate()
                .map(|(i, service)| PreparedPoint {
                    shares: match i {
                        0 => vec![0.25, 0.75],
                        1 => vec![0.5, 0.5],
                        _ => vec![0.75, 0.25],
                    },
                    service_seconds: service.clone(),
                    steady_seconds: service,
                    objective_value: 0.0,
                })
                .collect(),
            slos: vec![None, None],
        }
    }

    #[test]
    fn bursty2_is_anti_phase_and_overloads_the_even_split() {
        let g = grid2(vec![vec![4e-3, 1e-3], vec![2e-3, 2e-3], vec![1e-3, 4e-3]]);
        let spec = bursty2_spec(&g).expect("builtin trace is valid");
        assert_eq!(spec.tenants.len(), 2);
        let (mut phases, mut peaks) = (Vec::new(), Vec::new());
        for t in &spec.tenants {
            let ArrivalProcess::Burst { peak, phase, .. } = t.process else {
                panic!("bursty2 tenants burst");
            };
            phases.push(phase);
            peaks.push(peak);
        }
        assert_eq!(phases[0], 0.0);
        assert!((phases[1] - 0.5 * spec.horizon_seconds).abs() < 1e-12);
        // Peak beats the even split's capacity (4 per batch / 2 ms).
        for (t, &peak) in peaks.iter().enumerate() {
            let cap_even = 4.0 / g.points[1].service_seconds[t];
            assert!(peak > cap_even, "tenant {t}: {peak} <= {cap_even}");
        }
    }

    #[test]
    fn controller_beats_static_on_a_synthetic_seesaw_grid() {
        // Pure executor-level regression (no planning): on a grid where
        // the right point flips halfway through, the adaptive run must
        // strictly beat every static share's worst p99.
        let g = grid2(vec![vec![4e-3, 1e-3], vec![2e-3, 2e-3], vec![1e-3, 4e-3]]);
        let spec = bursty2_spec(&g).expect("valid");
        let controller = ControllerConfig::default().with_enabled(true);
        let static_cfg = controller.clone().with_enabled(false);
        let best_static = (0..g.points.len())
            .map(|p| simulate(&g, &spec, &static_cfg, p).worst_p99())
            .fold(f64::MAX, f64::min);
        let adaptive = simulate(&g, &spec, &controller, g.even_point());
        assert!(!adaptive.switches.is_empty(), "the controller must act");
        assert!(
            adaptive.worst_p99() < best_static,
            "adaptive {} vs best static {}",
            adaptive.worst_p99(),
            best_static
        );
    }

    #[test]
    fn report_fields_are_alphabetical_and_complete() {
        let g = grid2(vec![vec![2e-3, 2e-3], vec![1e-3, 4e-3]]);
        let spec = bursty2_spec(&g).expect("valid");
        let cfg = ControllerConfig::default().with_enabled(true);
        let static_cfg = cfg.clone().with_enabled(false);
        let runs: Vec<RunOutcome> = (0..g.points.len())
            .map(|p| simulate(&g, &spec, &static_cfg, p))
            .collect();
        let adaptive = simulate(&g, &spec, &cfg, g.even_point());
        let v = report(&g, &spec, "bursty2", &cfg, &adaptive, &runs, true);
        let keys: Vec<&str> = v
            .as_object()
            .expect("map")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "top-level keys must be alphabetical");
        assert_eq!(
            keys,
            vec![
                "controller",
                "controller_beats_best_static",
                "device",
                "grid",
                "models",
                "seed",
                "tenants",
                "trace",
                "worst_p99_seconds"
            ]
        );
        let tenant = &v.get("tenants").and_then(Value::as_array).expect("tenants")[0];
        let curve = tenant
            .get("slo_violation_curve")
            .and_then(Value::as_array)
            .expect("curve");
        assert_eq!(curve.len(), SLO_CURVE_MULTIPLES.len());
    }
}
