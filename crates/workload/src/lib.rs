//! Trace-driven traffic simulation over multi-tenant co-plans.
//!
//! The planner stack ends at a *co-plan*: per-tenant designs, SRAM
//! grants and contended steady-state latencies for one fixed share
//! split. This crate asks the serving question on top of it — what do
//! tenants actually *observe* under real traffic (diurnal load, bursts,
//! SLO pressure), and when should the shares change?
//!
//! The design follows a strict schedule/executor split:
//!
//! * [`prepare`] plans every share-grid point up front (through the
//!   delta-replan path, so grid points reuse pass artifacts) into an
//!   immutable [`PreparedGrid`] — the *schedule*;
//! * [`simulate`] replays a [`WorkloadSpec`] trace against the grid —
//!   the *executor*: per-tenant FIFO admission queues, batching, and a
//!   [`lcmm_sim::Channel`] service timeline per tenant, accumulating
//!   latency [`LatencyHistogram`]s, p50/p99 and SLO-violation curves
//!   rather than means. The tick loop only *consumes* prepared points,
//!   it never replans;
//! * the online controller ([`ControllerConfig`]) watches observed
//!   arrival rates over a sliding window and re-partitions tenant
//!   shares by switching between prepared grid points, with hysteresis
//!   and a re-plan budget so it cannot thrash.
//!
//! Everything is deterministic: arrivals come from a seeded LCG (or a
//! replayed trace file), the only parallelism is the harness's
//! order-preserving `par_map`, and reports use fixed-field-order JSON —
//! so `lcmm workload` output is byte-identical at any `--jobs`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod exec;
pub mod histogram;
pub mod report;
pub mod trace;

pub use controller::ControllerConfig;
pub use exec::{prepare, simulate, PreparedGrid, PreparedPoint, RunOutcome, TenantOutcome};
pub use histogram::LatencyHistogram;
pub use report::run_workload;
pub use trace::{parse_trace, ArrivalProcess, TenantTraffic, TraceSource, WorkloadSpec};
