//! The schedule/executor split: prepared share grids and the
//! trace-replay executor.
//!
//! [`prepare`] does *all* the planning up front: every share-grid point
//! is co-planned through [`lcmm_multi::plan_with_shares`] (the
//! delta-replan path, so pass-1/2 artifacts and gain-curve memos are
//! shared across points and only `joint_capacity_dp` plus passes 3–4
//! re-run per point) and distilled into an immutable
//! [`PreparedPoint`]: shares plus per-tenant contended service
//! latencies. [`simulate`] then replays a trace against those
//! artifacts — the tick loop reads service latencies, it never plans.
//!
//! The executor models each tenant as an admission queue in front of a
//! batched server: a [`Channel`] FIFO timeline (the simulator's DMA
//! primitive reused as a service timeline). A batch of up to
//! `max_batch` queued requests occupies one contended service latency,
//! so batching under backlog is the throughput win; arrivals beyond
//! `queue_cap` are dropped and count as SLO violations.

use crate::controller::{pick_point, ControllerConfig};
use crate::histogram::LatencyHistogram;
use crate::trace::WorkloadSpec;
use lcmm_core::{Harness, LcmmError};
use lcmm_fpga::Device;
use lcmm_multi::{plan_with_shares, share_grid, CoplanOptions, TenantSpec};
use lcmm_sim::Channel;
use std::collections::VecDeque;

/// One prepared share split: the immutable artifact the executor and
/// controller consume.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedPoint {
    /// Per-tenant compute shares, in tenant order.
    pub shares: Vec<f64>,
    /// Per-tenant contended steady-state service latency, seconds —
    /// what one batch costs at this split.
    pub service_seconds: Vec<f64>,
    /// Per-tenant uncontended steady latency, seconds.
    pub steady_seconds: Vec<f64>,
    /// The co-planner's objective value at this split.
    pub objective_value: f64,
}

/// The prepared schedule: every feasible grid point, planned once.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedGrid {
    /// Tenant model names, in tenant order.
    pub models: Vec<String>,
    /// Device short name.
    pub device: String,
    /// Feasible grid points, in share-grid (lexicographic) order.
    pub points: Vec<PreparedPoint>,
    /// Per-tenant SLOs carried over from the tenant specs.
    pub slos: Vec<Option<f64>>,
}

impl PreparedGrid {
    /// The most even split: the point minimising the spread between
    /// its largest and smallest share (lowest index on ties) — the
    /// controller's deterministic starting point.
    #[must_use]
    pub fn even_point(&self) -> usize {
        let spread = |p: &PreparedPoint| {
            let max = p.shares.iter().copied().fold(f64::MIN, f64::max);
            let min = p.shares.iter().copied().fold(f64::MAX, f64::min);
            max - min
        };
        let mut best = 0;
        for (i, p) in self.points.iter().enumerate() {
            if spread(p) < spread(&self.points[best]) {
                best = i;
            }
        }
        best
    }

    /// Tenant `t`'s best service latency over the whole grid — the
    /// fastest any split can serve it, anchoring its SLO curve when no
    /// explicit SLO is set.
    #[must_use]
    pub fn min_service(&self, t: usize) -> f64 {
        self.points
            .iter()
            .map(|p| p.service_seconds[t])
            .fold(f64::MAX, f64::min)
    }
}

/// Plans every share-grid point for `tenants` on `device` into an
/// immutable [`PreparedGrid`].
///
/// Infeasible points (a share too small for any systolic array) are
/// skipped like in `search_shares`; grid points are planned through the
/// harness's order-preserving `par_map`, so the result is
/// byte-identical at any `--jobs`.
///
/// # Errors
///
/// Any co-planner error; when *every* point is infeasible, the last
/// planning error.
pub fn prepare(
    harness: &Harness,
    device: &Device,
    tenants: &[TenantSpec],
    opts: &CoplanOptions,
) -> Result<PreparedGrid, LcmmError> {
    let grid = share_grid(tenants.len(), opts.search_steps);
    let outcomes = harness.par_map(&grid, |shares| {
        plan_with_shares(harness, device, tenants, shares, opts)
    });
    let mut points = Vec::with_capacity(outcomes.len());
    let mut last_err = None;
    for outcome in outcomes {
        match outcome {
            Ok((plan, point)) => points.push(PreparedPoint {
                shares: point.shares,
                service_seconds: plan.tenants.iter().map(|t| t.contended_latency).collect(),
                steady_seconds: plan.tenants.iter().map(|t| t.steady_latency).collect(),
                objective_value: point.objective_value,
            }),
            Err(e) => last_err = Some(e),
        }
    }
    if points.is_empty() {
        return Err(
            last_err.unwrap_or_else(|| LcmmError::InvalidRequest("empty share grid".to_string()))
        );
    }
    Ok(PreparedGrid {
        models: tenants.iter().map(|t| t.name.clone()).collect(),
        device: device.name.clone(),
        points,
        slos: tenants.iter().map(|t| t.slo_seconds).collect(),
    })
}

/// One tenant's observed outcome over a run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Requests that arrived inside the horizon.
    pub arrivals: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Completed request latencies, seconds, sorted ascending.
    pub latencies: Vec<f64>,
    /// The same latencies, log-bucketed.
    pub histogram: LatencyHistogram,
}

impl TenantOutcome {
    /// Nearest-rank percentile of the completed latencies (`q` in
    /// `(0, 1]`); `0.0` when nothing completed.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let rank = (q * self.latencies.len() as f64).ceil() as usize;
        self.latencies[rank.clamp(1, self.latencies.len()) - 1]
    }

    /// Median completed latency, seconds.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th-percentile completed latency, seconds.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Fraction of all requests (completed + dropped) whose latency
    /// exceeded `slo` seconds; drops always violate.
    #[must_use]
    pub fn violation_fraction(&self, slo: f64) -> f64 {
        let total = self.completed + self.dropped;
        if total == 0 {
            return 0.0;
        }
        let late = self.latencies.iter().filter(|&&l| l > slo).count() as u64;
        (late + self.dropped) as f64 / total as f64
    }
}

/// One executed run: per-tenant outcomes plus the controller's actions.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// The grid point the run started at.
    pub start_point: usize,
    /// Controller switches as `(epoch, to_point)` pairs, in order.
    pub switches: Vec<(u64, usize)>,
    /// The effective controller window, seconds.
    pub window_seconds: f64,
}

impl RunOutcome {
    /// The worst tenant p99 — the headline fairness metric. Tenants
    /// with traffic but no completions count as `f64::MAX` (their p99
    /// is unbounded, not zero).
    #[must_use]
    pub fn worst_p99(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| {
                if t.latencies.is_empty() && t.arrivals > 0 {
                    f64::MAX
                } else {
                    t.p99()
                }
            })
            .fold(0.0f64, f64::max)
    }
}

/// Per-tenant executor state.
struct TenantState {
    arrivals: Vec<f64>,
    next: usize,
    queue: VecDeque<f64>,
    chan: Channel,
    outcome: TenantOutcome,
    window_observed: u64,
}

impl TenantState {
    fn pending(&self) -> bool {
        !self.queue.is_empty() || self.next < self.arrivals.len()
    }

    /// Admits every arrival at or before `until` (dropping beyond the
    /// queue cap) and counts it toward the controller window.
    fn admit_until(&mut self, until: f64, queue_cap: usize) {
        while self.next < self.arrivals.len() && self.arrivals[self.next] <= until {
            if self.queue.len() < queue_cap {
                self.queue.push_back(self.arrivals[self.next]);
            } else {
                self.outcome.dropped += 1;
            }
            self.window_observed += 1;
            self.next += 1;
        }
    }
}

/// Replays `spec` against the prepared grid, starting at grid point
/// `start_point`.
///
/// Time advances in controller-window epochs. Within an epoch each
/// tenant's server runs batches back to back: the next batch starts at
/// `max(channel busy, first pending arrival)`, admits everything that
/// arrived by then, serves up to `max_batch` queued requests in one
/// contended service latency, and records each request's
/// completion − arrival latency. At every epoch boundary the controller
/// (when enabled) may switch the current point based on the window's
/// observed arrival pressure. After the horizon, epochs continue until
/// every queue drains — nothing admitted is left unmeasured.
///
/// The whole function is sequential and allocation-deterministic, so
/// its outcome is bit-identical for a given `(grid, spec, config,
/// start_point)` regardless of `--jobs`.
#[must_use]
pub fn simulate(
    grid: &PreparedGrid,
    spec: &WorkloadSpec,
    config: &ControllerConfig,
    start_point: usize,
) -> RunOutcome {
    assert_eq!(
        grid.models.len(),
        spec.tenants.len(),
        "one traffic spec per tenant"
    );
    let window = config.window_for(spec.horizon_seconds);
    let mut states: Vec<TenantState> = (0..spec.tenants.len())
        .map(|t| {
            let arrivals = spec.arrivals(t);
            TenantState {
                outcome: TenantOutcome {
                    arrivals: arrivals.len() as u64,
                    batches: 0,
                    completed: 0,
                    dropped: 0,
                    latencies: Vec::new(),
                    histogram: LatencyHistogram::new(),
                },
                arrivals,
                next: 0,
                queue: VecDeque::new(),
                chan: Channel::new(),
                window_observed: 0,
            }
        })
        .collect();

    let mut current = start_point;
    let mut switches: Vec<(u64, usize)> = Vec::new();
    let mut epoch: u64 = 0;
    loop {
        epoch += 1;
        let epoch_end = epoch as f64 * window;
        for (t, st) in states.iter_mut().enumerate() {
            let service = grid.points[current].service_seconds[t];
            loop {
                let first = match st.queue.front() {
                    Some(&a) => a,
                    None => match st.arrivals.get(st.next) {
                        Some(&a) => a,
                        None => break,
                    },
                };
                let start = st.chan.busy_until().max(first);
                if start >= epoch_end {
                    break;
                }
                st.admit_until(start, spec.queue_cap);
                let take = st.queue.len().min(spec.max_batch);
                let (_, end) = st.chan.enqueue_span(start, service);
                st.outcome.batches += 1;
                for _ in 0..take {
                    let arrived = st.queue.pop_front().expect("take <= queue.len()");
                    let latency = end - arrived;
                    st.outcome.latencies.push(latency);
                    st.outcome.histogram.record(latency);
                    st.outcome.completed += 1;
                }
            }
            // Arrivals the busy server could not look at yet still
            // happened — admit them so backlog pressure is observable.
            st.admit_until(epoch_end.min(spec.horizon_seconds), spec.queue_cap);
        }

        if config.enabled && switches.len() < config.replan_budget {
            let rates: Vec<f64> = states
                .iter()
                .map(|st| (st.window_observed as f64 + st.queue.len() as f64) / window)
                .collect();
            let next = pick_point(grid, current, &rates, spec.max_batch, config.hysteresis);
            if next != current {
                current = next;
                switches.push((epoch, next));
            }
        }
        for st in &mut states {
            st.window_observed = 0;
        }

        let drained = states.iter().all(|st| !st.pending());
        if drained && epoch_end >= spec.horizon_seconds {
            break;
        }
    }

    let tenants = states
        .into_iter()
        .map(|mut st| {
            st.outcome.latencies.sort_by(f64::total_cmp);
            st.outcome
        })
        .collect();
    RunOutcome {
        tenants,
        start_point,
        switches,
        window_seconds: window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArrivalProcess, TenantTraffic};

    fn one_point_grid(service: Vec<f64>) -> PreparedGrid {
        let n = service.len();
        PreparedGrid {
            models: (0..n).map(|i| format!("m{i}")).collect(),
            device: "test".to_string(),
            points: vec![PreparedPoint {
                shares: vec![1.0 / n as f64; n],
                service_seconds: service.clone(),
                steady_seconds: service,
                objective_value: 0.0,
            }],
            slos: vec![None; n],
        }
    }

    fn replay(times: Vec<f64>) -> WorkloadSpec {
        WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Replay { times })])
            .sanitized()
            .expect("valid replay")
    }

    #[test]
    fn lone_request_takes_one_service_latency() {
        let grid = one_point_grid(vec![0.01]);
        let out = simulate(&grid, &replay(vec![0.1]), &ControllerConfig::default(), 0);
        let t = &out.tenants[0];
        assert_eq!(t.completed, 1);
        assert_eq!(t.batches, 1);
        assert_eq!(t.dropped, 0);
        assert!((t.latencies[0] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn backlog_batches_share_one_service_latency() {
        // Four requests at t=0 with max_batch 4: one batch, all done at
        // the same completion time.
        let grid = one_point_grid(vec![0.01]);
        let out = simulate(
            &grid,
            &replay(vec![0.0, 0.0, 0.0, 0.0]),
            &ControllerConfig::default(),
            0,
        );
        let t = &out.tenants[0];
        assert_eq!(t.completed, 4);
        assert_eq!(t.batches, 1);
        assert!(t.latencies.iter().all(|&l| (l - 0.01).abs() < 1e-12));
    }

    #[test]
    fn zero_time_burst_at_t0_is_served_not_paniced() {
        // Regression for the enqueue_span negative-`ready` assumption:
        // a burst of arrivals at exactly t=0 (clamped from slightly
        // negative by ingestion) must execute cleanly.
        let grid = one_point_grid(vec![0.001]);
        let spec = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Replay {
            times: vec![-0.0, 0.0, -1e-15, 0.0, 0.0, 0.0],
        })])
        .sanitized()
        .expect("clamped");
        let out = simulate(&grid, &spec, &ControllerConfig::default(), 0);
        assert_eq!(out.tenants[0].completed, 6);
        assert!(out.tenants[0].latencies.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn queue_cap_drops_overflow() {
        // 10 simultaneous arrivals, queue cap 3, batch 1: only 3 fit
        // the queue at admission time; 7 drop.
        let grid = one_point_grid(vec![0.01]);
        let spec = replay(vec![0.0; 10])
            .with_queue_cap(3)
            .with_max_batch(1)
            .sanitized()
            .expect("valid");
        let out = simulate(&grid, &spec, &ControllerConfig::default(), 0);
        let t = &out.tenants[0];
        assert_eq!(t.dropped + t.completed, 10);
        assert!(t.dropped > 0);
        assert!(t.violation_fraction(f64::MAX) > 0.0, "drops always violate");
    }

    #[test]
    fn overload_latency_grows_with_backlog() {
        // Arrivals at twice the service rate, batch 1: later requests
        // wait longer, p99 >> p50.
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 0.005).collect();
        let grid = one_point_grid(vec![0.01]);
        let spec = replay(times).with_max_batch(1).sanitized().expect("valid");
        let out = simulate(&grid, &spec, &ControllerConfig::default(), 0);
        let t = &out.tenants[0];
        assert_eq!(t.completed, 100);
        assert!(t.p99() > 1.5 * t.p50(), "p99 {} p50 {}", t.p99(), t.p50());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let outcome = TenantOutcome {
            arrivals: 4,
            batches: 4,
            completed: 4,
            dropped: 0,
            latencies: vec![1.0, 2.0, 3.0, 4.0],
            histogram: LatencyHistogram::new(),
        };
        assert_eq!(outcome.p50(), 2.0);
        assert_eq!(outcome.p99(), 4.0);
        assert_eq!(outcome.percentile(0.25), 1.0);
    }

    #[test]
    fn drained_queues_end_the_run_past_the_horizon() {
        // A request just before the horizon still completes (epochs
        // continue until drained), and the run terminates.
        let grid = one_point_grid(vec![0.5]);
        let spec = replay(vec![0.99]).sanitized().expect("valid");
        let out = simulate(&grid, &spec, &ControllerConfig::default(), 0);
        assert_eq!(out.tenants[0].completed, 1);
        assert!((out.tenants[0].latencies[0] - 0.5).abs() < 1e-12);
    }
}
