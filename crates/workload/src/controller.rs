//! The online share controller.
//!
//! At the end of every controller window the executor hands the
//! controller each tenant's *observed* pressure — arrivals seen in the
//! window plus the backlog still queued — and the controller picks the
//! prepared grid point whose service latencies best absorb that
//! pressure. Two dampers keep it from thrashing:
//!
//! * **hysteresis** — the candidate must beat the current point's
//!   predicted load by a relative margin before a switch happens;
//! * **re-plan budget** — a hard cap on switches per run, mirroring the
//!   real cost of re-partitioning a device.
//!
//! Switching between *prepared* points is what makes the loop cheap and
//! deterministic: all the planning (delta replans through
//! `PlanArtifacts::replan_with_budget` and the `joint_capacity_dp`
//! capacity split) happened up front in [`crate::prepare`]; the
//! controller only consumes the immutable artifacts.

use crate::exec::PreparedGrid;

/// Controller configuration.
///
/// Construct with [`ControllerConfig::default`] and the `with_*`
/// builders (mirroring `LcmmOptions`); the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking
/// callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ControllerConfig {
    /// Whether the controller may switch grid points at all. Off, the
    /// run sticks to its starting point (a static share).
    pub enabled: bool,
    /// Sliding-window length in seconds; `0.0` means auto (an eighth
    /// of the trace horizon). The executor's epochs are one window
    /// long, and decisions happen at epoch boundaries.
    pub window_seconds: f64,
    /// Relative improvement a candidate point's predicted load must
    /// show over the current point before the controller switches.
    pub hysteresis: f64,
    /// Maximum number of switches per run.
    pub replan_budget: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            window_seconds: 0.0,
            hysteresis: 0.05,
            replan_budget: 8,
        }
    }
}

impl ControllerConfig {
    /// Returns a copy with the controller enabled or disabled.
    #[must_use]
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Returns a copy with an explicit window length in seconds.
    #[must_use]
    pub fn with_window_seconds(mut self, window: f64) -> Self {
        self.window_seconds = window;
        self
    }

    /// Returns a copy with a different switch hysteresis.
    #[must_use]
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Returns a copy with a different re-plan budget.
    #[must_use]
    pub fn with_replan_budget(mut self, budget: usize) -> Self {
        self.replan_budget = budget;
        self
    }

    /// The effective window for a trace of `horizon` seconds.
    #[must_use]
    pub fn window_for(&self, horizon: f64) -> f64 {
        if self.window_seconds > 0.0 {
            self.window_seconds
        } else {
            horizon / 8.0
        }
    }
}

/// Predicted load of grid point `point` under per-tenant arrival rates
/// `rates` (requests/second): the worst per-tenant utilisation,
/// `rate × service / max_batch`. Above 1.0 the tenant's queue grows
/// without bound at that point.
#[must_use]
pub fn predicted_load(grid: &PreparedGrid, point: usize, rates: &[f64], max_batch: usize) -> f64 {
    rates
        .iter()
        .zip(&grid.points[point].service_seconds)
        .map(|(&rate, &service)| rate * service / max_batch as f64)
        .fold(0.0f64, f64::max)
}

/// One controller decision: given observed `rates`, the point to run
/// the next window at. Returns `current` unless some candidate beats it
/// by the hysteresis margin (ties keep the current point, and equal
/// candidates resolve to the lowest index, so decisions are
/// deterministic).
#[must_use]
pub fn pick_point(
    grid: &PreparedGrid,
    current: usize,
    rates: &[f64],
    max_batch: usize,
    hysteresis: f64,
) -> usize {
    let mut best = current;
    let mut best_load = predicted_load(grid, current, rates, max_batch);
    for p in 0..grid.points.len() {
        let load = predicted_load(grid, p, rates, max_batch);
        if load < best_load {
            best = p;
            best_load = load;
        }
    }
    if best != current {
        let current_load = predicted_load(grid, current, rates, max_batch);
        if best_load < current_load * (1.0 - hysteresis) {
            return best;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::PreparedPoint;

    fn grid(points: Vec<Vec<f64>>) -> PreparedGrid {
        PreparedGrid {
            models: (0..points[0].len()).map(|i| format!("m{i}")).collect(),
            device: "test".to_string(),
            points: points
                .into_iter()
                .map(|service| PreparedPoint {
                    shares: vec![1.0 / service.len() as f64; service.len()],
                    service_seconds: service.clone(),
                    steady_seconds: service,
                    objective_value: 0.0,
                })
                .collect(),
            slos: vec![None, None],
        }
    }

    #[test]
    fn picks_the_point_matching_the_hot_tenant() {
        // Point 0 favours tenant 1, point 1 is even, point 2 favours
        // tenant 0 (service in seconds per request).
        let g = grid(vec![vec![4e-3, 1e-3], vec![2e-3, 2e-3], vec![1e-3, 4e-3]]);
        // Tenant 0 is hot: the controller must grant it the big share.
        assert_eq!(pick_point(&g, 1, &[3000.0, 10.0], 4, 0.05), 2);
        // Tenant 1 hot: the mirror point.
        assert_eq!(pick_point(&g, 1, &[10.0, 3000.0], 4, 0.05), 0);
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        let g = grid(vec![vec![2e-3, 2e-3], vec![1.99e-3, 2.01e-3]]);
        // Point 1 is 0.5% better for an all-tenant-0 load: under a 5%
        // hysteresis the controller stays put.
        assert_eq!(pick_point(&g, 0, &[1000.0, 0.0], 4, 0.05), 0);
        // With hysteresis off it moves.
        assert_eq!(pick_point(&g, 0, &[1000.0, 0.0], 4, 0.0), 1);
    }

    #[test]
    fn idle_traffic_never_switches() {
        let g = grid(vec![vec![2e-3, 2e-3], vec![1e-3, 4e-3]]);
        assert_eq!(pick_point(&g, 0, &[0.0, 0.0], 4, 0.05), 0);
    }

    #[test]
    fn ties_keep_the_current_point() {
        let g = grid(vec![vec![2e-3, 2e-3], vec![2e-3, 2e-3]]);
        assert_eq!(pick_point(&g, 1, &[100.0, 100.0], 4, 0.0), 1);
    }
}
