//! Workload traces: per-tenant arrival processes and their parsing.
//!
//! A [`WorkloadSpec`] describes the traffic one simulation replays:
//! one [`TenantTraffic`] per tenant (index-aligned with the co-plan's
//! tenants) plus the shared horizon, seed, batching and queueing knobs.
//! Specs come from three sources ([`parse_trace`]):
//!
//! * the builtin `bursty2` anti-phase burst trace (materialised from
//!   the prepared grid's service latencies, see
//!   [`crate::report::run_workload`]);
//! * an inline `;`-separated spec string, one process per tenant:
//!   `poisson:<rate>`, `burst:<base>:<peak>:<period>:<duty>[:<phase>]`,
//!   `diurnal:<r1>/<r2>/...`, `replay:<t1>,<t2>,...`, each optionally
//!   suffixed `@slo=<seconds>`;
//! * a JSON trace file (see `docs/WORKLOAD.md` for the schema).
//!
//! All ingestion funnels through [`WorkloadSpec::sanitized`], which
//! validates every number the way `GraphProfile::validate` does for
//! latencies — non-finite rates and times are typed errors, not later
//! panics — and clamps slightly-negative replay timestamps to `0.0`:
//! the executor feeds arrival times straight into
//! [`lcmm_sim::Channel::enqueue_span`], which panics on negative
//! `ready`, so negatives must die here, at the boundary.

use lcmm_core::LcmmError;
use serde_json::Value;

/// Default deterministic seed ("lcmm" in ASCII).
pub const DEFAULT_SEED: u64 = 0x6c63_6d6d;

/// Default simulated horizon, seconds.
pub const DEFAULT_HORIZON: f64 = 1.0;

/// Default per-tenant batch cap.
pub const DEFAULT_MAX_BATCH: usize = 4;

/// Default per-tenant admission-queue capacity.
pub const DEFAULT_QUEUE_CAP: usize = 512;

/// Hard cap on generated arrivals per tenant, so a typo'd rate fails
/// fast instead of allocating gigabytes.
const MAX_ARRIVALS: f64 = 1_000_000.0;

/// A deterministic 64-bit LCG (Knuth's MMIX multiplier), the crate's
/// only randomness source — no external RNG crate, bit-identical on
/// every platform.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// A generator seeded with `seed` (pre-scrambled so nearby seeds
    /// diverge immediately).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = Self(seed ^ 0x9e37_79b9_7f4a_7c15);
        rng.next_f64();
        rng
    }

    /// The next uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }
}

/// How one tenant's requests arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` requests/second.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate: f64,
    },
    /// Periodic on/off bursts: `peak` requests/second for the first
    /// `duty` fraction of each `period`, `base` otherwise, with the
    /// cycle shifted by `phase` seconds.
    Burst {
        /// Off-burst rate, requests/second.
        base: f64,
        /// In-burst rate, requests/second.
        peak: f64,
        /// Cycle length, seconds.
        period: f64,
        /// Fraction of each period spent at `peak`, in `[0, 1]`.
        duty: f64,
        /// Cycle shift, seconds.
        phase: f64,
    },
    /// Piecewise-constant daily phases: the horizon is split into
    /// `rates.len()` equal phases at the given rates.
    Diurnal {
        /// Per-phase rates, requests/second.
        rates: Vec<f64>,
    },
    /// Replay explicit arrival timestamps (seconds from trace start).
    Replay {
        /// Arrival times; sorted and clamped to `>= 0` at ingestion.
        times: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// The instantaneous rate at time `t` (replay traces have none).
    fn rate_at(&self, t: f64, horizon: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Burst {
                base,
                peak,
                period,
                duty,
                phase,
            } => {
                let pos = (t - phase).rem_euclid(*period) / period;
                if pos < *duty {
                    *peak
                } else {
                    *base
                }
            }
            ArrivalProcess::Diurnal { rates } => {
                let idx = ((t / horizon * rates.len() as f64) as usize).min(rates.len() - 1);
                rates[idx]
            }
            ArrivalProcess::Replay { .. } => 0.0,
        }
    }

    /// The peak rate, bounding the thinning envelope and the expected
    /// arrival count.
    fn peak_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Burst { base, peak, .. } => base.max(*peak),
            ArrivalProcess::Diurnal { rates } => rates.iter().copied().fold(0.0, f64::max),
            ArrivalProcess::Replay { times } => times.len() as f64,
        }
    }
}

/// One tenant's traffic: an arrival process plus an optional SLO.
///
/// Construct with [`TenantTraffic::new`] and the `with_*` builders
/// (mirroring `LcmmOptions`); the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TenantTraffic {
    /// How requests arrive.
    pub process: ArrivalProcess,
    /// Optional latency SLO in seconds; anchors the tenant's
    /// SLO-violation curve (without it the curve is anchored at the
    /// tenant's best-case service latency).
    pub slo_seconds: Option<f64>,
}

impl TenantTraffic {
    /// Traffic with no SLO.
    #[must_use]
    pub fn new(process: ArrivalProcess) -> Self {
        Self {
            process,
            slo_seconds: None,
        }
    }

    /// Returns a copy with a latency SLO in seconds.
    #[must_use]
    pub fn with_slo_seconds(mut self, slo: f64) -> Self {
        self.slo_seconds = Some(slo);
        self
    }
}

/// A complete workload description: per-tenant traffic plus the shared
/// simulation knobs.
///
/// Construct with [`WorkloadSpec::new`] and the `with_*` builders
/// (mirroring `LcmmOptions`); the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct WorkloadSpec {
    /// Per-tenant traffic, index-aligned with the co-plan's tenants.
    pub tenants: Vec<TenantTraffic>,
    /// Simulated horizon in seconds; arrivals stop here (queued work
    /// still drains).
    pub horizon_seconds: f64,
    /// Seed for the arrival-process LCGs.
    pub seed: u64,
    /// Most requests served per batch; a batch occupies one service
    /// latency regardless of its size — the batching win.
    pub max_batch: usize,
    /// Admission-queue capacity per tenant; arrivals beyond it are
    /// dropped (and count as SLO violations).
    pub queue_cap: usize,
}

impl WorkloadSpec {
    /// A spec with the default horizon, seed, batch and queue knobs.
    #[must_use]
    pub fn new(tenants: Vec<TenantTraffic>) -> Self {
        Self {
            tenants,
            horizon_seconds: DEFAULT_HORIZON,
            seed: DEFAULT_SEED,
            max_batch: DEFAULT_MAX_BATCH,
            queue_cap: DEFAULT_QUEUE_CAP,
        }
    }

    /// Returns a copy with a different horizon in seconds.
    #[must_use]
    pub fn with_horizon_seconds(mut self, horizon: f64) -> Self {
        self.horizon_seconds = horizon;
        self
    }

    /// Returns a copy with a different arrival seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different batch cap.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with a different admission-queue capacity.
    #[must_use]
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap;
        self
    }

    /// Validates every numeric field and normalises replay traces:
    /// times are sorted and slightly-negative stamps (a zero-time burst
    /// scheduled "at" t=0 by a generator with rounding error) are
    /// clamped to `0.0` so they can never reach
    /// [`lcmm_sim::Channel::enqueue_span`]'s negative-`ready` panic.
    ///
    /// # Errors
    ///
    /// [`LcmmError::InvalidRequest`] for non-finite or out-of-range
    /// rates, times, duties or knobs.
    pub fn sanitized(mut self) -> Result<Self, LcmmError> {
        if self.tenants.is_empty() {
            return Err(LcmmError::InvalidRequest(
                "a workload needs at least one tenant".to_string(),
            ));
        }
        if !(self.horizon_seconds.is_finite() && self.horizon_seconds > 0.0) {
            return Err(LcmmError::InvalidRequest(format!(
                "workload horizon {} must be positive and finite",
                self.horizon_seconds
            )));
        }
        if self.max_batch == 0 {
            return Err(LcmmError::InvalidRequest(
                "workload max_batch must be at least 1".to_string(),
            ));
        }
        if self.queue_cap == 0 {
            return Err(LcmmError::InvalidRequest(
                "workload queue_cap must be at least 1".to_string(),
            ));
        }
        for (i, tenant) in self.tenants.iter_mut().enumerate() {
            let bad = |what: &str, v: f64| {
                Err::<(), _>(LcmmError::InvalidRequest(format!(
                    "tenant {i} {what} {v} must be non-negative and finite"
                )))
            };
            match &mut tenant.process {
                ArrivalProcess::Poisson { rate } => {
                    if !(rate.is_finite() && *rate >= 0.0) {
                        bad("poisson rate", *rate)?;
                    }
                }
                ArrivalProcess::Burst {
                    base,
                    peak,
                    period,
                    duty,
                    phase,
                } => {
                    for (what, v) in [("burst base", *base), ("burst peak", *peak)] {
                        if !(v.is_finite() && v >= 0.0) {
                            bad(what, v)?;
                        }
                    }
                    if !(period.is_finite() && *period > 0.0) {
                        return Err(LcmmError::InvalidRequest(format!(
                            "tenant {i} burst period {period} must be positive and finite"
                        )));
                    }
                    if !(duty.is_finite() && (0.0..=1.0).contains(duty)) {
                        return Err(LcmmError::InvalidRequest(format!(
                            "tenant {i} burst duty {duty} outside [0, 1]"
                        )));
                    }
                    if !phase.is_finite() {
                        bad("burst phase", *phase)?;
                    }
                }
                ArrivalProcess::Diurnal { rates } => {
                    if rates.is_empty() {
                        return Err(LcmmError::InvalidRequest(format!(
                            "tenant {i} diurnal trace has no phases"
                        )));
                    }
                    for &r in rates.iter() {
                        if !(r.is_finite() && r >= 0.0) {
                            bad("diurnal rate", r)?;
                        }
                    }
                }
                ArrivalProcess::Replay { times } => {
                    for t in times.iter_mut() {
                        if !t.is_finite() {
                            bad("replay time", *t)?;
                        }
                        if *t < 0.0 {
                            *t = 0.0;
                        }
                    }
                    times.sort_by(f64::total_cmp);
                }
            }
            let expected = tenant.process.peak_rate() * self.horizon_seconds;
            if expected > MAX_ARRIVALS {
                return Err(LcmmError::InvalidRequest(format!(
                    "tenant {i} would generate up to {expected:.0} arrivals (cap {MAX_ARRIVALS})"
                )));
            }
            if let Some(slo) = tenant.slo_seconds {
                if !(slo.is_finite() && slo > 0.0) {
                    return Err(LcmmError::InvalidRequest(format!(
                        "tenant {i} SLO {slo} must be positive and finite"
                    )));
                }
            }
        }
        Ok(self)
    }

    /// Generates tenant `index`'s arrival times over the horizon —
    /// sorted, non-negative, deterministic in `(seed, index)` only.
    /// Stochastic processes use thinning against the peak rate, so a
    /// tenant's arrivals do not depend on the other tenants at all.
    #[must_use]
    pub fn arrivals(&self, index: usize) -> Vec<f64> {
        let tenant = &self.tenants[index];
        if let ArrivalProcess::Replay { times } = &tenant.process {
            return times
                .iter()
                .copied()
                .filter(|&t| t <= self.horizon_seconds)
                .collect();
        }
        let envelope = tenant.process.peak_rate();
        if envelope <= 0.0 {
            return Vec::new();
        }
        let mut rng = Lcg::new(
            self.seed
                ^ (index as u64)
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add(0x9e37_79b9),
        );
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential gap at the envelope rate; 1 - u is in (0, 1].
            t += -(1.0 - rng.next_f64()).ln() / envelope;
            if t > self.horizon_seconds {
                break;
            }
            let accept = rng.next_f64();
            if accept * envelope < tenant.process.rate_at(t, self.horizon_seconds) {
                out.push(t);
            }
        }
        out
    }
}

/// Where a `--trace` argument came from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSource {
    /// The builtin two-tenant anti-phase burst trace, materialised
    /// against the prepared grid's service latencies.
    Bursty2,
    /// A fully specified workload (inline spec string or JSON file).
    Spec(WorkloadSpec),
}

/// Parses a `--trace` argument: `bursty2`, an inline `;`-separated
/// spec (recognised by its `:`), or a JSON trace-file path.
///
/// `tenant_count` is the number of co-planned models; inline specs and
/// files must provide exactly one process per tenant.
///
/// # Errors
///
/// [`LcmmError::InvalidRequest`] for malformed specs, unreadable
/// files, tenant-count mismatches, or invalid numbers.
pub fn parse_trace(arg: &str, tenant_count: usize) -> Result<TraceSource, LcmmError> {
    if arg == "bursty2" {
        if tenant_count != 2 {
            return Err(LcmmError::InvalidRequest(format!(
                "trace \"bursty2\" needs exactly 2 models, got {tenant_count}"
            )));
        }
        return Ok(TraceSource::Bursty2);
    }
    let spec = if arg.contains(':') {
        parse_inline(arg)?
    } else {
        let text = std::fs::read_to_string(arg).map_err(|e| {
            LcmmError::InvalidRequest(format!("trace file {arg:?} unreadable: {e}"))
        })?;
        parse_trace_json(&text)?
    };
    if spec.tenants.len() != tenant_count {
        return Err(LcmmError::InvalidRequest(format!(
            "trace has {} tenant(s) but {tenant_count} model(s) were given",
            spec.tenants.len()
        )));
    }
    Ok(TraceSource::Spec(spec.sanitized()?))
}

/// Parses an inline `;`-separated spec string.
fn parse_inline(arg: &str) -> Result<WorkloadSpec, LcmmError> {
    let tenants = arg
        .split(';')
        .map(parse_process)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WorkloadSpec::new(tenants))
}

/// Parses one tenant's process spec, e.g. `poisson:2000@slo=0.01`.
///
/// # Errors
///
/// [`LcmmError::InvalidRequest`] for unknown forms or unparsable
/// numbers.
pub fn parse_process(spec: &str) -> Result<TenantTraffic, LcmmError> {
    let bad = |msg: String| LcmmError::InvalidRequest(msg);
    let (body, slo) = match spec.split_once('@') {
        Some((body, tail)) => {
            let slo = tail
                .strip_prefix("slo=")
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| bad(format!("bad process suffix {tail:?} (want slo=<seconds>)")))?;
            (body, Some(slo))
        }
        None => (spec, None),
    };
    let num = |s: &str, what: &str| {
        s.parse::<f64>()
            .map_err(|_| bad(format!("bad {what} {s:?} in process {spec:?}")))
    };
    let (kind, args) = body
        .split_once(':')
        .ok_or_else(|| bad(format!("bad process {spec:?} (want kind:args)")))?;
    let process = match kind {
        "poisson" => ArrivalProcess::Poisson {
            rate: num(args, "rate")?,
        },
        "burst" => {
            let parts: Vec<&str> = args.split(':').collect();
            if !(4..=5).contains(&parts.len()) {
                return Err(bad(format!(
                    "bad burst spec {spec:?} (want burst:<base>:<peak>:<period>:<duty>[:<phase>])"
                )));
            }
            ArrivalProcess::Burst {
                base: num(parts[0], "base")?,
                peak: num(parts[1], "peak")?,
                period: num(parts[2], "period")?,
                duty: num(parts[3], "duty")?,
                phase: if parts.len() == 5 {
                    num(parts[4], "phase")?
                } else {
                    0.0
                },
            }
        }
        "diurnal" => ArrivalProcess::Diurnal {
            rates: args
                .split('/')
                .map(|s| num(s, "rate"))
                .collect::<Result<_, _>>()?,
        },
        "replay" => ArrivalProcess::Replay {
            times: args
                .split(',')
                .map(|s| num(s, "time"))
                .collect::<Result<_, _>>()?,
        },
        other => {
            return Err(bad(format!(
                "unknown process kind {other:?} (want poisson|burst|diurnal|replay)"
            )))
        }
    };
    let traffic = TenantTraffic::new(process);
    Ok(match slo {
        Some(s) => traffic.with_slo_seconds(s),
        None => traffic,
    })
}

/// Parses the JSON trace-file schema (see `docs/WORKLOAD.md`).
fn parse_trace_json(text: &str) -> Result<WorkloadSpec, LcmmError> {
    let bad = |msg: String| LcmmError::InvalidRequest(msg);
    let root: Value = serde_json::from_str(text)
        .map_err(|e| bad(format!("trace file is not valid JSON: {e}")))?;
    let rows = root
        .get("tenants")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("trace file needs a \"tenants\" array".to_string()))?;
    let mut tenants = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let process = if let Some(s) = row.get("process").and_then(Value::as_str) {
            parse_process(s)?.process
        } else if let Some(times) = row.get("times").and_then(Value::as_array) {
            ArrivalProcess::Replay {
                times: times
                    .iter()
                    .map(|t| {
                        t.as_f64()
                            .ok_or_else(|| bad(format!("tenant {i}: non-numeric replay time")))
                    })
                    .collect::<Result<_, _>>()?,
            }
        } else {
            return Err(bad(format!(
                "tenant {i} needs a \"process\" string or a \"times\" array"
            )));
        };
        let mut traffic = TenantTraffic::new(process);
        if let Some(slo) = row.get("slo_seconds").and_then(Value::as_f64) {
            traffic = traffic.with_slo_seconds(slo);
        }
        tenants.push(traffic);
    }
    let mut spec = WorkloadSpec::new(tenants);
    if let Some(h) = root.get("horizon_seconds").and_then(Value::as_f64) {
        spec = spec.with_horizon_seconds(h);
    }
    if let Some(s) = root.get("seed").and_then(Value::as_u64) {
        spec = spec.with_seed(s);
    }
    if let Some(b) = root.get("max_batch").and_then(Value::as_u64) {
        spec = spec.with_max_batch(b as usize);
    }
    if let Some(q) = root.get("queue_cap").and_then(Value::as_u64) {
        spec = spec.with_queue_cap(q as usize);
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_uniformish() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }

    #[test]
    fn poisson_arrival_count_tracks_rate() {
        let spec = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Poisson {
            rate: 1000.0,
        })])
        .with_horizon_seconds(2.0);
        let arrivals = spec.arrivals(0);
        assert!((1600..2400).contains(&arrivals.len()), "{}", arrivals.len());
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| (0.0..=2.0).contains(&t)));
    }

    #[test]
    fn burst_concentrates_arrivals_in_the_duty_window() {
        let spec = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Burst {
            base: 10.0,
            peak: 2000.0,
            period: 1.0,
            duty: 0.25,
            phase: 0.0,
        })]);
        let arrivals = spec.arrivals(0);
        let in_burst = arrivals.iter().filter(|&&t| t < 0.25).count();
        assert!(
            in_burst as f64 > 0.9 * arrivals.len() as f64,
            "{in_burst}/{}",
            arrivals.len()
        );
    }

    #[test]
    fn diurnal_phases_shift_load() {
        let spec = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Diurnal {
            rates: vec![2000.0, 0.0],
        })]);
        let arrivals = spec.arrivals(0);
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|&t| t < 0.5 + 1e-9));
    }

    #[test]
    fn replay_clamps_negative_times_to_zero() {
        // Regression: a zero-time burst at t=0 with rounding jitter —
        // many arrivals at (or epsilon below) 0.0 must sanitise to
        // exactly 0.0, never reaching Channel::enqueue_span negative.
        let spec = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Replay {
            times: vec![-1e-12, 0.0, -0.5, 0.25, 0.0],
        })])
        .sanitized()
        .expect("negatives are clamped, not rejected");
        let arrivals = spec.arrivals(0);
        assert_eq!(arrivals, vec![0.0, 0.0, 0.0, 0.0, 0.25]);
    }

    #[test]
    fn sanitize_rejects_non_finite_numbers() {
        let bad = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Poisson {
            rate: f64::NAN,
        })]);
        assert!(matches!(bad.sanitized(), Err(LcmmError::InvalidRequest(_))));
        let bad = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Replay {
            times: vec![f64::INFINITY],
        })]);
        assert!(matches!(bad.sanitized(), Err(LcmmError::InvalidRequest(_))));
        let bad = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Poisson {
            rate: 1.0,
        })])
        .with_horizon_seconds(f64::INFINITY);
        assert!(matches!(bad.sanitized(), Err(LcmmError::InvalidRequest(_))));
    }

    #[test]
    fn sanitize_caps_arrival_explosions() {
        let bad = WorkloadSpec::new(vec![TenantTraffic::new(ArrivalProcess::Poisson {
            rate: 1e12,
        })]);
        assert!(matches!(bad.sanitized(), Err(LcmmError::InvalidRequest(_))));
    }

    #[test]
    fn inline_specs_parse_every_form() {
        let src = parse_trace(
            "poisson:100@slo=0.01;burst:5:50:1:0.5;diurnal:1/2/3;replay:0.0,0.5",
            4,
        )
        .expect("valid inline spec");
        let TraceSource::Spec(spec) = src else {
            panic!("inline spec, not builtin");
        };
        assert_eq!(spec.tenants.len(), 4);
        assert_eq!(spec.tenants[0].slo_seconds, Some(0.01));
        assert!(matches!(
            spec.tenants[1].process,
            ArrivalProcess::Burst { .. }
        ));
        assert!(matches!(
            spec.tenants[2].process,
            ArrivalProcess::Diurnal { .. }
        ));
        assert!(matches!(
            spec.tenants[3].process,
            ArrivalProcess::Replay { .. }
        ));
    }

    #[test]
    fn inline_spec_tenant_count_must_match() {
        assert!(matches!(
            parse_trace("poisson:100", 2),
            Err(LcmmError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_trace("bursty2", 3),
            Err(LcmmError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_trace("bursty2", 2),
            Ok(TraceSource::Bursty2)
        ));
    }

    #[test]
    fn json_trace_files_parse() {
        let text = r#"{
            "horizon_seconds": 0.5,
            "seed": 9,
            "max_batch": 8,
            "queue_cap": 32,
            "tenants": [
                {"process": "poisson:200", "slo_seconds": 0.02},
                {"times": [0.0, 0.1, 0.2]}
            ]
        }"#;
        let spec = parse_trace_json(text).expect("valid trace json");
        assert_eq!(spec.horizon_seconds, 0.5);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.max_batch, 8);
        assert_eq!(spec.queue_cap, 32);
        assert_eq!(spec.tenants.len(), 2);
        assert_eq!(spec.tenants[0].slo_seconds, Some(0.02));
    }

    #[test]
    fn unknown_process_kinds_are_typed_errors() {
        assert!(matches!(
            parse_process("pareto:1.0"),
            Err(LcmmError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_process("poisson:fast"),
            Err(LcmmError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_process("burst:1:2"),
            Err(LcmmError::InvalidRequest(_))
        ));
    }
}
