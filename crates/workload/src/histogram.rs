//! Log-bucketed latency histograms.
//!
//! One [`LatencyHistogram`] accumulates wall-clock durations — per-pass
//! planning times in the serve daemon's `/stats` report, per-request
//! latencies in workload simulations. The buckets are powers of two in
//! microseconds — fine enough to tell a 100 µs liveness pass from a
//! 100 ms allocation pass, coarse enough that a report stays a handful
//! of lines.

use serde_json::Value;

/// Number of power-of-two buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` µs, so 40 buckets reach ~12 days — effectively
/// unbounded for a planning pass.
const BUCKETS: usize = 40;

/// A histogram of durations with power-of-two microsecond buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_seconds: f64,
    max_seconds: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            total_seconds: 0.0,
            max_seconds: 0.0,
        }
    }

    /// Records one duration. Non-finite or negative values are dropped.
    pub fn record(&mut self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let us = (seconds * 1e6).floor();
        let bucket = if us < 1.0 {
            0
        } else {
            ((us.log2().floor() as usize) + 1).min(BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_seconds += seconds;
        if seconds > self.max_seconds {
            self.max_seconds = seconds;
        }
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded duration in seconds (0 when empty).
    #[must_use]
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// JSON form: summary scalars plus the non-empty buckets as
    /// `{"count", "us_lo", "us_hi"}` rows in ascending bucket order.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut rows = Vec::new();
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            rows.push(Value::Map(vec![
                ("count".to_string(), Value::U64(count)),
                ("us_hi".to_string(), Value::U64(hi)),
                ("us_lo".to_string(), Value::U64(lo)),
            ]));
        }
        Value::Map(vec![
            ("buckets".to_string(), Value::Seq(rows)),
            ("count".to_string(), Value::U64(self.count)),
            ("max_seconds".to_string(), Value::F64(self.max_seconds)),
            ("mean_seconds".to_string(), Value::F64(self.mean_seconds())),
        ])
    }
}

/// `[lo, hi)` microsecond bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1 << (i - 1), 1 << i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_expected_ranges() {
        let mut h = LatencyHistogram::new();
        h.record(0.0); // 0 us -> bucket 0
        h.record(0.5e-6); // sub-us -> bucket 0
        h.record(1.5e-6); // [1,2) us -> bucket 1
        h.record(3e-6); // [2,4) us -> bucket 2
        h.record(1e-3); // 1000 us -> [512, 1024)
        assert_eq!(h.count(), 5);
        let v = h.to_value();
        let rows = v.get("buckets").and_then(Value::as_array).expect("rows");
        let total: u64 = rows
            .iter()
            .map(|r| r.get("count").and_then(Value::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(total, 5);
        // Rows are in ascending bucket order.
        let los: Vec<u64> = rows
            .iter()
            .map(|r| r.get("us_lo").and_then(Value::as_u64).unwrap())
            .collect();
        let mut sorted = los.clone();
        sorted.sort_unstable();
        assert_eq!(los, sorted);
    }

    #[test]
    fn rejects_garbage() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_seconds(), 0.0);
    }

    #[test]
    fn mean_and_max_track_inputs() {
        let mut h = LatencyHistogram::new();
        h.record(1.0);
        h.record(3.0);
        assert!((h.mean_seconds() - 2.0).abs() < 1e-12);
        let v = h.to_value();
        assert_eq!(v.get("max_seconds").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn huge_durations_clamp_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1e12); // absurd, must not panic
        assert_eq!(h.count(), 1);
    }
}
