//! Property tests for the joint allocator (ISSUE 5 satellite):
//!
//! 1. every per-tenant residency fits its partition's
//!    `tensor_sram_budget()` (and, more tightly, its granted share of
//!    the pool);
//! 2. the sum of the per-tenant grants never exceeds the shared pool,
//!    which never exceeds the device SRAM;
//! 3. a single tenant with a 100 % share is bit-identical to the
//!    single-model pipeline.

use lcmm_core::{Harness, PlanRequest};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::{zoo, Graph};
use lcmm_multi::{coplan, Coplan, CoplanOptions, TenantSpec};
use proptest::prelude::*;

fn plan_two(
    a: (&str, Graph),
    b: (&str, Graph),
    precision: Precision,
    shares: Option<(f64, f64)>,
) -> Coplan {
    let harness = Harness::new(2);
    let mut ta = TenantSpec::new(a.0, a.1, precision);
    let mut tb = TenantSpec::new(b.0, b.1, precision);
    if let Some((sa, sb)) = shares {
        ta = ta.with_share(sa);
        tb = tb.with_share(sb);
    }
    let opts = CoplanOptions::default().with_search_steps(4);
    coplan(&harness, &Device::vu9p(), &[ta, tb], &opts).expect("small models fit a VU9P")
}

fn check_budgets(plan: &Coplan) {
    let device_sram = plan.device.sram_bytes();
    assert!(
        plan.pool_bytes <= device_sram,
        "pool {} exceeds device SRAM {device_sram}",
        plan.pool_bytes
    );
    let granted: u64 = plan.tenants.iter().map(|t| t.sram_budget).sum();
    assert!(
        granted <= plan.pool_bytes,
        "grants {granted} exceed pool {}",
        plan.pool_bytes
    );
    for t in &plan.tenants {
        let allocated: u64 = t.result.allocated_buffer_sizes().iter().sum();
        assert!(
            allocated <= t.sram_budget,
            "{}: allocated {allocated} exceeds grant {}",
            t.name,
            t.sram_budget
        );
        // The partition design's own budget is the looser bound the
        // audit invariant checks.
        assert!(
            allocated <= t.result.design.tensor_sram_budget(),
            "{}: allocated {allocated} exceeds the design budget",
            t.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Residencies fit their grants and the grants fit the pool at any
    /// searched or explicit split of two synthetic tenants.
    #[test]
    fn grants_and_residencies_fit_budgets(seed in 0u64..4, k in 1usize..4) {
        let a = zoo::synthetic(24, 2, seed);
        let b = zoo::synthetic(32, 3, seed + 7);
        let share = k as f64 / 4.0;
        let plan = plan_two(
            ("a", a),
            ("b", b),
            Precision::Fix16,
            Some((share, 1.0 - share)),
        );
        check_budgets(&plan);
    }
}

#[test]
fn searched_split_respects_budgets_on_zoo_models() {
    let plan = plan_two(
        ("mobilenet", zoo::mobilenet()),
        ("alexnet", zoo::alexnet()),
        Precision::Fix16,
        None,
    );
    check_budgets(&plan);
    assert!(plan.frontier.iter().any(|p| p.pareto));
    assert!(plan.frontier.len() > 1, "the search must cover the grid");
}

#[test]
fn single_tenant_full_share_is_bit_identical_to_plan_request() {
    let device = Device::vu9p();
    for (name, graph) in [
        ("mobilenet", zoo::mobilenet()),
        ("alexnet", zoo::alexnet()),
        ("squeezenet", zoo::squeezenet()),
    ] {
        let single = PlanRequest::new(&graph, &device, Precision::Fix16)
            .run()
            .expect("feasible");
        let harness = Harness::new(1);
        let tenants = vec![TenantSpec::new(name, graph.clone(), Precision::Fix16).with_share(1.0)];
        let plan =
            coplan(&harness, &device, &tenants, &CoplanOptions::default()).expect("feasible");
        let t = &plan.tenants[0];
        assert_eq!(t.sram_budget, single.design.tensor_sram_budget(), "{name}");
        assert_eq!(t.result.latency, single.latency, "{name}");
        assert_eq!(t.result.residency, single.residency, "{name}");
        assert_eq!(t.result.chosen, single.chosen, "{name}");
        assert_eq!(t.result.split_iterations, single.split_iterations, "{name}");
        assert_eq!(plan.contention.slowdown, vec![1.0], "{name}");
    }
}

#[test]
fn coplan_passes_structural_audit() {
    let graphs = [("mobilenet", zoo::mobilenet()), ("alexnet", zoo::alexnet())];
    let plan = plan_two(
        ("mobilenet", graphs[0].1.clone()),
        ("alexnet", graphs[1].1.clone()),
        Precision::Fix16,
        Some((0.5, 0.5)),
    );
    for t in &plan.tenants {
        let (_, graph) = graphs
            .iter()
            .find(|(name, _)| *name == t.name)
            .expect("tenant names match the input set");
        let findings = lcmm_sim::audit::check_result_invariants(graph, &t.result, t.sram_budget);
        assert!(
            findings.is_empty(),
            "{}: structural audit found {:?}",
            t.name,
            findings
        );
    }
}

#[test]
fn coplan_is_deterministic_across_jobs() {
    let device = Device::vu9p();
    let mk = || {
        vec![
            TenantSpec::new("mobilenet", zoo::mobilenet(), Precision::Fix16),
            TenantSpec::new("alexnet", zoo::alexnet(), Precision::Fix16),
        ]
    };
    let opts = CoplanOptions::default().with_search_steps(4);
    let serial = coplan(&Harness::new(1), &device, &mk(), &opts).expect("feasible");
    let parallel = coplan(&Harness::new(4), &device, &mk(), &opts).expect("feasible");
    let a = serde_json::to_string(&lcmm_multi::coplan_summary(&serial)).expect("serialises");
    let b = serde_json::to_string(&lcmm_multi::coplan_summary(&parallel)).expect("serialises");
    assert_eq!(a, b, "co-planning must be invisible to --jobs");
}
