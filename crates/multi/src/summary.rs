//! Deterministic wire/report summary of a co-plan.

use crate::Coplan;
use lcmm_sim::contention::CHANNEL_KINDS;
use lcmm_sim::ChannelKind;
use serde_json::Value;

fn channel_name(kind: ChannelKind) -> &'static str {
    match kind {
        ChannelKind::InputFeature => "input_feature",
        ChannelKind::Weight => "weight",
        ChannelKind::OutputFeature => "output_feature",
    }
}

/// A fixed-field-order JSON summary of a co-plan — the payload of the
/// serve daemon's `coplan` response and the CLI's `--json` output, and
/// what `checks/golden/multi_*.json` diffs against. Field order (and
/// the channel order of `demand`) is explicit so re-serialisation is
/// byte-stable.
#[must_use]
pub fn coplan_summary(plan: &Coplan) -> Value {
    let tenants: Vec<Value> = plan
        .tenants
        .iter()
        .map(|t| {
            Value::Map(vec![
                (
                    "allocated_bytes".to_string(),
                    Value::U64(t.result.allocated_buffer_sizes().iter().sum()),
                ),
                (
                    "contended_latency_seconds".to_string(),
                    Value::F64(t.contended_latency),
                ),
                ("model".to_string(), Value::Str(t.name.clone())),
                ("share".to_string(), Value::F64(t.share)),
                ("slowdown".to_string(), Value::F64(t.slowdown)),
                ("sram_budget_bytes".to_string(), Value::U64(t.sram_budget)),
                (
                    "steady_latency_seconds".to_string(),
                    Value::F64(t.steady_latency),
                ),
            ])
        })
        .collect();

    let demand: Vec<(String, Value)> = CHANNEL_KINDS
        .iter()
        .map(|&k| {
            (
                channel_name(k).to_string(),
                Value::F64(plan.contention.demand.get(&k).copied().unwrap_or(0.0)),
            )
        })
        .collect();
    let contention = Value::Map(vec![
        ("demand".to_string(), Value::Map(demand)),
        (
            "oversubscribed_channels".to_string(),
            Value::U64(plan.contention.oversubscribed_channels as u64),
        ),
        ("shared".to_string(), Value::Bool(plan.contention.shared)),
    ]);

    let frontier: Vec<Value> = plan
        .frontier
        .iter()
        .map(|p| {
            Value::Map(vec![
                ("objective_value".to_string(), Value::F64(p.objective_value)),
                ("pareto".to_string(), Value::Bool(p.pareto)),
                (
                    "shares".to_string(),
                    Value::Seq(p.shares.iter().map(|&s| Value::F64(s)).collect()),
                ),
                ("throughput".to_string(), Value::F64(p.throughput)),
                (
                    "weighted_latency_seconds".to_string(),
                    Value::F64(p.weighted_latency),
                ),
            ])
        })
        .collect();

    Value::Map(vec![
        ("contention".to_string(), contention),
        ("device".to_string(), Value::Str(plan.device.name.clone())),
        ("frontier".to_string(), Value::Seq(frontier)),
        (
            "objective_value".to_string(),
            Value::F64(plan.objective_value),
        ),
        ("pool_bytes".to_string(), Value::U64(plan.pool_bytes)),
        ("tenants".to_string(), Value::Seq(tenants)),
    ])
}
