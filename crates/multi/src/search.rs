//! Search over device splits and the latency/throughput Pareto
//! frontier.

use crate::plan::plan_with_shares;
use crate::{Coplan, CoplanOptions, SplitPoint, TenantSpec};
use lcmm_core::{Harness, LcmmError};
use lcmm_fpga::Device;

/// Candidate share vectors for `tenants` tenants at `steps` grid
/// resolution: every composition of `steps` equal slices into positive
/// per-tenant counts, in lexicographic order (deterministic).
///
/// A single tenant always gets the whole device. The grid size is
/// `C(steps − 1, tenants − 1)`; `steps` is clamped up to the tenant
/// count so every tenant gets at least one slice.
#[must_use]
pub fn share_grid(tenants: usize, steps: usize) -> Vec<Vec<f64>> {
    assert!(tenants > 0, "need at least one tenant");
    if tenants == 1 {
        return vec![vec![1.0]];
    }
    let steps = steps.max(tenants);
    let mut out = Vec::new();
    let mut counts = vec![0usize; tenants];
    fill(&mut out, &mut counts, 0, steps);
    out
}

fn fill(out: &mut Vec<Vec<f64>>, counts: &mut Vec<usize>, idx: usize, remaining: usize) {
    let tenants = counts.len();
    if idx == tenants - 1 {
        counts[idx] = remaining;
        let total: usize = counts.iter().sum();
        out.push(counts.iter().map(|&c| c as f64 / total as f64).collect());
        return;
    }
    // Leave at least one slice for every later tenant.
    for c in 1..=remaining - (tenants - 1 - idx) {
        counts[idx] = c;
        fill(out, counts, idx + 1, remaining - c);
    }
}

/// Strict Pareto dominance in (weighted_latency ↓, throughput ↑):
/// `a` dominates `b` when it is weakly better in both coordinates and
/// strictly better in at least one. A point never dominates an exact
/// duplicate of itself — without the strict clause, tied points would
/// mutually "dominate" each other and a frontier of duplicates (e.g.
/// symmetric tenants at mirrored shares) would come out empty.
fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    let (al, at) = a;
    let (bl, bt) = b;
    al <= bl && at >= bt && (al < bl || at > bt)
}

/// Marks the Pareto-optimal points of `points` in
/// (weighted_latency ↓, throughput ↑). Ties survive: a point is
/// non-Pareto only when some *strictly better* point exists, so exact
/// duplicates are either both on the frontier or both off it.
pub(crate) fn mark_pareto(points: &mut [SplitPoint]) {
    let snapshot: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.weighted_latency, p.throughput))
        .collect();
    for (i, p) in points.iter_mut().enumerate() {
        p.pareto = !snapshot
            .iter()
            .enumerate()
            .any(|(j, &other)| j != i && dominates(other, (p.weighted_latency, p.throughput)));
    }
}

/// Searches the share grid for the split minimising the objective.
///
/// Infeasible splits (a tenant's slice too small for any systolic
/// array) are skipped; the search fails only when *every* candidate is
/// infeasible, with the last error. Candidates are evaluated through
/// the harness's order-preserving `par_map`, so the outcome is
/// byte-identical at any `--jobs` setting.
///
/// # Errors
///
/// [`LcmmError::BudgetInfeasible`] (or the underlying pipeline error)
/// when no candidate split is feasible.
pub fn search_shares(
    harness: &Harness,
    device: &Device,
    tenants: &[TenantSpec],
    opts: &CoplanOptions,
) -> Result<Coplan, LcmmError> {
    let grid = share_grid(tenants.len(), opts.search_steps);
    let mut outcomes = harness.par_map(&grid, |shares| {
        plan_with_shares(harness, device, tenants, shares, opts)
    });

    let mut best: Option<(usize, Coplan)> = None;
    let mut points = Vec::new();
    let mut last_err = None;
    for outcome in outcomes.drain(..) {
        match outcome {
            Ok((plan, point)) => {
                let better = match &best {
                    None => true,
                    Some((_, b)) => point.objective_value < b.objective_value,
                };
                if better {
                    best = Some((points.len(), plan));
                }
                points.push(point);
            }
            Err(e) => last_err = Some(e),
        }
    }
    let Some((best_idx, mut plan)) = best else {
        return Err(
            last_err.unwrap_or_else(|| LcmmError::InvalidRequest("empty share grid".to_string()))
        );
    };
    mark_pareto(&mut points);
    debug_assert!(points[best_idx].pareto || points.len() > 1);
    plan.frontier = points;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_two_tenant_splits() {
        let grid = share_grid(2, 4);
        assert_eq!(
            grid,
            vec![vec![0.25, 0.75], vec![0.5, 0.5], vec![0.75, 0.25],]
        );
        for shares in &grid {
            let sum: f64 = shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_single_tenant_is_whole_device() {
        assert_eq!(share_grid(1, 8), vec![vec![1.0]]);
    }

    #[test]
    fn grid_clamps_steps_to_tenant_count() {
        // 3 tenants at 2 steps: clamped to 3 → one equal split.
        let grid = share_grid(3, 2);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0], vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
    }

    #[test]
    fn grid_three_tenants_size_is_binomial() {
        // C(7, 2) = 21 compositions of 8 into 3 positive parts.
        assert_eq!(share_grid(3, 8).len(), 21);
    }

    #[test]
    fn pareto_marking_keeps_non_dominated_points() {
        let mk = |l: f64, t: f64| SplitPoint {
            shares: vec![1.0],
            weighted_latency: l,
            throughput: t,
            objective_value: l,
            pareto: false,
        };
        let mut points = vec![mk(1.0, 10.0), mk(2.0, 20.0), mk(3.0, 15.0)];
        mark_pareto(&mut points);
        assert!(points[0].pareto, "lowest latency");
        assert!(points[1].pareto, "highest throughput");
        assert!(!points[2].pareto, "dominated by the second point");
    }

    #[test]
    fn pareto_marking_keeps_tied_points() {
        let mk = |l: f64, t: f64| SplitPoint {
            shares: vec![1.0],
            weighted_latency: l,
            throughput: t,
            objective_value: l,
            pareto: false,
        };
        // Two exact duplicates at the optimum (symmetric tenants at
        // mirrored shares score identically): both must stay Pareto —
        // the frontier of an all-tied grid must never be empty.
        let mut points = vec![mk(1.0, 10.0), mk(1.0, 10.0), mk(2.0, 5.0)];
        mark_pareto(&mut points);
        assert!(points[0].pareto, "first duplicate");
        assert!(points[1].pareto, "second duplicate");
        assert!(!points[2].pareto, "strictly dominated");
        // A fully tied grid keeps every point.
        let mut tied = vec![mk(1.5, 8.0); 4];
        mark_pareto(&mut tied);
        assert!(tied.iter().all(|p| p.pareto), "no point may vanish");
        // Ties in one coordinate only: the strictly-better point wins.
        let mut partial = vec![mk(1.0, 10.0), mk(1.0, 12.0)];
        mark_pareto(&mut partial);
        assert!(!partial[0].pareto, "same latency, lower throughput");
        assert!(partial[1].pareto);
    }
}
