//! Evaluating one split: partition → joint knapsack → finalise →
//! contention.

use crate::{Coplan, CoplanOptions, Objective, SplitPoint, TenantPlan, TenantSpec};
use lcmm_core::coplan::{tenant_gain_curve, GainCurve, CAPACITY_UNIT_BYTES};
use lcmm_core::{Harness, LcmmError, Pipeline};
use lcmm_fpga::{AccelDesign, Device};
use lcmm_sim::{cross_tenant_contention, tenant_load};

/// The shared tensor-SRAM pool for a set of derated tenant designs:
/// the device cap minus *every* tenant's double-buffered tile budget.
///
/// Derived without re-stating the cap fraction: each design's
/// `tensor_sram_budget()` is `cap − tile_t` (partitioning leaves SRAM
/// untouched), so the pool is the first design's budget minus the
/// remaining tile budgets. With a single tenant this is exactly
/// `designs[0].tensor_sram_budget()` — the invariant the bit-identity
/// guarantee rests on.
#[must_use]
pub fn pool_bytes(designs: &[&AccelDesign]) -> u64 {
    let Some((first, rest)) = designs.split_first() else {
        return 0;
    };
    let tiles: u64 = rest
        .iter()
        .map(|d| d.tile_budget.total_double_buffered())
        .sum();
    first.tensor_sram_budget().saturating_sub(tiles)
}

/// Second-level capacity DP: assigns `units` knapsack units across the
/// tenants' weighted value curves. Returns the per-tenant unit grants
/// (smallest grant on value ties, so the split is deterministic).
///
/// This *is* the joint DNNK knapsack over the union of all tenants'
/// virtual buffers: buffers of different tenants couple only through
/// capacity, so the union DP factors into per-tenant curves combined
/// here — pivot compensation stays per-tenant by construction.
/// Smallest grant after which `curve` is bitwise flat: every value at
/// `s..=units()` has the same bit pattern as the last entry. Grants
/// beyond the cap can never win the DP's strict-improvement test (the
/// DP row is non-decreasing, so a larger grant with the same curve
/// value reads an older, no-better row cell), so restricting the grant
/// range to the cap is exactly equivalent — including tie-breaking.
fn saturation_cap(curve: &GainCurve) -> usize {
    let vals = curve.values();
    let last = vals[vals.len() - 1].to_bits();
    let mut s = vals.len() - 1;
    while s > 0 && vals[s - 1].to_bits() == last {
        s -= 1;
    }
    s
}

/// Assigns `units` knapsack units across the tenants' `(weight, curve)`
/// pairs, returning per-tenant unit grants (see module docs; smallest
/// grant wins value ties, so the split is deterministic). Public so the
/// workload controller can re-run the capacity split when it
/// re-partitions tenant shares online.
#[must_use]
pub fn joint_capacity_dp(curves: &[(f64, GainCurve)], units: usize) -> Vec<usize> {
    let t = curves.len();
    let mut dp = vec![0.0f64; units + 1];
    let mut grant = vec![0u32; t * (units + 1)];
    for (k, (weight, curve)) in curves.iter().enumerate() {
        // Three exact shortcuts keep this DP out of the delta-replan
        // critical path (see docs/DELTA.md for the equivalence
        // argument): grants are capped at the curve's bitwise
        // saturation point; the first stage folds its all-zeros input
        // row into a prefix-max scan; and the last stage fills only the
        // one cell the backtrace reads.
        let cap = saturation_cap(curve);
        let last_stage = k + 1 == t;
        let mut next = vec![f64::NEG_INFINITY; units + 1];
        if k == 0 {
            // dp[u-g] is 0.0 everywhere, so cell u is the running
            // best over g ≤ min(u, cap) of `0.0 + weight * value(g)`
            // (the explicit 0.0 + keeps -0.0 curve entries bit-exact),
            // with the first strict achiever winning — a prefix max.
            let top = cap.min(units);
            let mut best_v = vec![f64::NEG_INFINITY; top + 1];
            let mut best_g = vec![0u32; top + 1];
            let mut v = f64::NEG_INFINITY;
            let mut g_at = 0u32;
            for (g, (bv, bg)) in best_v.iter_mut().zip(&mut best_g).enumerate() {
                let cand = 0.0 + weight * curve.value_at(g);
                if cand > v {
                    v = cand;
                    g_at = g as u32;
                }
                *bv = v;
                *bg = g_at;
            }
            let cells = if last_stage { units..=units } else { 0..=units };
            for u in cells {
                let j = u.min(top);
                next[u] = best_v[j];
                grant[k * (units + 1) + u] = best_g[j];
            }
        } else {
            let cells: Box<dyn Iterator<Item = usize>> = if last_stage {
                Box::new(std::iter::once(units))
            } else {
                Box::new(0..=units)
            };
            for u in cells {
                for g in 0..=u.min(cap) {
                    let v = dp[u - g] + weight * curve.value_at(g);
                    if v > next[u] {
                        next[u] = v;
                        grant[k * (units + 1) + u] = g as u32;
                    }
                }
            }
        }
        dp = next;
    }
    let mut grants = vec![0usize; t];
    let mut u = units;
    for k in (0..t).rev() {
        let g = grant[k * (units + 1) + u] as usize;
        grants[k] = g;
        u -= g;
    }
    grants
}

/// Plans one explicit split. Returns the co-plan and its aggregate
/// scores as an (unmarked) frontier point.
///
/// # Errors
///
/// Any error of the underlying single-model pipeline — most commonly
/// [`LcmmError::BudgetInfeasible`] when a share leaves a tenant too few
/// DSPs.
pub fn plan_with_shares(
    harness: &Harness,
    device: &Device,
    tenants: &[TenantSpec],
    shares: &[f64],
    opts: &CoplanOptions,
) -> Result<(Coplan, SplitPoint), LcmmError> {
    assert_eq!(tenants.len(), shares.len(), "one share per tenant");
    let pipeline = Pipeline::new(opts.options);

    // Conserving partition views (largest-remainder apportionment) and
    // the tenants' base designs on them.
    let parts = device
        .partition_set(shares)
        .map_err(LcmmError::BudgetInfeasible)?;
    let mut bases = Vec::with_capacity(tenants.len());
    for (t, part) in tenants.iter().zip(&parts) {
        bases.push(harness.try_design(&t.graph, part, t.precision)?);
    }

    // Joint knapsack over the shared pool. The delta path reuses cached
    // pass 1–2 artifacts (and their per-pool gain-curve memo) across
    // grid points and replans only passes 3–4 per tenant; the scratch
    // path is the original full recomputation, kept for A/B
    // verification. Both are bit-identical (docs/DELTA.md).
    let mut artifacts = Vec::with_capacity(tenants.len());
    let mut derated = Vec::with_capacity(tenants.len());
    if opts.delta_replan() {
        for (t, base) in tenants.iter().zip(&bases) {
            artifacts.push(harness.try_artifacts(&t.graph, base, opts.options, None)?);
        }
    } else {
        for base in &bases {
            derated.push(pipeline.lcmm_design((**base).clone()));
        }
    }
    let derated_refs: Vec<&AccelDesign> = if opts.delta_replan() {
        artifacts.iter().map(|a| a.design()).collect()
    } else {
        derated.iter().collect()
    };
    let pool = pool_bytes(&derated_refs);
    let units = (pool / CAPACITY_UNIT_BYTES) as usize;
    let curves: Vec<(f64, GainCurve)> = if opts.delta_replan() {
        tenants
            .iter()
            .zip(&artifacts)
            .map(|(t, a)| Ok((t.weight, (*a.gain_curve(&t.graph, pool)?).clone())))
            .collect::<Result<_, LcmmError>>()?
    } else {
        tenants
            .iter()
            .zip(&derated)
            .map(|(t, d)| {
                let profile = harness.profile(&t.graph, d);
                (
                    t.weight,
                    tenant_gain_curve(&t.graph, &profile, d, &opts.options, pool),
                )
            })
            .collect()
    };
    let mut grants = joint_capacity_dp(&curves, units);
    // Unclaimed units and the sub-unit remainder go to the first
    // tenant: they are free (a larger budget never hurts DNNK), and
    // granting them keeps the single-tenant case handing the pipeline
    // exactly `tensor_sram_budget()` bytes — the bit-identity anchor.
    let claimed: usize = grants.iter().sum();
    grants[0] += units - claimed;
    let mut budgets: Vec<u64> = grants
        .iter()
        .map(|&g| g as u64 * CAPACITY_UNIT_BYTES)
        .collect();
    budgets[0] += pool - units as u64 * CAPACITY_UNIT_BYTES;

    // Finalise each tenant with the full pipeline under its grant.
    let mut plans = Vec::with_capacity(tenants.len());
    let mut loads = Vec::with_capacity(tenants.len());
    for ((t, base), (&share, &budget)) in
        tenants.iter().zip(&bases).zip(shares.iter().zip(&budgets))
    {
        let result = if opts.delta_replan() {
            harness.try_replan_with_budget(&t.graph, base, opts.options, Some(budget), None)?
        } else {
            let options = opts.options.with_tensor_budget(Some(budget));
            harness.try_lcmm_with_design(&t.graph, base, options, None)?
        };
        let load = tenant_load(&t.graph, &result);
        plans.push(TenantPlan {
            name: t.name.clone(),
            share,
            sram_budget: budget,
            result: (*result).clone(),
            steady_latency: load.steady_latency,
            contended_latency: 0.0, // filled from the contention report
            slowdown: 1.0,
        });
        loads.push(load);
    }

    let contention = cross_tenant_contention(device.ddr.banks, &loads);
    for (plan, (&s, &l)) in plans.iter_mut().zip(
        contention
            .slowdown
            .iter()
            .zip(&contention.contended_latency),
    ) {
        plan.slowdown = s;
        plan.contended_latency = l;
    }

    let weighted_latency: f64 = tenants
        .iter()
        .zip(&plans)
        .map(|(t, p)| t.weight * p.contended_latency)
        .sum();
    let throughput: f64 = plans.iter().map(|p| 1.0 / p.contended_latency).sum();
    let objective_value = match opts.objective {
        Objective::WeightedLatency => weighted_latency,
        Objective::MaxSloViolation => tenants
            .iter()
            .zip(&plans)
            .filter_map(|(t, p)| t.slo_seconds.map(|slo| p.contended_latency / slo))
            .fold(0.0f64, f64::max),
    };
    let point = SplitPoint {
        shares: shares.to_vec(),
        weighted_latency,
        throughput,
        objective_value,
        pareto: false,
    };
    let plan = Coplan {
        device: device.clone(),
        tenants: plans,
        pool_bytes: pool,
        contention,
        objective_value,
        frontier: Vec::new(),
    };
    Ok((plan, point))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(values: Vec<f64>) -> GainCurve {
        GainCurve::from_values(values)
    }

    /// The original O(t · units · curve_units) DP, kept verbatim as the
    /// semantic reference for the shortcut implementation.
    fn joint_capacity_dp_reference(curves: &[(f64, GainCurve)], units: usize) -> Vec<usize> {
        let t = curves.len();
        let mut dp = vec![0.0f64; units + 1];
        let mut grant = vec![0u32; t * (units + 1)];
        for (k, (weight, curve)) in curves.iter().enumerate() {
            let mut next = vec![f64::NEG_INFINITY; units + 1];
            for u in 0..=units {
                for g in 0..=u.min(curve.units()) {
                    let v = dp[u - g] + weight * curve.value_at(g);
                    if v > next[u] {
                        next[u] = v;
                        grant[k * (units + 1) + u] = g as u32;
                    }
                }
            }
            dp = next;
        }
        let mut grants = vec![0usize; t];
        let mut u = units;
        for k in (0..t).rev() {
            let g = grant[k * (units + 1) + u] as usize;
            grants[k] = g;
            u -= g;
        }
        grants
    }

    #[test]
    fn dp_shortcuts_match_reference_on_random_curves() {
        // Deterministic LCG so the test needs no external RNG crate.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..200 {
            let tenants = 1 + case % 4;
            let units = (next() * 40.0) as usize;
            let curves: Vec<(f64, GainCurve)> = (0..tenants)
                .map(|_| {
                    let len = 1 + (next() * 50.0) as usize;
                    let mut vals = Vec::with_capacity(len);
                    let mut v = 0.0f64;
                    for _ in 0..len {
                        // Frequent plateaus (including length-1 flats and
                        // fully flat curves) stress the saturation cap;
                        // occasional dips stress non-monotone inputs.
                        let r = next();
                        if r < 0.45 {
                            v += next();
                        } else if r < 0.55 {
                            v -= 0.25 * next();
                        }
                        vals.push(v);
                    }
                    (0.25 + next() * 3.0, GainCurve::from_values(vals))
                })
                .collect();
            assert_eq!(
                joint_capacity_dp(&curves, units),
                joint_capacity_dp_reference(&curves, units),
                "case {case}: tenants={tenants} units={units}"
            );
        }
    }

    #[test]
    fn dp_splits_capacity_by_marginal_value() {
        // Tenant A saturates after 1 unit; tenant B keeps gaining.
        let curves = vec![
            (1.0, curve(vec![0.0, 5.0, 5.0, 5.0])),
            (1.0, curve(vec![0.0, 2.0, 4.0, 6.0])),
        ];
        let grants = joint_capacity_dp(&curves, 3);
        assert_eq!(grants, vec![1, 2]);
    }

    #[test]
    fn dp_respects_objective_weights() {
        // Equal curves, but tenant B counts double: B gets the unit.
        let curves = vec![(1.0, curve(vec![0.0, 3.0])), (2.0, curve(vec![0.0, 3.0]))];
        let grants = joint_capacity_dp(&curves, 1);
        assert_eq!(grants, vec![0, 1]);
    }

    #[test]
    fn dp_single_tenant_takes_peak_value() {
        let curves = vec![(1.0, curve(vec![0.0, 1.0, 4.0, 4.5]))];
        let grants = joint_capacity_dp(&curves, 3);
        assert_eq!(grants, vec![3]);
    }

    #[test]
    fn dp_prefers_smaller_grants_on_ties() {
        // Flat beyond 1 unit: the DP must not hoard capacity.
        let curves = vec![
            (1.0, curve(vec![0.0, 5.0, 5.0])),
            (1.0, curve(vec![0.0, 0.0, 0.0])),
        ];
        let grants = joint_capacity_dp(&curves, 2);
        assert_eq!(grants, vec![1, 0]);
    }
}
