//! Evaluating one split: partition → joint knapsack → finalise →
//! contention.

use crate::{Coplan, CoplanOptions, Objective, SplitPoint, TenantPlan, TenantSpec};
use lcmm_core::coplan::{tenant_gain_curve, GainCurve, CAPACITY_UNIT_BYTES};
use lcmm_core::{Harness, LcmmError, Pipeline};
use lcmm_fpga::{AccelDesign, Device};
use lcmm_sim::{cross_tenant_contention, tenant_load};

/// The shared tensor-SRAM pool for a set of derated tenant designs:
/// the device cap minus *every* tenant's double-buffered tile budget.
///
/// Derived without re-stating the cap fraction: each design's
/// `tensor_sram_budget()` is `cap − tile_t` (partitioning leaves SRAM
/// untouched), so the pool is the first design's budget minus the
/// remaining tile budgets. With a single tenant this is exactly
/// `designs[0].tensor_sram_budget()` — the invariant the bit-identity
/// guarantee rests on.
#[must_use]
pub fn pool_bytes(designs: &[&AccelDesign]) -> u64 {
    let Some((first, rest)) = designs.split_first() else {
        return 0;
    };
    let tiles: u64 = rest
        .iter()
        .map(|d| d.tile_budget.total_double_buffered())
        .sum();
    first.tensor_sram_budget().saturating_sub(tiles)
}

/// Second-level capacity DP: assigns `units` knapsack units across the
/// tenants' weighted value curves. Returns the per-tenant unit grants
/// (smallest grant on value ties, so the split is deterministic).
///
/// This *is* the joint DNNK knapsack over the union of all tenants'
/// virtual buffers: buffers of different tenants couple only through
/// capacity, so the union DP factors into per-tenant curves combined
/// here — pivot compensation stays per-tenant by construction.
fn joint_capacity_dp(curves: &[(f64, GainCurve)], units: usize) -> Vec<usize> {
    let t = curves.len();
    let mut dp = vec![0.0f64; units + 1];
    let mut grant = vec![0u32; t * (units + 1)];
    for (k, (weight, curve)) in curves.iter().enumerate() {
        let mut next = vec![f64::NEG_INFINITY; units + 1];
        for u in 0..=units {
            for g in 0..=u.min(curve.units()) {
                let v = dp[u - g] + weight * curve.value_at(g);
                if v > next[u] {
                    next[u] = v;
                    grant[k * (units + 1) + u] = g as u32;
                }
            }
        }
        dp = next;
    }
    let mut grants = vec![0usize; t];
    let mut u = units;
    for k in (0..t).rev() {
        let g = grant[k * (units + 1) + u] as usize;
        grants[k] = g;
        u -= g;
    }
    grants
}

/// Plans one explicit split. Returns the co-plan and its aggregate
/// scores as an (unmarked) frontier point.
///
/// # Errors
///
/// Any error of the underlying single-model pipeline — most commonly
/// [`LcmmError::BudgetInfeasible`] when a share leaves a tenant too few
/// DSPs.
pub fn plan_with_shares(
    harness: &Harness,
    device: &Device,
    tenants: &[TenantSpec],
    shares: &[f64],
    opts: &CoplanOptions,
) -> Result<(Coplan, SplitPoint), LcmmError> {
    assert_eq!(tenants.len(), shares.len(), "one share per tenant");
    let pipeline = Pipeline::new(opts.options);

    // Partitioned base designs and their derated LCMM forms.
    let mut bases = Vec::with_capacity(tenants.len());
    let mut derated = Vec::with_capacity(tenants.len());
    for (t, &share) in tenants.iter().zip(shares) {
        let part = device.partition(share);
        let base = harness.try_design(&t.graph, &part, t.precision)?;
        derated.push(pipeline.lcmm_design((*base).clone()));
        bases.push(base);
    }

    // Joint knapsack over the shared pool.
    let derated_refs: Vec<&AccelDesign> = derated.iter().collect();
    let pool = pool_bytes(&derated_refs);
    let units = (pool / CAPACITY_UNIT_BYTES) as usize;
    let curves: Vec<(f64, GainCurve)> = tenants
        .iter()
        .zip(&derated)
        .map(|(t, d)| {
            let profile = harness.profile(&t.graph, d);
            (
                t.weight,
                tenant_gain_curve(&t.graph, &profile, d, &opts.options, pool),
            )
        })
        .collect();
    let mut grants = joint_capacity_dp(&curves, units);
    // Unclaimed units and the sub-unit remainder go to the first
    // tenant: they are free (a larger budget never hurts DNNK), and
    // granting them keeps the single-tenant case handing the pipeline
    // exactly `tensor_sram_budget()` bytes — the bit-identity anchor.
    let claimed: usize = grants.iter().sum();
    grants[0] += units - claimed;
    let mut budgets: Vec<u64> = grants
        .iter()
        .map(|&g| g as u64 * CAPACITY_UNIT_BYTES)
        .collect();
    budgets[0] += pool - units as u64 * CAPACITY_UNIT_BYTES;

    // Finalise each tenant with the full pipeline under its grant.
    let mut plans = Vec::with_capacity(tenants.len());
    let mut loads = Vec::with_capacity(tenants.len());
    for ((t, base), (&share, &budget)) in
        tenants.iter().zip(&bases).zip(shares.iter().zip(&budgets))
    {
        let options = opts.options.with_tensor_budget(Some(budget));
        let result = harness.try_lcmm_with_design(&t.graph, base, options, None)?;
        let load = tenant_load(&t.graph, &result);
        plans.push(TenantPlan {
            name: t.name.clone(),
            share,
            sram_budget: budget,
            result: (*result).clone(),
            steady_latency: load.steady_latency,
            contended_latency: 0.0, // filled from the contention report
            slowdown: 1.0,
        });
        loads.push(load);
    }

    let contention = cross_tenant_contention(device.ddr.banks, &loads);
    for (plan, (&s, &l)) in plans.iter_mut().zip(
        contention
            .slowdown
            .iter()
            .zip(&contention.contended_latency),
    ) {
        plan.slowdown = s;
        plan.contended_latency = l;
    }

    let weighted_latency: f64 = tenants
        .iter()
        .zip(&plans)
        .map(|(t, p)| t.weight * p.contended_latency)
        .sum();
    let throughput: f64 = plans.iter().map(|p| 1.0 / p.contended_latency).sum();
    let objective_value = match opts.objective {
        Objective::WeightedLatency => weighted_latency,
        Objective::MaxSloViolation => tenants
            .iter()
            .zip(&plans)
            .filter_map(|(t, p)| t.slo_seconds.map(|slo| p.contended_latency / slo))
            .fold(0.0f64, f64::max),
    };
    let point = SplitPoint {
        shares: shares.to_vec(),
        weighted_latency,
        throughput,
        objective_value,
        pareto: false,
    };
    let plan = Coplan {
        device: device.clone(),
        tenants: plans,
        pool_bytes: pool,
        contention,
        objective_value,
        frontier: Vec::new(),
    };
    Ok((plan, point))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(values: Vec<f64>) -> GainCurve {
        GainCurve::from_values(values)
    }

    #[test]
    fn dp_splits_capacity_by_marginal_value() {
        // Tenant A saturates after 1 unit; tenant B keeps gaining.
        let curves = vec![
            (1.0, curve(vec![0.0, 5.0, 5.0, 5.0])),
            (1.0, curve(vec![0.0, 2.0, 4.0, 6.0])),
        ];
        let grants = joint_capacity_dp(&curves, 3);
        assert_eq!(grants, vec![1, 2]);
    }

    #[test]
    fn dp_respects_objective_weights() {
        // Equal curves, but tenant B counts double: B gets the unit.
        let curves = vec![(1.0, curve(vec![0.0, 3.0])), (2.0, curve(vec![0.0, 3.0]))];
        let grants = joint_capacity_dp(&curves, 1);
        assert_eq!(grants, vec![0, 1]);
    }

    #[test]
    fn dp_single_tenant_takes_peak_value() {
        let curves = vec![(1.0, curve(vec![0.0, 1.0, 4.0, 4.5]))];
        let grants = joint_capacity_dp(&curves, 3);
        assert_eq!(grants, vec![3]);
    }

    #[test]
    fn dp_prefers_smaller_grants_on_ties() {
        // Flat beyond 1 unit: the DP must not hoard capacity.
        let curves = vec![
            (1.0, curve(vec![0.0, 5.0, 5.0])),
            (1.0, curve(vec![0.0, 0.0, 0.0])),
        ];
        let grants = joint_capacity_dp(&curves, 2);
        assert_eq!(grants, vec![1, 0]);
    }
}
