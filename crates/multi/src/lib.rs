//! Multi-tenant co-planning: several DNNs sharing one FPGA.
//!
//! LCMM's passes assume one network owns the whole device. This crate
//! plans N networks *jointly*: device resources (DSP slices, DRAM
//! banks) are partitioned across tenants — from explicit per-tenant
//! shares or via a search over splits — and the on-chip SRAM pool is
//! divided by a **joint DNNK knapsack** over the union of all tenants'
//! virtual buffers. Because tenants' buffers never touch each other's
//! ops, that joint knapsack decomposes exactly into one per-tenant DNNK
//! value curve ([`lcmm_core::coplan`]) plus a second-level DP over the
//! capacity split — per-tenant pivot compensation survives intact, so
//! one tenant's non-bottleneck tensors cannot crowd out another
//! tenant's bottleneck ones.
//!
//! Cross-tenant DRAM contention is estimated by
//! [`lcmm_sim::contention`]: each tenant is simulated against its
//! partition, and the interleaved demands are composed on the shared
//! channels, reusing the simulator's oversubscription accounting.
//!
//! # Quick tour
//!
//! ```
//! use lcmm_core::Harness;
//! use lcmm_fpga::{Device, Precision};
//! use lcmm_multi::{coplan, CoplanOptions, TenantSpec};
//!
//! let harness = Harness::new(1);
//! let tenants = vec![
//!     TenantSpec::new("mobilenet", lcmm_graph::zoo::mobilenet(), Precision::Fix16),
//!     TenantSpec::new("alexnet", lcmm_graph::zoo::alexnet(), Precision::Fix16),
//! ];
//! let plan = coplan(&harness, &Device::vu9p(), &tenants, &CoplanOptions::default())
//!     .expect("two small models fit a VU9P");
//! assert_eq!(plan.tenants.len(), 2);
//! assert!(plan.tenants.iter().all(|t| t.contended_latency > 0.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod plan;
mod search;
mod summary;

pub use plan::{joint_capacity_dp, plan_with_shares, pool_bytes};
pub use search::{search_shares, share_grid};
pub use summary::coplan_summary;

use lcmm_core::{Harness, LcmmError, LcmmOptions, LcmmResult};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use lcmm_sim::ContentionReport;
use serde::{Deserialize, Serialize};

/// One network sharing the device.
///
/// Construct with [`TenantSpec::new`] and the `with_*` builders
/// (mirroring `LcmmOptions`); the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TenantSpec {
    /// Model name (registry key in `lcmm serve`, label in reports).
    pub name: String,
    /// The network.
    pub graph: Graph,
    /// Arithmetic precision for this tenant's design.
    pub precision: Precision,
    /// Weight of this tenant in the aggregate objective (default 1.0).
    pub weight: f64,
    /// Optional latency SLO in seconds, for the max-SLO-violation
    /// objective.
    pub slo_seconds: Option<f64>,
    /// Explicit compute share in `(0, 1]`. When any tenant leaves this
    /// `None`, the planner searches over splits instead (all tenants
    /// must then leave it `None`).
    pub share: Option<f64>,
}

impl TenantSpec {
    /// A tenant with weight 1, no SLO and a searched share.
    #[must_use]
    pub fn new(name: impl Into<String>, graph: Graph, precision: Precision) -> Self {
        Self {
            name: name.into(),
            graph,
            precision,
            weight: 1.0,
            slo_seconds: None,
            share: None,
        }
    }

    /// Returns a copy with an explicit compute share.
    #[must_use]
    pub fn with_share(mut self, share: f64) -> Self {
        self.share = Some(share);
        self
    }

    /// Returns a copy with an objective weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Returns a copy with a latency SLO in seconds.
    #[must_use]
    pub fn with_slo_seconds(mut self, slo: f64) -> Self {
        self.slo_seconds = Some(slo);
        self
    }
}

/// Aggregate objective minimised by the split search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Σ `weight_t` × contended latency (seconds) — the default.
    WeightedLatency,
    /// max over tenants of `contended_latency / slo` (tenants without
    /// an SLO contribute 0).
    MaxSloViolation,
}

/// Co-planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct CoplanOptions {
    /// Pipeline options applied to every tenant (the tenant's SRAM
    /// share overrides `tensor_budget` internally).
    pub options: LcmmOptions,
    /// Share-grid resolution for the split search: shares move in steps
    /// of `1 / search_steps`.
    pub search_steps: usize,
    /// Objective the search minimises.
    pub objective: Objective,
    /// Reuse budget-invariant pass artifacts across grid points and
    /// finalisation runs ([`lcmm_core::delta`]). `None` means the
    /// default (**on**) — the `Option` keeps older serialized requests
    /// without the field deserializing. The delta path is bit-identical
    /// to scratch planning, so turning it off exists only for A/B
    /// verification (`lcmm multi --no-delta`, the CI delta-equivalence
    /// gate). Read it through [`CoplanOptions::delta_replan`].
    pub delta_replan: Option<bool>,
}

impl Default for CoplanOptions {
    fn default() -> Self {
        Self {
            options: LcmmOptions::default(),
            search_steps: 8,
            objective: Objective::WeightedLatency,
            delta_replan: None,
        }
    }
}

impl CoplanOptions {
    /// Returns a copy with different per-tenant pipeline options.
    #[must_use]
    pub fn with_options(mut self, options: LcmmOptions) -> Self {
        self.options = options;
        self
    }

    /// Returns a copy with a different search-grid resolution.
    #[must_use]
    pub fn with_search_steps(mut self, steps: usize) -> Self {
        self.search_steps = steps;
        self
    }

    /// Returns a copy minimising `objective`.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns a copy with the delta-replan artifact reuse toggled.
    #[must_use]
    pub fn with_delta_replan(mut self, on: bool) -> Self {
        self.delta_replan = Some(on);
        self
    }

    /// Whether planning reuses delta artifacts (the unset default is on).
    #[must_use]
    pub fn delta_replan(&self) -> bool {
        self.delta_replan.unwrap_or(true)
    }
}

/// One tenant's slice of a co-plan.
#[derive(Debug, Clone)]
pub struct TenantPlan {
    /// Tenant name.
    pub name: String,
    /// Compute share granted (DSP slices, DRAM banks).
    pub share: f64,
    /// SRAM bytes granted by the joint knapsack.
    pub sram_budget: u64,
    /// The tenant's finalised single-model plan under that budget.
    pub result: LcmmResult,
    /// Simulated uncontended steady-state latency, seconds.
    pub steady_latency: f64,
    /// Latency after cross-tenant channel contention, seconds.
    pub contended_latency: f64,
    /// Contention slowdown factor (≥ 1).
    pub slowdown: f64,
}

/// A searched split and its aggregate scores (one Pareto-frontier
/// candidate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPoint {
    /// Per-tenant compute shares, in tenant order.
    pub shares: Vec<f64>,
    /// Σ weighted contended latency, seconds.
    pub weighted_latency: f64,
    /// Aggregate throughput, inferences per second (Σ 1/latency).
    pub throughput: f64,
    /// The minimised objective's value at this split.
    pub objective_value: f64,
    /// Whether the point is Pareto-optimal in
    /// (weighted_latency ↓, throughput ↑) over the searched grid.
    pub pareto: bool,
}

/// A complete multi-tenant co-plan.
#[derive(Debug, Clone)]
pub struct Coplan {
    /// The shared device.
    pub device: Device,
    /// Per-tenant plans, in input order.
    pub tenants: Vec<TenantPlan>,
    /// Shared SRAM pool the joint knapsack divided, bytes.
    pub pool_bytes: u64,
    /// Cross-tenant DRAM contention estimate.
    pub contention: ContentionReport,
    /// Value of the minimised objective for the chosen split.
    pub objective_value: f64,
    /// Every searched split with aggregate scores (a single entry when
    /// shares were explicit).
    pub frontier: Vec<SplitPoint>,
}

impl Coplan {
    /// The tenant planned for `name`, if present.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantPlan> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Sum of the per-tenant SRAM grants, bytes (≤ [`Coplan::pool_bytes`]).
    #[must_use]
    pub fn allocated_pool_bytes(&self) -> u64 {
        self.tenants.iter().map(|t| t.sram_budget).sum()
    }
}

/// Plans `tenants` jointly on `device`.
///
/// With explicit shares on every tenant the split is taken as given
/// (shares must sum to at most 1); with no shares the planner searches
/// the share grid and keeps the split minimising
/// [`CoplanOptions::objective`]. Mixing explicit and searched shares is
/// rejected.
///
/// # Errors
///
/// [`LcmmError::InvalidRequest`] for empty/duplicate/mis-shared tenant
/// sets, and any error of the underlying single-model pipeline (e.g.
/// [`LcmmError::BudgetInfeasible`] when a share leaves a tenant too few
/// DSPs for the smallest systolic array).
pub fn coplan(
    harness: &Harness,
    device: &Device,
    tenants: &[TenantSpec],
    opts: &CoplanOptions,
) -> Result<Coplan, LcmmError> {
    validate_tenants(tenants)?;
    let explicit: Vec<Option<f64>> = tenants.iter().map(|t| t.share).collect();
    if explicit.iter().all(Option::is_some) {
        let shares: Vec<f64> = explicit.into_iter().map(Option::unwrap).collect();
        let sum: f64 = shares.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(LcmmError::InvalidRequest(format!(
                "tenant shares sum to {sum:.3} > 1"
            )));
        }
        let (mut plan, point) = plan_with_shares(harness, device, tenants, &shares, opts)?;
        plan.frontier = vec![SplitPoint {
            pareto: true,
            ..point
        }];
        Ok(plan)
    } else if explicit.iter().all(Option::is_none) {
        search_shares(harness, device, tenants, opts)
    } else {
        Err(LcmmError::InvalidRequest(
            "either every tenant or no tenant may carry an explicit share".to_string(),
        ))
    }
}

fn validate_tenants(tenants: &[TenantSpec]) -> Result<(), LcmmError> {
    if tenants.is_empty() {
        return Err(LcmmError::InvalidRequest(
            "a co-plan needs at least one tenant".to_string(),
        ));
    }
    for (i, t) in tenants.iter().enumerate() {
        if t.name.is_empty() {
            return Err(LcmmError::InvalidRequest(format!(
                "tenant {i} has an empty name"
            )));
        }
        if tenants[..i].iter().any(|u| u.name == t.name) {
            return Err(LcmmError::InvalidRequest(format!(
                "duplicate tenant name {:?}",
                t.name
            )));
        }
        if !(t.weight.is_finite() && t.weight > 0.0) {
            return Err(LcmmError::InvalidRequest(format!(
                "tenant {:?} weight {} must be positive and finite",
                t.name, t.weight
            )));
        }
        if let Some(s) = t.share {
            if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                return Err(LcmmError::InvalidRequest(format!(
                    "tenant {:?} share {s} outside (0, 1]",
                    t.name
                )));
            }
        }
        if let Some(slo) = t.slo_seconds {
            if !(slo.is_finite() && slo > 0.0) {
                return Err(LcmmError::InvalidRequest(format!(
                    "tenant {:?} SLO {slo} must be positive and finite",
                    t.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    fn two_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("mobilenet", zoo::mobilenet(), Precision::Fix16),
            TenantSpec::new("alexnet", zoo::alexnet(), Precision::Fix16),
        ]
    }

    #[test]
    fn rejects_empty_and_duplicate_tenants() {
        let harness = Harness::new(1);
        let device = Device::vu9p();
        let opts = CoplanOptions::default();
        assert!(matches!(
            coplan(&harness, &device, &[], &opts),
            Err(LcmmError::InvalidRequest(_))
        ));
        let mut dup = two_tenants();
        dup[1].name = "mobilenet".to_string();
        assert!(matches!(
            coplan(&harness, &device, &dup, &opts),
            Err(LcmmError::InvalidRequest(_))
        ));
    }

    #[test]
    fn rejects_mixed_and_oversubscribed_shares() {
        let harness = Harness::new(1);
        let device = Device::vu9p();
        let opts = CoplanOptions::default();
        let mut mixed = two_tenants();
        mixed[0].share = Some(0.5);
        assert!(matches!(
            coplan(&harness, &device, &mixed, &opts),
            Err(LcmmError::InvalidRequest(_))
        ));
        let mut over = two_tenants();
        over[0].share = Some(0.7);
        over[1].share = Some(0.7);
        assert!(matches!(
            coplan(&harness, &device, &over, &opts),
            Err(LcmmError::InvalidRequest(_))
        ));
    }

    #[test]
    fn explicit_shares_plan_both_tenants() {
        let harness = Harness::new(1);
        let device = Device::vu9p();
        let mut tenants = two_tenants();
        tenants[0].share = Some(0.5);
        tenants[1].share = Some(0.5);
        let plan = coplan(&harness, &device, &tenants, &CoplanOptions::default())
            .expect("half-and-half fits");
        assert_eq!(plan.tenants.len(), 2);
        assert_eq!(plan.frontier.len(), 1);
        assert!(plan.allocated_pool_bytes() <= plan.pool_bytes);
        for t in &plan.tenants {
            assert!(t.steady_latency > 0.0);
            assert!(t.contended_latency >= t.steady_latency - 1e-15);
            assert!(t.slowdown >= 1.0);
        }
        assert!(plan.tenant("mobilenet").is_some());
        assert!(plan.tenant("vgg16").is_none());
    }
}
