//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a computation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Operator parameters are malformed (zero stride, kernel larger than
    /// input, ...). The payload describes the offending parameter.
    InvalidParams(String),
    /// A node references an input id that does not exist in the graph.
    UnknownNode(usize),
    /// Input shapes are incompatible for the operator (e.g. concat of
    /// different spatial extents, eltwise-add of different shapes).
    ShapeMismatch(String),
    /// The graph contains a cycle, or an op has the wrong arity.
    Malformed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidParams(msg) => write!(f, "invalid operator parameters: {msg}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            GraphError::Malformed(msg) => write!(f, "malformed graph: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = GraphError::InvalidParams("stride 0".into());
        assert_eq!(e.to_string(), "invalid operator parameters: stride 0");
        assert_eq!(GraphError::UnknownNode(7).to_string(), "unknown node id 7");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
