//! A fast, deterministic hasher for small keys on hot paths.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs
//! tens of nanoseconds per probe, which dominates the allocator's DP
//! and the evaluator's residency checks on thousand-node graphs. The
//! keys hashed here (`ValueId`, `NodeId`, packed `u64` choice masks)
//! are program-derived, never attacker-controlled, so a multiplicative
//! hash in the style of rustc's `FxHasher` is appropriate.
//!
//! Determinism matters beyond speed: unlike `RandomState`, this hasher
//! has no per-process seed, so map iteration orders are stable across
//! runs — one less source of accidental nondeterminism in the harness's
//! byte-identity checks (code must still not *depend* on the order).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / φ rounded to odd, the classic
/// Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The hasher state: a single accumulator folded with a rotate-xor-
/// multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_apart() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn hashing_is_deterministic() {
        let once = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(once(b"lcmm"), once(b"lcmm"));
        assert_ne!(once(b"lcmm"), once(b"lcm"));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
    }
}
