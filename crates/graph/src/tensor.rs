//! Feature-map tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a feature-map tensor for a single inference (batch = 1),
/// in `C × H × W` layout.
///
/// The LCMM paper works at batch size 1 (FPGA low-latency inference), so
/// the batch dimension is implicit. Element counts are exact; byte sizes
/// depend on the numeric precision and are computed by `lcmm-fpga`.
///
/// # Examples
///
/// ```
/// use lcmm_graph::FeatureShape;
///
/// let s = FeatureShape::new(64, 56, 56);
/// assert_eq!(s.elems(), 64 * 56 * 56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeatureShape {
    /// Number of channels (feature maps).
    pub channels: usize,
    /// Spatial height of each feature map.
    pub height: usize,
    /// Spatial width of each feature map.
    pub width: usize,
}

impl FeatureShape {
    /// Creates a shape from channel count and spatial dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; a zero-sized tensor is always a
    /// model-construction bug.
    #[must_use]
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "feature shape dimensions must be nonzero: {channels}x{height}x{width}"
        );
        Self {
            channels,
            height,
            width,
        }
    }

    /// Creates a `channels × 1 × 1` vector shape (e.g. a fully-connected
    /// layer output or a globally pooled feature).
    #[must_use]
    pub fn vector(channels: usize) -> Self {
        Self::new(channels, 1, 1)
    }

    /// Total number of elements, `C·H·W`.
    #[must_use]
    pub fn elems(&self) -> u64 {
        self.channels as u64 * self.height as u64 * self.width as u64
    }

    /// Returns a copy with a different channel count and the same spatial
    /// extent. Useful when concatenating branch outputs.
    #[must_use]
    pub fn with_channels(&self, channels: usize) -> Self {
        Self::new(channels, self.height, self.width)
    }

    /// Whether two shapes agree on their spatial extent (`H×W`), which is
    /// the requirement for channel concatenation and element-wise ops.
    #[must_use]
    pub fn same_spatial(&self, other: &Self) -> bool {
        self.height == other.height && self.width == other.width
    }
}

impl fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_multiplies_dimensions() {
        assert_eq!(FeatureShape::new(3, 224, 224).elems(), 150_528);
        assert_eq!(FeatureShape::vector(1000).elems(), 1000);
    }

    #[test]
    fn elems_does_not_overflow_large_tensors() {
        // 2048 channels at 4k resolution exceeds u32 but must fit u64.
        let s = FeatureShape::new(2048, 4096, 4096);
        assert_eq!(s.elems(), 2048u64 * 4096 * 4096);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = FeatureShape::new(0, 8, 8);
    }

    #[test]
    fn same_spatial_ignores_channels() {
        let a = FeatureShape::new(64, 56, 56);
        let b = FeatureShape::new(256, 56, 56);
        let c = FeatureShape::new(64, 28, 28);
        assert!(a.same_spatial(&b));
        assert!(!a.same_spatial(&c));
    }

    #[test]
    fn with_channels_preserves_spatial() {
        let a = FeatureShape::new(64, 56, 56).with_channels(192);
        assert_eq!(a, FeatureShape::new(192, 56, 56));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FeatureShape::new(64, 56, 56).to_string(), "64x56x56");
    }

    #[test]
    fn ordering_is_derived_lexicographically() {
        // Ord exists so shapes can key BTreeMaps deterministically.
        assert!(FeatureShape::new(1, 1, 1) < FeatureShape::new(2, 1, 1));
    }
}
