//! Layer operator kinds and their shape/cost semantics.

use crate::tensor::FeatureShape;
use crate::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a (possibly non-square, possibly grouped) 2-D
/// convolution.
///
/// `groups` partitions the input and output channels into independent
/// convolutions (`groups == in_channels` with matching `out_channels`
/// is a depthwise convolution, as in MobileNet's separable blocks).
/// The paper's benchmark networks (ResNet-152, GoogLeNet, Inception-v4)
/// all use `groups == 1`.
///
/// # Examples
///
/// ```
/// use lcmm_graph::ConvParams;
///
/// // 3x3 stride-1 same-padding conv producing 64 maps.
/// let p = ConvParams::square(64, 3, 1, 1);
/// assert_eq!(p.kernel_h, 3);
/// assert_eq!(p.kernel_w, 3);
/// assert_eq!(p.groups, 1);
///
/// // Depthwise 3x3 over 64 channels: 64 groups of one map each.
/// let dw = ConvParams::depthwise(64, 3, 1, 1);
/// assert_eq!(dw.groups, 64);
/// assert_eq!(dw.weight_elems(64), 64 * 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvParams {
    /// Number of output feature maps (`M` in the paper's loop nest).
    pub out_channels: usize,
    /// Filter height (`K`).
    pub kernel_h: usize,
    /// Filter width (`K`).
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical zero padding (applied to both top and bottom).
    pub pad_h: usize,
    /// Horizontal zero padding (applied to both left and right).
    pub pad_w: usize,
    /// Channel groups: each group convolves `C/groups` input maps into
    /// `M/groups` output maps (1 = dense convolution).
    pub groups: usize,
}

impl ConvParams {
    /// Square kernel with equal strides and padding in both dimensions —
    /// the common case.
    #[must_use]
    pub fn square(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
            groups: 1,
        }
    }

    /// Depthwise convolution: one filter per channel (`groups ==
    /// out_channels == in_channels`), the MobileNet building block.
    #[must_use]
    pub fn depthwise(channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            groups: channels,
            ..Self::square(channels, kernel, stride, pad)
        }
    }

    /// Rectangular kernel, used by Inception-v4's `1x7`/`7x1` factorised
    /// convolutions. Padding defaults to "same" for stride 1:
    /// `pad = (k - 1) / 2` per dimension.
    #[must_use]
    pub fn rect(out_channels: usize, kernel_h: usize, kernel_w: usize) -> Self {
        Self {
            out_channels,
            kernel_h,
            kernel_w,
            stride_h: 1,
            stride_w: 1,
            pad_h: (kernel_h - 1) / 2,
            pad_w: (kernel_w - 1) / 2,
            groups: 1,
        }
    }

    /// Pointwise (`1x1`) convolution.
    #[must_use]
    pub fn pointwise(out_channels: usize) -> Self {
        Self::square(out_channels, 1, 1, 0)
    }

    /// Output shape produced from `input`.
    ///
    /// # Errors
    ///
    /// Returns an error when the kernel does not fit the (padded) input,
    /// a stride/kernel is zero, or `groups` does not evenly divide both
    /// the input and output channel counts.
    pub fn output_shape(&self, input: FeatureShape) -> Result<FeatureShape, GraphError> {
        if self.groups == 0 {
            return Err(GraphError::InvalidParams(
                "conv groups must be nonzero".to_string(),
            ));
        }
        if !input.channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(GraphError::InvalidParams(format!(
                "groups {} must divide input channels {} and output channels {}",
                self.groups, input.channels, self.out_channels
            )));
        }
        let out_h = conv_dim(input.height, self.kernel_h, self.stride_h, self.pad_h)?;
        let out_w = conv_dim(input.width, self.kernel_w, self.stride_w, self.pad_w)?;
        Ok(FeatureShape::new(self.out_channels, out_h, out_w))
    }

    /// Weight tensor element count: `M·(C/g)·Kh·Kw`.
    #[must_use]
    pub fn weight_elems(&self, in_channels: usize) -> u64 {
        self.out_channels as u64
            * (in_channels / self.groups.max(1)) as u64
            * self.kernel_h as u64
            * self.kernel_w as u64
    }

    /// Multiply-accumulate count: `M·(C/g)·Ho·Wo·Kh·Kw`.
    #[must_use]
    pub fn macs(&self, input: FeatureShape, output: FeatureShape) -> u64 {
        output.elems()
            * (input.channels / self.groups.max(1)) as u64
            * self.kernel_h as u64
            * self.kernel_w as u64
    }
}

fn conv_dim(dim: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize, GraphError> {
    if stride == 0 || kernel == 0 {
        return Err(GraphError::InvalidParams(format!(
            "kernel {kernel} / stride {stride} must be nonzero"
        )));
    }
    let padded = dim + 2 * pad;
    if padded < kernel {
        return Err(GraphError::InvalidParams(format!(
            "kernel {kernel} larger than padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Parameters of a 2-D pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolParams {
    /// Max or average.
    pub kind: PoolKind,
    /// Square pooling window size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub pad: usize,
}

impl PoolParams {
    /// Output shape produced from `input`.
    ///
    /// # Errors
    ///
    /// Returns an error when the window does not fit the (padded) input
    /// or the stride/kernel is zero.
    pub fn output_shape(&self, input: FeatureShape) -> Result<FeatureShape, GraphError> {
        let out_h = conv_dim(input.height, self.kernel, self.stride, self.pad)?;
        let out_w = conv_dim(input.width, self.kernel, self.stride, self.pad)?;
        Ok(FeatureShape::new(input.channels, out_h, out_w))
    }
}

/// Parameters of a fully-connected (inner-product) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcParams {
    /// Number of output features.
    pub out_features: usize,
}

/// The operator performed by a graph node.
///
/// Activation functions (ReLU) and batch normalisation are treated as
/// folded into the preceding convolution, as every FPGA accelerator design
/// the paper builds on does; they contribute neither MACs of interest nor
/// off-chip traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// External input feeding the network (the image).
    Input,
    /// 2-D convolution (with folded bias/BN/ReLU).
    Conv(ConvParams),
    /// 2-D pooling.
    Pool(PoolParams),
    /// Global average pooling down to `C × 1 × 1`.
    GlobalAvgPool,
    /// Fully-connected layer.
    Fc(FcParams),
    /// Channel concatenation of all inputs (inception joins).
    Concat,
    /// Element-wise addition of all inputs (residual joins).
    EltwiseAdd,
}

impl OpKind {
    /// Whether this node owns a weight tensor.
    #[must_use]
    pub fn has_weights(&self) -> bool {
        matches!(self, OpKind::Conv(_) | OpKind::Fc(_))
    }

    /// Whether this node performs MAC work on the compute array.
    ///
    /// Pooling, concat and element-wise layers are executed by dedicated
    /// lightweight units (or, for concat, by address generation alone) in
    /// the systolic-array designs LCMM targets.
    #[must_use]
    pub fn is_compute(&self) -> bool {
        matches!(self, OpKind::Conv(_) | OpKind::Fc(_))
    }

    /// Short lowercase tag used in traces and reports.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::Conv(_) => "conv",
            OpKind::Pool(_) => "pool",
            OpKind::GlobalAvgPool => "gap",
            OpKind::Fc(_) => "fc",
            OpKind::Concat => "concat",
            OpKind::EltwiseAdd => "add",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Conv(p) if p.groups > 1 => write!(
                f,
                "conv {}x{}/{} g{} -> {}",
                p.kernel_h, p.kernel_w, p.stride_h, p.groups, p.out_channels
            ),
            OpKind::Conv(p) => write!(
                f,
                "conv {}x{}/{} -> {}",
                p.kernel_h, p.kernel_w, p.stride_h, p.out_channels
            ),
            OpKind::Pool(p) => write!(f, "{:?}pool {}x{}/{}", p.kind, p.kernel, p.kernel, p.stride),
            OpKind::Fc(p) => write!(f, "fc -> {}", p.out_features),
            other => f.write_str(other.tag()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape_same_padding() {
        let p = ConvParams::square(64, 3, 1, 1);
        let out = p.output_shape(FeatureShape::new(3, 224, 224)).unwrap();
        assert_eq!(out, FeatureShape::new(64, 224, 224));
    }

    #[test]
    fn conv_output_shape_stride_two() {
        // ResNet stem: 7x7/2 pad 3 on 224 -> 112.
        let p = ConvParams::square(64, 7, 2, 3);
        let out = p.output_shape(FeatureShape::new(3, 224, 224)).unwrap();
        assert_eq!(out, FeatureShape::new(64, 112, 112));
    }

    #[test]
    fn conv_output_shape_valid_padding() {
        // Inception-v4 stem: 3x3/2 valid on 299 -> 149.
        let p = ConvParams::square(32, 3, 2, 0);
        let out = p.output_shape(FeatureShape::new(3, 299, 299)).unwrap();
        assert_eq!(out, FeatureShape::new(32, 149, 149));
    }

    #[test]
    fn rect_conv_is_same_padded() {
        let p = ConvParams::rect(256, 1, 7);
        let out = p.output_shape(FeatureShape::new(192, 17, 17)).unwrap();
        assert_eq!(out, FeatureShape::new(256, 17, 17));
    }

    #[test]
    fn conv_kernel_too_large_errors() {
        let p = ConvParams::square(8, 9, 1, 0);
        assert!(p.output_shape(FeatureShape::new(3, 4, 4)).is_err());
    }

    #[test]
    fn conv_zero_stride_errors() {
        let mut p = ConvParams::square(8, 3, 1, 1);
        p.stride_h = 0;
        assert!(p.output_shape(FeatureShape::new(3, 8, 8)).is_err());
    }

    #[test]
    fn conv_macs_and_weights() {
        let p = ConvParams::square(64, 3, 1, 1);
        let input = FeatureShape::new(32, 56, 56);
        let output = p.output_shape(input).unwrap();
        assert_eq!(p.weight_elems(32), 64 * 32 * 9);
        assert_eq!(p.macs(input, output), 64 * 56 * 56 * 32 * 9);
    }

    #[test]
    fn depthwise_macs_and_weights() {
        let p = ConvParams::depthwise(32, 3, 1, 1);
        let input = FeatureShape::new(32, 56, 56);
        let output = p.output_shape(input).unwrap();
        assert_eq!(output, FeatureShape::new(32, 56, 56));
        assert_eq!(p.weight_elems(32), 32 * 9);
        assert_eq!(p.macs(input, output), 32 * 56 * 56 * 9);
    }

    #[test]
    fn grouped_conv_validates_divisibility() {
        let mut p = ConvParams::square(64, 3, 1, 1);
        p.groups = 3;
        assert!(p.output_shape(FeatureShape::new(32, 8, 8)).is_err());
        p.groups = 0;
        assert!(p.output_shape(FeatureShape::new(32, 8, 8)).is_err());
        p.groups = 4;
        assert!(p.output_shape(FeatureShape::new(32, 8, 8)).is_ok());
    }

    #[test]
    fn pool_output_shape() {
        let p = PoolParams {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let out = p.output_shape(FeatureShape::new(64, 112, 112)).unwrap();
        assert_eq!(out, FeatureShape::new(64, 56, 56));
    }

    #[test]
    fn op_classification() {
        assert!(OpKind::Conv(ConvParams::pointwise(8)).has_weights());
        assert!(OpKind::Fc(FcParams { out_features: 10 }).has_weights());
        assert!(!OpKind::Concat.has_weights());
        assert!(!OpKind::Pool(PoolParams {
            kind: PoolKind::Avg,
            kernel: 2,
            stride: 2,
            pad: 0
        })
        .is_compute());
    }

    #[test]
    fn display_formats() {
        let c = OpKind::Conv(ConvParams::square(64, 3, 1, 1));
        assert_eq!(c.to_string(), "conv 3x3/1 -> 64");
        let dw = OpKind::Conv(ConvParams::depthwise(64, 3, 2, 1));
        assert_eq!(dw.to_string(), "conv 3x3/2 g64 -> 64");
        assert_eq!(OpKind::Concat.to_string(), "concat");
    }
}
