//! The computation graph: nodes, edges, topological order, accounting.

use crate::op::{FcParams, OpKind};
use crate::tensor::FeatureShape;
use crate::GraphError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a node within one [`Graph`].
///
/// Ids are dense indices assigned in insertion order, which for graphs
/// built by [`crate::GraphBuilder`] is also a valid topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Creates an id from a dense index. Only meaningful for indices
    /// obtained from the same graph; primarily useful in tests and
    /// serialisation code.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One layer of the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    pub(crate) op: OpKind,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) output: FeatureShape,
    /// Label of the network block this node belongs to (e.g.
    /// `"inception_4a"`). Used by the Fig. 2(b) design-space sweep and the
    /// Fig. 8 per-block analysis.
    pub(crate) block: Option<String>,
}

impl Node {
    /// The node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable layer name (unique within the graph).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator this node performs.
    #[must_use]
    pub fn op(&self) -> &OpKind {
        &self.op
    }

    /// Ids of the nodes whose outputs feed this node, in positional order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Shape of the output feature map.
    #[must_use]
    pub fn output_shape(&self) -> FeatureShape {
        self.output
    }

    /// Block label, if the model builder assigned one.
    #[must_use]
    pub fn block(&self) -> Option<&str> {
        self.block.as_deref()
    }
}

/// An immutable DNN computation graph.
///
/// Construct one with [`crate::GraphBuilder`]; the builder validates
/// shapes and guarantees acyclicity, so every `Graph` in existence is
/// well-formed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    /// consumers[i] = ids of nodes that read node i's output.
    consumers: Vec<Vec<NodeId>>,
    output: NodeId,
}

impl Graph {
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        output: NodeId,
    ) -> Result<Self, GraphError> {
        let mut consumers = vec![Vec::new(); nodes.len()];
        for node in &nodes {
            for &input in &node.inputs {
                if input.0 >= nodes.len() {
                    return Err(GraphError::UnknownNode(input.0));
                }
                consumers[input.0].push(node.id);
            }
        }
        if output.0 >= nodes.len() {
            return Err(GraphError::UnknownNode(output.0));
        }
        let graph = Self {
            name,
            nodes,
            consumers,
            output,
        };
        graph.check_acyclic()?;
        Ok(graph)
    }

    fn check_acyclic(&self) -> Result<(), GraphError> {
        // Kahn's algorithm; also verifies every node is reachable from
        // the in-degree-0 frontier (inputs reference earlier nodes only
        // for builder-made graphs, but deserialised graphs may not).
        let mut indegree: Vec<usize> = self.nodes.iter().map(|n| n.inputs.len()).collect();
        let mut queue: VecDeque<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop_front() {
            seen += 1;
            for &c in &self.consumers[i] {
                indegree[c.0] -= 1;
                if indegree[c.0] == 0 {
                    queue.push_back(c.0);
                }
            }
        }
        if seen != self.nodes.len() {
            return Err(GraphError::Malformed(format!(
                "cycle detected: {} of {} nodes unreachable in topological sweep",
                self.nodes.len() - seen,
                self.nodes.len()
            )));
        }
        Ok(())
    }

    /// The graph's name (e.g. `"inception_v4"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, including the input pseudo-node.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node carrying the network's final output.
    #[must_use]
    pub fn output_node(&self) -> &Node {
        &self.nodes[self.output.0]
    }

    /// Borrow a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to a different graph and is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Fallible node lookup.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0)
    }

    /// Look a node up by its unique name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Iterate over all nodes in topological (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Ids of the nodes that consume `id`'s output, in insertion order.
    #[must_use]
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.0]
    }

    /// Nodes in a valid topological order.
    ///
    /// For builder-made graphs this is simply id order (the builder only
    /// lets a node reference already-inserted nodes).
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indegree: Vec<usize> = self.nodes.iter().map(|n| n.inputs.len()).collect();
        let mut queue: VecDeque<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop_front() {
            order.push(NodeId(i));
            for &c in &self.consumers[i] {
                indegree[c.0] -= 1;
                if indegree[c.0] == 0 {
                    queue.push_back(c.0);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len());
        order
    }

    /// Iterate over the convolution and fully-connected layers — the
    /// nodes that run on the compute array and own weights.
    pub fn compute_layers(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.op.is_compute())
    }

    /// Iterate over convolution layers only.
    pub fn conv_layers(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Conv(_)))
    }

    /// Multiply-accumulate count of one node (0 for non-compute ops).
    #[must_use]
    pub fn node_macs(&self, id: NodeId) -> u64 {
        let node = &self.nodes[id.0];
        match node.op {
            OpKind::Conv(p) => {
                let input = self.nodes[node.inputs[0].0].output;
                p.macs(input, node.output)
            }
            OpKind::Fc(FcParams { out_features }) => {
                let input = self.nodes[node.inputs[0].0].output;
                input.elems() * out_features as u64
            }
            _ => 0,
        }
    }

    /// Weight tensor element count of one node (0 for weight-less ops).
    #[must_use]
    pub fn node_weight_elems(&self, id: NodeId) -> u64 {
        let node = &self.nodes[id.0];
        match node.op {
            OpKind::Conv(p) => {
                let input = self.nodes[node.inputs[0].0].output;
                p.weight_elems(input.channels)
            }
            OpKind::Fc(FcParams { out_features }) => {
                let input = self.nodes[node.inputs[0].0].output;
                input.elems() * out_features as u64
            }
            _ => 0,
        }
    }

    /// Total input feature elements read by one node (sum over inputs).
    #[must_use]
    pub fn node_input_elems(&self, id: NodeId) -> u64 {
        self.nodes[id.0]
            .inputs
            .iter()
            .map(|&i| self.nodes[i.0].output.elems())
            .sum()
    }

    /// Total MACs of the whole network.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        (0..self.nodes.len())
            .map(|i| self.node_macs(NodeId(i)))
            .sum()
    }

    /// Total weight elements of the whole network.
    #[must_use]
    pub fn total_weight_elems(&self) -> u64 {
        (0..self.nodes.len())
            .map(|i| self.node_weight_elems(NodeId(i)))
            .sum()
    }

    /// Distinct block labels in first-appearance order.
    #[must_use]
    pub fn blocks(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for n in &self.nodes {
            if let Some(b) = n.block.as_deref() {
                if !out.contains(&b) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Consumes the graph and returns its nodes (used by
    /// deserialisation to re-validate through [`Graph::from_parts`]).
    pub(crate) fn into_nodes(self) -> Vec<Node> {
        self.nodes
    }

    /// Ids of the nodes assigned to `block`.
    #[must_use]
    pub fn block_nodes(&self, block: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.block.as_deref() == Some(block))
            .map(|n| n.id)
            .collect()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph {} ({} nodes)", self.name, self.nodes.len())?;
        for n in &self.nodes {
            let ins: Vec<String> = n.inputs.iter().map(|i| i.to_string()).collect();
            writeln!(
                f,
                "  {} {:<28} {:<22} [{}] -> {}",
                n.id,
                n.name,
                n.op.to_string(),
                ins.join(", "),
                n.output
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::ConvParams;

    fn diamond() -> Graph {
        // input -> a -> {b, c} -> concat
        let mut gb = GraphBuilder::new("diamond");
        let input = gb.input(FeatureShape::new(3, 32, 32)).expect("input");
        let a = gb
            .conv("a", input, ConvParams::square(16, 3, 1, 1))
            .unwrap();
        let b = gb.conv("b", a, ConvParams::square(8, 1, 1, 0)).unwrap();
        let c = gb.conv("c", a, ConvParams::square(8, 3, 1, 1)).unwrap();
        let d = gb.concat("d", &[b, c]).unwrap();
        gb.finish(d).unwrap()
    }

    #[test]
    fn consumers_are_tracked() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap().id();
        assert_eq!(g.consumers(a).len(), 2);
        let d = g.node_by_name("d").unwrap().id();
        assert!(g.consumers(d).is_empty());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        assert_eq!(order.len(), g.len());
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (rank, id) in order.iter().enumerate() {
                pos[id.index()] = rank;
            }
            pos
        };
        for n in g.iter() {
            for &i in n.inputs() {
                assert!(
                    pos[i.index()] < pos[n.id().index()],
                    "edge {} -> {} violated",
                    i,
                    n.id()
                );
            }
        }
    }

    #[test]
    fn macs_and_weights_roll_up() {
        let g = diamond();
        // a: 16*32*32*3*9, b: 8*32*32*16*1, c: 8*32*32*16*9
        let expect_macs = 16 * 32 * 32 * 3 * 9 + 8 * 32 * 32 * 16 + 8 * 32 * 32 * 16 * 9;
        assert_eq!(g.total_macs(), expect_macs as u64);
        let expect_w = 16 * 3 * 9 + 8 * 16 + 8 * 16 * 9;
        assert_eq!(g.total_weight_elems(), expect_w as u64);
    }

    #[test]
    fn concat_output_sums_channels() {
        let g = diamond();
        assert_eq!(
            g.output_node().output_shape(),
            FeatureShape::new(16, 32, 32)
        );
    }

    #[test]
    fn node_input_elems_sums_all_inputs() {
        let g = diamond();
        let d = g.node_by_name("d").unwrap().id();
        assert_eq!(g.node_input_elems(d), 2 * 8 * 32 * 32);
    }

    #[test]
    fn display_lists_every_node() {
        let g = diamond();
        let text = g.to_string();
        for n in g.iter() {
            assert!(text.contains(n.name()), "missing {}", n.name());
        }
    }

    #[test]
    fn node_lookup() {
        let g = diamond();
        assert!(g.node_by_name("nope").is_none());
        let a = g.node_by_name("a").unwrap();
        assert_eq!(g.node(a.id()).name(), "a");
        assert!(g.get(NodeId(999)).is_none());
    }
}
