//! Graph export: Graphviz DOT and JSON.
//!
//! `Graph` derives `serde::{Serialize, Deserialize}`, so JSON is the
//! interchange format for saving custom models; DOT is for eyeballs.

use crate::graph::Graph;
use crate::GraphError;
use std::fmt::Write as _;

impl Graph {
    /// Renders the graph in Graphviz DOT format, one node per layer,
    /// clustered by block label.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = lcmm_graph::zoo::alexnet();
    /// let dot = g.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("conv1"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {:?} {{", self.name());
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        // Group nodes by block into subgraph clusters.
        for (cluster, block) in self.blocks().iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{cluster} {{");
            let _ = writeln!(out, "    label={block:?};");
            for id in self.block_nodes(block) {
                let node = self.node(id);
                let _ = writeln!(
                    out,
                    "    n{} [label=\"{}\\n{} -> {}\"];",
                    id.index(),
                    node.name(),
                    node.op(),
                    node.output_shape()
                );
            }
            let _ = writeln!(out, "  }}");
        }
        // Unlabelled nodes at top level.
        for node in self.iter().filter(|n| n.block().is_none()) {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\n{} -> {}\"];",
                node.id().index(),
                node.name(),
                node.op(),
                node.output_shape()
            );
        }
        for node in self.iter() {
            for &input in node.inputs() {
                let _ = writeln!(out, "  n{} -> n{};", input.index(), node.id().index());
            }
        }
        out.push_str("}\n");
        out
    }

    /// Serialises the graph to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails (practically never for
    /// this data model).
    pub fn to_json(&self) -> Result<String, GraphError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| GraphError::Malformed(format!("serialisation failed: {e}")))
    }

    /// Restores a graph from [`Graph::to_json`] output, re-validating
    /// the structure (consumer lists, acyclicity).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or on a graph that fails
    /// validation (cycles, dangling node ids).
    pub fn from_json(json: &str) -> Result<Self, GraphError> {
        let raw: Graph = serde_json::from_str(json)
            .map_err(|e| GraphError::Malformed(format!("deserialisation failed: {e}")))?;
        // Re-run the structural validation a builder would have done.
        let name = raw.name().to_string();
        let output = raw.output_node().id();
        let nodes = raw.into_nodes();
        Graph::from_parts(name, nodes, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let g = zoo::googlenet();
        let dot = g.to_dot();
        for node in g.iter() {
            assert!(
                dot.contains(&format!("n{} ", node.id().index())),
                "{}",
                node.name()
            );
        }
        let edges = g.iter().map(|n| n.inputs().len()).sum::<usize>();
        assert_eq!(dot.matches(" -> n").count(), edges);
    }

    #[test]
    fn dot_clusters_blocks() {
        let g = zoo::resnet50();
        let dot = g.to_dot();
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"stem\""));
    }

    #[test]
    fn json_round_trip_preserves_structure() {
        let g = zoo::alexnet();
        let json = g.to_json().expect("serialises");
        let back = Graph::from_json(&json).expect("deserialises");
        assert_eq!(back.len(), g.len());
        assert_eq!(back.name(), g.name());
        assert_eq!(back.total_macs(), g.total_macs());
        for (a, b) in g.iter().zip(back.iter()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.output_shape(), b.output_shape());
            assert_eq!(a.inputs(), b.inputs());
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Graph::from_json("not json").is_err());
        assert!(Graph::from_json("{\"name\": \"x\"}").is_err());
    }

    #[test]
    fn from_json_rejects_cycles() {
        // Hand-craft a cyclic graph JSON by round-tripping a valid one
        // and corrupting an edge.
        let g = zoo::alexnet();
        let json = g.to_json().expect("serialises");
        // conv1 (node 1) reads node 0; point it at the last node instead.
        let corrupted = json.replacen(
            "\"inputs\": [\n        0\n      ]",
            "\"inputs\": [\n        11\n      ]",
            1,
        );
        assert_ne!(json, corrupted, "corruption must hit");
        assert!(Graph::from_json(&corrupted).is_err());
    }
}
