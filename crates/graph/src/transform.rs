//! Graph transformations: derive workload variants from a base model.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::op::OpKind;
use crate::GraphError;

/// Rebuilds `graph` with every convolution's output-channel count
/// scaled by `numerator / denominator` (at least 1), keeping kernels,
/// strides and the classifier width unchanged — the "width multiplier"
/// of the efficiency-model literature.
///
/// Channel-consistency (concat sums, element-wise equality) is
/// preserved automatically because every branch scales by the same
/// ratio; the rebuilt graph passes full builder validation.
///
/// # Errors
///
/// Returns an error if the scaled network becomes structurally invalid
/// (practically impossible for ratios ≥ 1/64 on the zoo models), or if
/// `graph` itself is malformed — a node consuming an input that does
/// not precede it in id order, as an inline graph arriving over the
/// serve wire may be. Malformed inputs must surface as typed errors
/// (`invalid_graph` on the wire), never as a worker panic.
///
/// # Panics
///
/// Panics if `numerator` or `denominator` is zero.
///
/// # Examples
///
/// ```
/// use lcmm_graph::transform::scale_channels;
///
/// # fn main() -> Result<(), lcmm_graph::GraphError> {
/// let full = lcmm_graph::zoo::googlenet();
/// let half = scale_channels(&full, 1, 2)?;
/// assert_eq!(half.len(), full.len());
/// assert!(half.total_macs() < full.total_macs() / 3);
/// # Ok(())
/// # }
/// ```
pub fn scale_channels(
    graph: &Graph,
    numerator: usize,
    denominator: usize,
) -> Result<Graph, GraphError> {
    assert!(
        numerator > 0 && denominator > 0,
        "scale ratio must be nonzero"
    );
    let scale = |c: usize| -> usize { (c * numerator / denominator).max(1) };
    let mut b = GraphBuilder::new(format!("{}_w{}_{}", graph.name(), numerator, denominator));
    let mut map: Vec<Option<NodeId>> = vec![None; graph.len()];
    let mut last_block: Option<String> = None;
    for node in graph.iter() {
        // Track block labels as the original builder set them.
        let block = node.block().map(str::to_string);
        if block != last_block {
            match &block {
                Some(label) => b.set_block(label.clone()),
                None => b.clear_block(),
            }
            last_block = block;
        }
        let mapped_inputs: Vec<NodeId> = node
            .inputs()
            .iter()
            .map(|&i| {
                map.get(i.index()).copied().flatten().ok_or_else(|| {
                    GraphError::Malformed(format!(
                        "node {} ({}) consumes input id {} before it is defined",
                        node.id().index(),
                        node.name(),
                        i.index()
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let new_id = match node.op() {
            OpKind::Input => b.input(node.output_shape())?,
            OpKind::Conv(p) => {
                let mut scaled = *p;
                scaled.out_channels = scale(p.out_channels);
                b.conv(node.name(), mapped_inputs[0], scaled)?
            }
            OpKind::Pool(p) => {
                let params = *p;
                match params.kind {
                    crate::op::PoolKind::Max => b.max_pool(
                        node.name(),
                        mapped_inputs[0],
                        params.kernel,
                        params.stride,
                        params.pad,
                    )?,
                    crate::op::PoolKind::Avg => b.avg_pool(
                        node.name(),
                        mapped_inputs[0],
                        params.kernel,
                        params.stride,
                        params.pad,
                    )?,
                }
            }
            OpKind::GlobalAvgPool => b.global_avg_pool(node.name(), mapped_inputs[0])?,
            OpKind::Fc(f) => b.fc(node.name(), mapped_inputs[0], f.out_features)?,
            OpKind::Concat => b.concat(node.name(), &mapped_inputs)?,
            OpKind::EltwiseAdd => b.eltwise_add(node.name(), &mapped_inputs)?,
        };
        map[node.id().index()] = Some(new_id);
    }
    let output_id = graph.output_node().id().index();
    let output = map.get(output_id).copied().flatten().ok_or_else(|| {
        GraphError::Malformed(format!("output node id {output_id} was never rebuilt"))
    })?;
    b.finish(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn identity_scale_preserves_everything() {
        let g = zoo::resnet50();
        let same = scale_channels(&g, 1, 1).expect("valid");
        assert_eq!(same.len(), g.len());
        assert_eq!(same.total_macs(), g.total_macs());
        assert_eq!(same.total_weight_elems(), g.total_weight_elems());
    }

    #[test]
    fn half_width_scales_channels_and_macs() {
        let g = zoo::resnet50();
        let half = scale_channels(&g, 1, 2).expect("valid");
        let full_c = g
            .node_by_name("res2a_branch2b")
            .unwrap()
            .output_shape()
            .channels;
        let half_c = half
            .node_by_name("res2a_branch2b")
            .unwrap()
            .output_shape()
            .channels;
        assert_eq!(half_c, full_c / 2);
        // Conv MACs scale ~quadratically in width (stem input excluded).
        let ratio = half.total_macs() as f64 / g.total_macs() as f64;
        assert!((0.2..0.35).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn residual_and_concat_structures_survive_scaling() {
        for (name, g) in [
            ("resnet50", zoo::resnet50()),
            ("googlenet", zoo::googlenet()),
            ("densenet121", zoo::densenet121()),
        ] {
            for (n, d) in [(1usize, 2usize), (3, 4), (2, 1)] {
                let scaled =
                    scale_channels(&g, n, d).unwrap_or_else(|e| panic!("{name} x{n}/{d}: {e}"));
                assert_eq!(scaled.len(), g.len(), "{name}");
            }
        }
    }

    #[test]
    fn block_labels_are_preserved() {
        let g = zoo::googlenet();
        let half = scale_channels(&g, 1, 2).expect("valid");
        assert_eq!(g.blocks(), half.blocks());
    }

    #[test]
    fn malformed_forward_reference_is_a_typed_error() {
        // An inline graph off the serve wire deserialises without
        // builder validation, so a node may reference an input that
        // comes *after* it in id order. That used to panic inside
        // `scale_channels` (worker panic containment on the serve
        // path); it must be a typed `GraphError` instead.
        let g = zoo::alexnet();
        let json = serde_json::to_string(&g).expect("graphs serialise");
        // Point conv1 (id 1) at a node far ahead of it.
        let tampered = json.replacen("\"inputs\":[0]", "\"inputs\":[9]", 1);
        assert_ne!(tampered, json, "tamper target not found");
        let bad: Graph = serde_json::from_str(&tampered).expect("tampered graph still parses");
        let err = scale_channels(&bad, 1, 2).expect_err("forward reference must fail");
        assert!(
            matches!(err, GraphError::Malformed(_)),
            "expected Malformed, got {err:?}"
        );
        assert!(err.to_string().contains("before it is defined"), "{err}");
    }

    #[test]
    fn tiny_ratio_clamps_to_one_channel() {
        let g = zoo::alexnet();
        let skinny = scale_channels(&g, 1, 100_000).expect("valid");
        assert_eq!(
            skinny
                .node_by_name("conv1")
                .unwrap()
                .output_shape()
                .channels,
            1
        );
    }
}
