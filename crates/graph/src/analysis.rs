//! Workload-level accounting: per-layer element/operation summaries.
//!
//! These numbers feed the roofline characterisation (`lcmm-fpga`) and are
//! also handy on their own for sanity-checking model-zoo constructions
//! against published GFLOP counts.

use crate::graph::{Graph, NodeId};
use crate::op::OpKind;
use serde::{Deserialize, Serialize};

/// Element/operation summary for one compute layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// The profiled node.
    pub id: NodeId,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Input feature elements read (summed over all inputs).
    pub input_elems: u64,
    /// Weight elements.
    pub weight_elems: u64,
    /// Output feature elements written.
    pub output_elems: u64,
}

impl LayerProfile {
    /// Total tensor elements moved if every tensor goes through DRAM once.
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        self.input_elems + self.weight_elems + self.output_elems
    }

    /// Operations (2 × MACs) per element moved — the x-axis of the
    /// paper's roofline (Fig. 2(a)) up to the per-byte precision factor,
    /// which `lcmm-fpga` applies.
    #[must_use]
    pub fn ops_per_elem(&self) -> f64 {
        if self.total_elems() == 0 {
            return 0.0;
        }
        (2 * self.macs) as f64 / self.total_elems() as f64
    }
}

/// Profiles every compute layer (conv + fc) of `graph` in topo order.
///
/// # Examples
///
/// ```
/// let g = lcmm_graph::zoo::alexnet();
/// let profiles = lcmm_graph::analysis::profile(&g);
/// assert_eq!(profiles.len(), g.compute_layers().count());
/// ```
#[must_use]
pub fn profile(graph: &Graph) -> Vec<LayerProfile> {
    graph
        .compute_layers()
        .map(|n| LayerProfile {
            id: n.id(),
            macs: graph.node_macs(n.id()),
            input_elems: graph.node_input_elems(n.id()),
            weight_elems: graph.node_weight_elems(n.id()),
            output_elems: n.output_shape().elems(),
        })
        .collect()
}

/// Network-level totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Number of nodes of any kind.
    pub nodes: usize,
    /// Number of convolution layers.
    pub conv_layers: usize,
    /// Number of compute layers (conv + fc).
    pub compute_layers: usize,
    /// Total MACs for one inference.
    pub total_macs: u64,
    /// Total weight elements.
    pub total_weight_elems: u64,
    /// Largest single feature tensor (elements).
    pub max_feature_elems: u64,
    /// Sum of all feature tensors (elements) — what "keep all activations
    /// on chip" would cost.
    pub total_feature_elems: u64,
}

/// Summarises a network.
///
/// # Examples
///
/// ```
/// let g = lcmm_graph::zoo::googlenet();
/// let s = lcmm_graph::analysis::summarize(&g);
/// assert!(s.conv_layers > 50);
/// ```
#[must_use]
pub fn summarize(graph: &Graph) -> NetworkSummary {
    let mut max_feature_elems = 0;
    let mut total_feature_elems = 0;
    for n in graph.iter() {
        if matches!(n.op(), OpKind::Input) {
            continue;
        }
        let e = n.output_shape().elems();
        max_feature_elems = max_feature_elems.max(e);
        total_feature_elems += e;
    }
    NetworkSummary {
        nodes: graph.len(),
        conv_layers: graph.conv_layers().count(),
        compute_layers: graph.compute_layers().count(),
        total_macs: graph.total_macs(),
        total_weight_elems: graph.total_weight_elems(),
        max_feature_elems,
        total_feature_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::ConvParams;
    use crate::tensor::FeatureShape;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input(FeatureShape::new(3, 16, 16)).expect("input");
        let c = b.conv("c", x, ConvParams::square(8, 3, 1, 1)).unwrap();
        let f = b.global_avg_pool("gap", c).unwrap();
        let fc = b.fc("fc", f, 10).unwrap();
        b.finish(fc).unwrap()
    }

    #[test]
    fn profile_covers_compute_layers_only() {
        let g = tiny();
        let p = profile(&g);
        assert_eq!(p.len(), 2); // conv + fc, not gap/input
        assert_eq!(p[0].macs, 8 * 16 * 16 * 3 * 9);
        assert_eq!(p[1].macs, 8 * 10);
    }

    #[test]
    fn ops_per_elem_matches_hand_calc() {
        let g = tiny();
        let p = profile(&g);
        let conv = p[0];
        let total = conv.input_elems + conv.weight_elems + conv.output_elems;
        assert_eq!(conv.total_elems(), total);
        let expect = (2 * conv.macs) as f64 / total as f64;
        assert!((conv.ops_per_elem() - expect).abs() < 1e-12);
    }

    #[test]
    fn summary_counts() {
        let g = tiny();
        let s = summarize(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.conv_layers, 1);
        assert_eq!(s.compute_layers, 2);
        assert_eq!(s.max_feature_elems, 8 * 16 * 16);
        // conv out + gap out + fc out
        assert_eq!(s.total_feature_elems, 8 * 16 * 16 + 8 + 10);
    }

    #[test]
    fn zero_elem_profile_has_zero_intensity() {
        let p = LayerProfile {
            id: NodeId(0),
            macs: 0,
            input_elems: 0,
            weight_elems: 0,
            output_elems: 0,
        };
        assert_eq!(p.ops_per_elem(), 0.0);
    }
}
