//! Incremental, validating graph construction.

use crate::graph::{Graph, Node, NodeId};
use crate::op::{ConvParams, FcParams, OpKind, PoolKind, PoolParams};
use crate::tensor::FeatureShape;
use crate::GraphError;
use std::collections::HashSet;

/// Builds a [`Graph`] one layer at a time, validating shapes as it goes.
///
/// Every method that adds a node returns the new node's [`NodeId`], which
/// later layers use as their input. Because a node can only reference ids
/// that already exist, builder-made graphs are acyclic by construction and
/// id order is a topological order.
///
/// # Examples
///
/// ```
/// use lcmm_graph::{GraphBuilder, FeatureShape, ConvParams};
///
/// # fn main() -> Result<(), lcmm_graph::GraphError> {
/// let mut b = GraphBuilder::new("branchy");
/// let x = b.input(FeatureShape::new(3, 32, 32))?;
/// let stem = b.conv("stem", x, ConvParams::square(16, 3, 1, 1))?;
/// let left = b.conv("left", stem, ConvParams::pointwise(8))?;
/// let right = b.conv("right", stem, ConvParams::square(8, 3, 1, 1))?;
/// let joined = b.concat("join", &[left, right])?;
/// let g = b.finish(joined)?;
/// assert_eq!(g.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
    names: HashSet<String>,
    current_block: Option<String>,
}

impl GraphBuilder {
    /// Starts building a graph with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            names: HashSet::new(),
            current_block: None,
        }
    }

    /// Sets the block label attached to subsequently added nodes (until
    /// the next call). Model builders use this to delimit inception
    /// blocks / residual stages for the block-level experiments.
    pub fn set_block(&mut self, block: impl Into<String>) {
        self.current_block = Some(block.into());
    }

    /// Clears the current block label.
    pub fn clear_block(&mut self) {
        self.current_block = None;
    }

    fn push(
        &mut self,
        name: String,
        op: OpKind,
        inputs: Vec<NodeId>,
        output: FeatureShape,
    ) -> Result<NodeId, GraphError> {
        for &i in &inputs {
            if i.0 >= self.nodes.len() {
                return Err(GraphError::UnknownNode(i.0));
            }
        }
        if !self.names.insert(name.clone()) {
            return Err(GraphError::Malformed(format!(
                "duplicate layer name {name:?}"
            )));
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            output,
            block: self.current_block.clone(),
        });
        Ok(id)
    }

    fn shape_of(&self, id: NodeId) -> Result<FeatureShape, GraphError> {
        self.nodes
            .get(id.0)
            .map(|n| n.output)
            .ok_or(GraphError::UnknownNode(id.0))
    }

    /// Adds the external input pseudo-node.
    ///
    /// # Errors
    ///
    /// [`GraphError::Malformed`] if called more than once — the paper's
    /// workloads are all single-input classifiers, and allowing several
    /// inputs would complicate liveness without exercising anything new.
    pub fn input(&mut self, shape: FeatureShape) -> Result<NodeId, GraphError> {
        if self.nodes.iter().any(|n| matches!(n.op, OpKind::Input)) {
            return Err(GraphError::Malformed(
                "graph already has an input node".to_string(),
            ));
        }
        self.push("input".to_string(), OpKind::Input, Vec::new(), shape)
    }

    /// Adds a convolution layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown, the kernel does not fit the
    /// padded input, or `name` is already taken.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        params: ConvParams,
    ) -> Result<NodeId, GraphError> {
        let input = self.shape_of(from)?;
        let output = params.output_shape(input)?;
        self.push(name.into(), OpKind::Conv(params), vec![from], output)
    }

    /// Adds a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::conv`].
    pub fn max_pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, GraphError> {
        self.pool(
            name,
            from,
            PoolParams {
                kind: PoolKind::Max,
                kernel,
                stride,
                pad,
            },
        )
    }

    /// Adds an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::conv`].
    pub fn avg_pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, GraphError> {
        self.pool(
            name,
            from,
            PoolParams {
                kind: PoolKind::Avg,
                kernel,
                stride,
                pad,
            },
        )
    }

    fn pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        params: PoolParams,
    ) -> Result<NodeId, GraphError> {
        let input = self.shape_of(from)?;
        let output = params.output_shape(input)?;
        self.push(name.into(), OpKind::Pool(params), vec![from], output)
    }

    /// Adds a global average pooling layer (`C×H×W -> C×1×1`).
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the name collides.
    pub fn global_avg_pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
    ) -> Result<NodeId, GraphError> {
        let input = self.shape_of(from)?;
        let output = FeatureShape::vector(input.channels);
        self.push(name.into(), OpKind::GlobalAvgPool, vec![from], output)
    }

    /// Adds a fully-connected layer.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the name collides.
    pub fn fc(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        out_features: usize,
    ) -> Result<NodeId, GraphError> {
        if out_features == 0 {
            return Err(GraphError::InvalidParams(
                "fc out_features must be nonzero".into(),
            ));
        }
        let output = FeatureShape::vector(out_features);
        self.push(
            name.into(),
            OpKind::Fc(FcParams { out_features }),
            vec![from],
            output,
        )
    }

    /// Adds a channel-concatenation node joining `from` (≥ 2 inputs with
    /// identical spatial extent).
    ///
    /// # Errors
    ///
    /// Returns an error on arity < 2 or mismatched spatial shapes.
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        from: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        if from.len() < 2 {
            return Err(GraphError::Malformed(
                "concat needs at least two inputs".into(),
            ));
        }
        let first = self.shape_of(from[0])?;
        let mut channels = 0usize;
        for &id in from {
            let s = self.shape_of(id)?;
            if !s.same_spatial(&first) {
                return Err(GraphError::ShapeMismatch(format!(
                    "concat inputs {first} vs {s} differ spatially"
                )));
            }
            channels += s.channels;
        }
        let output = first.with_channels(channels);
        self.push(name.into(), OpKind::Concat, from.to_vec(), output)
    }

    /// Adds an element-wise addition node (residual join) over `from`
    /// (≥ 2 inputs with identical shapes).
    ///
    /// # Errors
    ///
    /// Returns an error on arity < 2 or mismatched shapes.
    pub fn eltwise_add(
        &mut self,
        name: impl Into<String>,
        from: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        if from.len() < 2 {
            return Err(GraphError::Malformed(
                "eltwise add needs at least two inputs".into(),
            ));
        }
        let first = self.shape_of(from[0])?;
        for &id in from {
            let s = self.shape_of(id)?;
            if s != first {
                return Err(GraphError::ShapeMismatch(format!(
                    "eltwise inputs {first} vs {s} differ"
                )));
            }
        }
        self.push(name.into(), OpKind::EltwiseAdd, from.to_vec(), first)
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shape currently produced by node `id`, if it exists.
    #[must_use]
    pub fn shape(&self, id: NodeId) -> Option<FeatureShape> {
        self.nodes.get(id.0).map(|n| n.output)
    }

    /// Finalises the graph with `output` as the network output node.
    ///
    /// # Errors
    ///
    /// Returns an error if `output` is unknown or the graph is malformed.
    pub fn finish(self, output: NodeId) -> Result<Graph, GraphError> {
        Graph::from_parts(self.name, self.nodes, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(FeatureShape::new(3, 8, 8)).expect("input");
        b.conv("c", x, ConvParams::pointwise(4)).unwrap();
        let err = b.conv("c", x, ConvParams::pointwise(4)).unwrap_err();
        assert!(matches!(err, GraphError::Malformed(_)));
    }

    #[test]
    fn second_input_is_an_error() {
        let mut b = GraphBuilder::new("g");
        b.input(FeatureShape::new(3, 8, 8)).expect("first input");
        let err = b.input(FeatureShape::new(3, 8, 8)).unwrap_err();
        assert!(matches!(err, GraphError::Malformed(_)));
        assert!(err.to_string().contains("already has an input"));
    }

    #[test]
    fn concat_arity_and_shape_checks() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(FeatureShape::new(3, 8, 8)).expect("input");
        let a = b.conv("a", x, ConvParams::pointwise(4)).unwrap();
        let small = b.conv("s", x, ConvParams::square(4, 3, 2, 1)).unwrap();
        assert!(matches!(
            b.concat("c1", &[a]),
            Err(GraphError::Malformed(_))
        ));
        assert!(matches!(
            b.concat("c2", &[a, small]),
            Err(GraphError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn eltwise_requires_identical_shapes() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(FeatureShape::new(3, 8, 8)).expect("input");
        let a = b.conv("a", x, ConvParams::pointwise(4)).unwrap();
        let c = b.conv("c", x, ConvParams::pointwise(8)).unwrap();
        assert!(matches!(
            b.eltwise_add("e", &[a, c]),
            Err(GraphError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn fc_flattens_input() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(FeatureShape::new(512, 7, 7)).expect("input");
        let gap = b.global_avg_pool("gap", x).unwrap();
        let fc = b.fc("fc", gap, 1000).unwrap();
        assert_eq!(b.shape(fc).unwrap(), FeatureShape::vector(1000));
        assert_eq!(b.shape(gap).unwrap(), FeatureShape::vector(512));
    }

    #[test]
    fn fc_zero_features_rejected() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(FeatureShape::new(4, 1, 1)).expect("input");
        assert!(matches!(
            b.fc("fc", x, 0),
            Err(GraphError::InvalidParams(_))
        ));
    }

    #[test]
    fn block_labels_are_attached() {
        let mut b = GraphBuilder::new("g");
        let x = b.input(FeatureShape::new(3, 8, 8)).expect("input");
        b.set_block("stage1");
        let a = b.conv("a", x, ConvParams::pointwise(4)).unwrap();
        b.set_block("stage2");
        let c = b.conv("c", a, ConvParams::pointwise(4)).unwrap();
        b.clear_block();
        let p = b.max_pool("p", c, 2, 2, 0).unwrap();
        let g = b.finish(p).unwrap();
        assert_eq!(g.blocks(), vec!["stage1", "stage2"]);
        assert_eq!(g.block_nodes("stage1").len(), 1);
        assert!(g.node_by_name("p").unwrap().block().is_none());
    }

    #[test]
    fn unknown_input_id_rejected() {
        let mut b = GraphBuilder::new("g");
        let _x = b.input(FeatureShape::new(3, 8, 8)).expect("input");
        let bogus = NodeId(42);
        assert!(matches!(
            b.conv("c", bogus, ConvParams::pointwise(4)),
            Err(GraphError::UnknownNode(42))
        ));
    }
}
