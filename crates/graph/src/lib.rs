//! DNN computation-graph intermediate representation and model zoo.
//!
//! This crate is the bottom layer of the LCMM stack (DAC'19, Wei et al.).
//! It knows nothing about FPGAs: it models a DNN inference workload as a
//! directed acyclic graph of layers over feature-map tensors, and provides
//! exact element/operation accounting that the performance model
//! (`lcmm-fpga`) and the memory manager (`lcmm-core`) consume.
//!
//! # Quick tour
//!
//! ```
//! use lcmm_graph::{GraphBuilder, FeatureShape, ConvParams};
//!
//! # fn main() -> Result<(), lcmm_graph::GraphError> {
//! let mut b = GraphBuilder::new("tiny");
//! let input = b.input(FeatureShape::new(3, 224, 224))?;
//! let c1 = b.conv("conv1", input, ConvParams::square(64, 7, 2, 3))?;
//! let p1 = b.max_pool("pool1", c1, 3, 2, 1)?;
//! let c2 = b.conv("conv2", p1, ConvParams::square(128, 3, 1, 1))?;
//! let graph = b.finish(c2)?;
//!
//! assert_eq!(graph.conv_layers().count(), 2);
//! assert!(graph.total_macs() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! The [`zoo`] module builds the three benchmark networks of the paper
//! (ResNet-152, GoogLeNet, Inception-v4) plus several classics used by the
//! examples and ablations.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod export;
mod graph;
mod op;
mod tensor;

pub mod analysis;
pub mod fast_hash;
pub mod transform;
pub mod zoo;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, Node, NodeId};
pub use op::{ConvParams, FcParams, OpKind, PoolKind, PoolParams};
pub use tensor::FeatureShape;
