//! ResNet-50 / 101 / 152 (He et al., 2016), bottleneck variant.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

/// One bottleneck residual unit: 1×1 reduce → 3×3 → 1×1 expand, with an
/// identity or projection shortcut, joined by element-wise addition.
fn bottleneck(
    b: &mut GraphBuilder,
    from: NodeId,
    name: &str,
    mid_channels: usize,
    out_channels: usize,
    stride: usize,
    project: bool,
) -> Result<NodeId, GraphError> {
    // Original ResNet places the stride on the first 1x1 convolution.
    let c1 = b.conv(
        format!("{name}_branch2a"),
        from,
        ConvParams::square(mid_channels, 1, stride, 0),
    )?;
    let c2 = b.conv(
        format!("{name}_branch2b"),
        c1,
        ConvParams::square(mid_channels, 3, 1, 1),
    )?;
    let c3 = b.conv(
        format!("{name}_branch2c"),
        c2,
        ConvParams::pointwise(out_channels),
    )?;
    let shortcut = if project {
        b.conv(
            format!("{name}_branch1"),
            from,
            ConvParams::square(out_channels, 1, stride, 0),
        )?
    } else {
        from
    };
    b.eltwise_add(format!("{name}_add"), &[c3, shortcut])
}

/// Stage of `units` bottlenecks; the first unit projects (and strides,
/// except in stage 2 which follows the stem max-pool).
fn stage(
    b: &mut GraphBuilder,
    from: NodeId,
    stage_idx: usize,
    units: usize,
    mid_channels: usize,
    out_channels: usize,
    first_stride: usize,
) -> Result<NodeId, GraphError> {
    let mut cur = from;
    for u in 0..units {
        b.set_block(format!("stage{stage_idx}_{}", u + 1));
        let stride = if u == 0 { first_stride } else { 1 };
        cur = bottleneck(
            b,
            cur,
            &format!("res{stage_idx}{}", unit_label(u)),
            mid_channels,
            out_channels,
            stride,
            u == 0,
        )?;
    }
    Ok(cur)
}

/// Caffe-style unit labels: a, b, c, ... then b1, b2, ... past 26 units
/// (ResNet-152's stage 4 has 36 units).
fn unit_label(u: usize) -> String {
    if u < 26 {
        char::from(b'a' + u as u8).to_string()
    } else {
        format!("b{}", u - 1)
    }
}

fn resnet(name: &str, units: [usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    b.set_block("stem");
    let c1 = b
        .conv("conv1", x, ConvParams::square(64, 7, 2, 3))
        .expect("conv1");
    let p1 = b.max_pool("pool1", c1, 3, 2, 1).expect("pool1"); // 56x56
    let s2 = stage(&mut b, p1, 2, units[0], 64, 256, 1).expect("stage2");
    let s3 = stage(&mut b, s2, 3, units[1], 128, 512, 2).expect("stage3");
    let s4 = stage(&mut b, s3, 4, units[2], 256, 1024, 2).expect("stage4");
    let s5 = stage(&mut b, s4, 5, units[3], 512, 2048, 2).expect("stage5");
    b.set_block("classifier");
    let gap = b.global_avg_pool("gap", s5).expect("gap");
    let fc = b.fc("fc1000", gap, 1000).expect("fc1000");
    b.finish(fc).expect("resnet is acyclic by construction")
}

/// Builds ResNet-50 at 224×224 (stages of 3, 4, 6, 3 bottlenecks).
///
/// Used in the paper's Table 3 comparison against Cloud-DNN.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn resnet50() -> Graph {
    resnet("resnet50", [3, 4, 6, 3])
}

/// Builds ResNet-101 at 224×224 (stages of 3, 4, 23, 3 bottlenecks).
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn resnet101() -> Graph {
    resnet("resnet101", [3, 4, 23, 3])
}

/// Builds ResNet-152 at 224×224 (stages of 3, 8, 36, 3 bottlenecks) —
/// the paper's `RN` benchmark.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn resnet152() -> Graph {
    resnet("resnet152", [3, 8, 36, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn conv_counts_match_depth() {
        // conv layers = 1 stem + sum(units)*3 + 4 projections.
        assert_eq!(
            resnet50().conv_layers().count(),
            1 + (3 + 4 + 6 + 3) * 3 + 4
        );
        assert_eq!(
            resnet101().conv_layers().count(),
            1 + (3 + 4 + 23 + 3) * 3 + 4
        );
        assert_eq!(
            resnet152().conv_layers().count(),
            1 + (3 + 8 + 36 + 3) * 3 + 4
        );
    }

    #[test]
    fn named_depth_counts_weighted_layers() {
        // "50" = 49 convs + 1 fc, etc.
        assert_eq!(resnet50().compute_layers().count(), 54); // 50 + 4 projections
        assert_eq!(resnet152().compute_layers().count(), 156); // 152 + 4 projections
    }

    #[test]
    fn stage_output_shapes() {
        let g = resnet152();
        assert_eq!(
            g.node_by_name("res2c_add").unwrap().output_shape(),
            FeatureShape::new(256, 56, 56)
        );
        assert_eq!(
            g.node_by_name("res5c_add").unwrap().output_shape(),
            FeatureShape::new(2048, 7, 7)
        );
    }

    #[test]
    fn stage4_of_152_has_36_units() {
        let g = resnet152();
        // Last unit label of a 36-unit stage: index 35 -> "b34".
        assert!(g.node_by_name("res4b34_add").is_some());
        assert!(g.node_by_name("res4b35_add").is_none());
    }

    #[test]
    fn macs_near_published() {
        // ResNet-50 ≈ 4.1 GMACs, ResNet-152 ≈ 11.5 GMACs at 224².
        let g50 = summarize(&resnet50()).total_macs as f64 / 1e9;
        let g152 = summarize(&resnet152()).total_macs as f64 / 1e9;
        assert!((3.5..4.8).contains(&g50), "resnet50: {g50} GMACs");
        assert!((10.5..12.5).contains(&g152), "resnet152: {g152} GMACs");
    }

    #[test]
    fn params_near_published() {
        // ResNet-152 ≈ 60 M params.
        let p = summarize(&resnet152()).total_weight_elems as f64 / 1e6;
        assert!((55.0..65.0).contains(&p), "got {p} M params");
    }

    #[test]
    fn residual_adds_join_matching_shapes() {
        // Spot-check that identity shortcuts really are identity-shaped:
        // builder would have errored otherwise, so just confirm presence.
        let g = resnet50();
        let add = g.node_by_name("res2b_add").unwrap();
        assert_eq!(add.inputs().len(), 2);
    }

    #[test]
    fn blocks_cover_all_units() {
        let g = resnet152();
        // 3+8+36+3 = 50 residual blocks + stem + classifier.
        assert_eq!(g.blocks().len(), 52);
    }
}
