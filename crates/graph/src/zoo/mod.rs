//! Model zoo: the paper's benchmark networks, built layer by layer.
//!
//! The LCMM paper evaluates on ResNet-152 (`RN`), GoogLeNet (`GN`) and
//! Inception-v4 (`IN`), and compares against prior art on ResNet-50.
//! AlexNet and VGG-16 are included as the linear-topology counterpoints
//! that the introduction argues uniform double-buffering was designed for.
//!
//! All builders produce batch-1 inference graphs at the canonical ImageNet
//! input resolution (224×224, or 299×299 for Inception-v4), with ReLU and
//! batch-norm folded into the convolutions.

mod alexnet;
mod densenet;
mod googlenet;
mod inception_resnet;
mod inception_v4;
mod mobilenet;
mod resnet;
mod squeezenet;
mod synthetic;
mod vgg;

pub use alexnet::alexnet;
pub use densenet::densenet121;
pub use googlenet::googlenet;
pub use inception_resnet::inception_resnet_v2;
pub use inception_v4::inception_v4;
pub use mobilenet::mobilenet;
pub use resnet::{resnet101, resnet152, resnet50};
pub use squeezenet::squeezenet;
pub use synthetic::{synthetic, synthetic_scaled, synthetic_shortcut};
pub use vgg::vgg16;

use crate::Graph;

/// The paper's Table 1 benchmark suite: ResNet-152, GoogLeNet,
/// Inception-v4, in that order.
#[must_use]
pub fn benchmark_suite() -> Vec<Graph> {
    vec![resnet152(), googlenet(), inception_v4()]
}

/// Every named model in the zoo, smallest first — the audit grid walks
/// this list so a divergence in a cheap linear model fails fast before
/// the expensive inception builds run.
#[must_use]
pub fn full_zoo() -> Vec<Graph> {
    vec![
        alexnet(),
        mobilenet(),
        squeezenet(),
        vgg16(),
        googlenet(),
        densenet121(),
        resnet50(),
        resnet101(),
        resnet152(),
        inception_v4(),
        inception_resnet_v2(),
    ]
}

/// Canonical short names of every zoo model, in [`full_zoo`] order —
/// for CLI error messages and docs (the parameterised `synthetic:*`
/// specs accepted by [`by_name`] are not listed).
#[must_use]
pub fn names() -> &'static [&'static str] {
    &[
        "alexnet",
        "mobilenet",
        "squeezenet",
        "vgg16",
        "googlenet",
        "densenet121",
        "resnet50",
        "resnet101",
        "resnet152",
        "inception_v4",
        "inception_resnet_v2",
    ]
}

/// Builds a model by its short name, as used by the CLI.
///
/// Recognised names: `alexnet`, `vgg16`, `resnet50`, `resnet101`,
/// `resnet152`, `googlenet`, `inception_v4` (aliases `rn`, `gn`, `in`),
/// plus parameterised scale workloads `synthetic:<depth>x<branching>x<seed>`
/// (e.g. `synthetic:1024x4x7`), optionally width-scaled with an
/// `@<percent>` suffix (e.g. `synthetic:1024x4x7@50`) and/or tilted
/// toward residual diamonds with a `+res` suffix (e.g.
/// `synthetic:1024x4x7@50+res`, see [`synthetic_shortcut`]).
#[must_use]
pub fn by_name(name: &str) -> Option<Graph> {
    if let Some(spec) = name
        .strip_prefix("synthetic:")
        .or_else(|| name.strip_prefix("synthetic_"))
    {
        let (spec, shortcut) = match spec.strip_suffix("+res") {
            Some(head) => (head, true),
            None => (spec, false),
        };
        let (spec, width_percent) = match spec.split_once('@') {
            Some((head, scale)) => (head, scale.parse().ok()?),
            None => (spec, 100),
        };
        let mut parts = spec.split('x');
        let depth: usize = parts.next()?.parse().ok()?;
        let branching: usize = parts.next()?.parse().ok()?;
        let seed: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || depth == 0 || width_percent == 0 {
            return None;
        }
        return Some(if shortcut {
            synthetic_shortcut(depth, branching, seed, width_percent)
        } else {
            synthetic_scaled(depth, branching, seed, width_percent)
        });
    }
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(alexnet()),
        "densenet121" | "densenet" | "dn" => Some(densenet121()),
        "mobilenet" | "mn" => Some(mobilenet()),
        "squeezenet" | "sq" => Some(squeezenet()),
        "vgg16" | "vgg" => Some(vgg16()),
        "resnet50" => Some(resnet50()),
        "resnet101" => Some(resnet101()),
        "resnet152" | "rn" => Some(resnet152()),
        "googlenet" | "gn" => Some(googlenet()),
        "inception_v4" | "inception-v4" | "in" => Some(inception_v4()),
        "inception_resnet_v2" | "irv2" => Some(inception_resnet_v2()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(by_name("RN").unwrap().name(), "resnet152");
        assert_eq!(by_name("gn").unwrap().name(), "googlenet");
        assert_eq!(by_name("in").unwrap().name(), "inception_v4");
        assert!(by_name("lenet").is_none());
    }

    #[test]
    fn by_name_parses_synthetic_specs() {
        let g = by_name("synthetic:128x4x7").unwrap();
        assert_eq!(g.name(), "synthetic_128x4x7");
        assert!(g.len() >= 128);
        assert!(by_name("synthetic:128x4").is_none(), "missing seed");
        assert!(by_name("synthetic:0x4x7").is_none(), "zero depth");
        assert!(by_name("synthetic:ax4x7").is_none(), "non-numeric");
        assert!(by_name("synthetic:1x2x3x4").is_none(), "extra field");
    }

    #[test]
    fn by_name_parses_width_scaled_synthetic_specs() {
        let g = by_name("synthetic:128x4x7@50").unwrap();
        assert_eq!(g.name(), "synthetic_128x4x7@50");
        assert!(by_name("synthetic:128x4x7@0").is_none(), "zero scale");
        assert!(by_name("synthetic:128x4x7@").is_none(), "empty scale");
        assert!(by_name("synthetic:128x4x7@abc").is_none(), "non-numeric");
    }

    #[test]
    fn by_name_parses_shortcut_heavy_synthetic_specs() {
        let g = by_name("synthetic:128x2x7+res").unwrap();
        assert_eq!(g.name(), "synthetic_128x2x7+res");
        // Round-trips through its own name, like every zoo model.
        assert_eq!(by_name(g.name()).unwrap().len(), g.len());
        // Composes with width scaling, in `@W%` then `+res` order.
        let scaled = by_name("synthetic:128x2x7@50+res").unwrap();
        assert_eq!(scaled.name(), "synthetic_128x2x7@50+res");
        assert!(by_name("synthetic:128x2x7+res@50").is_none(), "wrong order");
        assert!(by_name("synthetic:+res").is_none(), "missing spec");
    }

    #[test]
    fn full_zoo_covers_every_named_model() {
        let zoo = full_zoo();
        assert_eq!(zoo.len(), 11);
        for g in &zoo {
            let again = by_name(g.name()).expect("zoo models resolve by name");
            assert_eq!(again.len(), g.len());
        }
    }

    #[test]
    fn benchmark_suite_is_the_paper_trio() {
        let names: Vec<String> = benchmark_suite()
            .iter()
            .map(|g| g.name().to_string())
            .collect();
        assert_eq!(names, ["resnet152", "googlenet", "inception_v4"]);
    }
}
