//! SqueezeNet 1.0 (Iandola et al., 2016).
//!
//! Tiny parameter count with fire modules (squeeze 1×1 → parallel 1×1 /
//! 3×3 expands → concat): the opposite corner of the design space from
//! VGG — here *features* dominate traffic and weights are almost free.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

/// One fire module: squeeze to `s` channels, expand to `e1` 1×1 plus
/// `e3` 3×3, concatenated.
fn fire(
    b: &mut GraphBuilder,
    from: NodeId,
    idx: usize,
    s: usize,
    e1: usize,
    e3: usize,
) -> Result<NodeId, GraphError> {
    b.set_block(format!("fire{idx}"));
    let squeeze = b.conv(
        format!("fire{idx}/squeeze1x1"),
        from,
        ConvParams::pointwise(s),
    )?;
    let x1 = b.conv(
        format!("fire{idx}/expand1x1"),
        squeeze,
        ConvParams::pointwise(e1),
    )?;
    let x3 = b.conv(
        format!("fire{idx}/expand3x3"),
        squeeze,
        ConvParams::square(e3, 3, 1, 1),
    )?;
    b.concat(format!("fire{idx}/concat"), &[x1, x3])
}

/// Builds SqueezeNet 1.0 at 224×224.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn squeezenet() -> Graph {
    let mut b = GraphBuilder::new("squeezenet");
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    b.set_block("stem");
    let c1 = b
        .conv("conv1", x, ConvParams::square(96, 7, 2, 2))
        .expect("conv1"); // 110
    let p1 = b.max_pool("pool1", c1, 3, 2, 0).expect("pool1"); // 54

    let f2 = fire(&mut b, p1, 2, 16, 64, 64).expect("fire2");
    let f3 = fire(&mut b, f2, 3, 16, 64, 64).expect("fire3");
    let f4 = fire(&mut b, f3, 4, 32, 128, 128).expect("fire4");
    b.clear_block();
    let p4 = b.max_pool("pool4", f4, 3, 2, 0).expect("pool4"); // 26

    let f5 = fire(&mut b, p4, 5, 32, 128, 128).expect("fire5");
    let f6 = fire(&mut b, f5, 6, 48, 192, 192).expect("fire6");
    let f7 = fire(&mut b, f6, 7, 48, 192, 192).expect("fire7");
    let f8 = fire(&mut b, f7, 8, 64, 256, 256).expect("fire8");
    b.clear_block();
    let p8 = b.max_pool("pool8", f8, 3, 2, 0).expect("pool8"); // 12

    let f9 = fire(&mut b, p8, 9, 64, 256, 256).expect("fire9");
    b.set_block("classifier");
    let c10 = b
        .conv("conv10", f9, ConvParams::pointwise(1000))
        .expect("conv10");
    let gap = b.global_avg_pool("gap", c10).expect("gap");
    b.finish(gap)
        .expect("squeezenet is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn layer_counts() {
        // 1 stem + 8 fires x 3 + conv10 = 26 convs, no FC.
        let g = squeezenet();
        assert_eq!(g.conv_layers().count(), 26);
        assert_eq!(g.compute_layers().count(), 26);
    }

    #[test]
    fn fire_output_channels() {
        let g = squeezenet();
        assert_eq!(
            g.node_by_name("fire4/concat")
                .unwrap()
                .output_shape()
                .channels,
            256
        );
        assert_eq!(
            g.node_by_name("fire9/concat")
                .unwrap()
                .output_shape()
                .channels,
            512
        );
    }

    #[test]
    fn params_near_published_1_2m() {
        let m = summarize(&squeezenet()).total_weight_elems as f64 / 1e6;
        assert!((1.0..1.6).contains(&m), "got {m} M params");
    }

    #[test]
    fn output_is_class_vector() {
        let g = squeezenet();
        assert_eq!(g.output_node().output_shape(), FeatureShape::vector(1000));
    }
}
