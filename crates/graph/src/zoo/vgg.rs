//! VGG-16 (Simonyan & Zisserman, 2014), configuration D.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

fn stage(
    b: &mut GraphBuilder,
    from: NodeId,
    stage_idx: usize,
    channels: usize,
    convs: usize,
) -> Result<NodeId, GraphError> {
    b.set_block(format!("stage{stage_idx}"));
    let mut cur = from;
    for i in 1..=convs {
        cur = b.conv(
            format!("conv{stage_idx}_{i}"),
            cur,
            ConvParams::square(channels, 3, 1, 1),
        )?;
    }
    b.max_pool(format!("pool{stage_idx}"), cur, 2, 2, 0)
}

/// Builds VGG-16 at 224×224.
///
/// Deep but strictly linear: 13 convolutions, 5 pools, 3 FC layers. With
/// 138 M parameters it is the stress case for weight traffic.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn vgg16() -> Graph {
    let mut b = GraphBuilder::new("vgg16");
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    let s1 = stage(&mut b, x, 1, 64, 2).expect("stage1");
    let s2 = stage(&mut b, s1, 2, 128, 2).expect("stage2");
    let s3 = stage(&mut b, s2, 3, 256, 3).expect("stage3");
    let s4 = stage(&mut b, s3, 4, 512, 3).expect("stage4");
    let s5 = stage(&mut b, s4, 5, 512, 3).expect("stage5");
    b.set_block("classifier");
    let f6 = b.fc("fc6", s5, 4096).expect("fc6");
    let f7 = b.fc("fc7", f6, 4096).expect("fc7");
    let f8 = b.fc("fc8", f7, 1000).expect("fc8");
    b.finish(f8).expect("vgg16 is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn layer_counts() {
        let g = vgg16();
        assert_eq!(g.conv_layers().count(), 13);
        assert_eq!(g.compute_layers().count(), 16);
    }

    #[test]
    fn spatial_pyramid() {
        let g = vgg16();
        assert_eq!(
            g.node_by_name("pool1").unwrap().output_shape(),
            FeatureShape::new(64, 112, 112)
        );
        assert_eq!(
            g.node_by_name("pool5").unwrap().output_shape(),
            FeatureShape::new(512, 7, 7)
        );
    }

    #[test]
    fn macs_near_published_15_gflops() {
        // VGG-16 is ~15.5 GMACs (30.9 GFLOPs at 2 ops per MAC).
        let s = summarize(&vgg16());
        let gmacs = s.total_macs as f64 / 1e9;
        assert!((14.0..17.0).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn params_near_published_138m() {
        let s = summarize(&vgg16());
        let m = s.total_weight_elems as f64 / 1e6;
        assert!((130.0..145.0).contains(&m), "got {m} M params");
    }
}
