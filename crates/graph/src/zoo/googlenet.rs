//! GoogLeNet (Szegedy et al., 2014) — the paper's `GN` benchmark.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

/// Channel plan of one inception module:
/// `(#1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool proj)`.
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

/// The canonical GoogLeNet table (Szegedy et al., Table 1).
const MODULES: [(&str, InceptionPlan); 9] = [
    ("inception_3a", (64, 96, 128, 16, 32, 32)),
    ("inception_3b", (128, 128, 192, 32, 96, 64)),
    ("inception_4a", (192, 96, 208, 16, 48, 64)),
    ("inception_4b", (160, 112, 224, 24, 64, 64)),
    ("inception_4c", (128, 128, 256, 24, 64, 64)),
    ("inception_4d", (112, 144, 288, 32, 64, 64)),
    ("inception_4e", (256, 160, 320, 32, 128, 128)),
    ("inception_5a", (256, 160, 320, 32, 128, 128)),
    ("inception_5b", (384, 192, 384, 48, 128, 128)),
];

fn inception(
    b: &mut GraphBuilder,
    from: NodeId,
    name: &str,
    plan: InceptionPlan,
) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let (p1, p3r, p3, p5r, p5, pproj) = plan;
    let b1 = b.conv(format!("{name}/1x1"), from, ConvParams::pointwise(p1))?;
    let b2r = b.conv(
        format!("{name}/3x3_reduce"),
        from,
        ConvParams::pointwise(p3r),
    )?;
    let b2 = b.conv(format!("{name}/3x3"), b2r, ConvParams::square(p3, 3, 1, 1))?;
    let b3r = b.conv(
        format!("{name}/5x5_reduce"),
        from,
        ConvParams::pointwise(p5r),
    )?;
    let b3 = b.conv(format!("{name}/5x5"), b3r, ConvParams::square(p5, 5, 1, 2))?;
    let bp = b.max_pool(format!("{name}/pool"), from, 3, 1, 1)?;
    let bpp = b.conv(
        format!("{name}/pool_proj"),
        bp,
        ConvParams::pointwise(pproj),
    )?;
    b.concat(format!("{name}/output"), &[b1, b2, b3, bpp])
}

/// Builds GoogLeNet at 224×224 (without the training-time auxiliary
/// classifiers, which play no part in inference).
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn googlenet() -> Graph {
    let mut b = GraphBuilder::new("googlenet");
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    b.set_block("stem");
    let c1 = b
        .conv("conv1/7x7_s2", x, ConvParams::square(64, 7, 2, 3))
        .expect("conv1");
    let p1 = b.max_pool("pool1/3x3_s2", c1, 3, 2, 1).expect("pool1"); // 56
    let c2r = b
        .conv("conv2/3x3_reduce", p1, ConvParams::pointwise(64))
        .expect("conv2r");
    let c2 = b
        .conv("conv2/3x3", c2r, ConvParams::square(192, 3, 1, 1))
        .expect("conv2");
    let p2 = b.max_pool("pool2/3x3_s2", c2, 3, 2, 1).expect("pool2"); // 28

    let mut cur = p2;
    for (name, plan) in &MODULES[0..2] {
        cur = inception(&mut b, cur, name, *plan).expect("inception 3x");
    }
    b.clear_block();
    cur = b.max_pool("pool3/3x3_s2", cur, 3, 2, 1).expect("pool3"); // 14
    for (name, plan) in &MODULES[2..7] {
        cur = inception(&mut b, cur, name, *plan).expect("inception 4x");
    }
    b.clear_block();
    cur = b.max_pool("pool4/3x3_s2", cur, 3, 2, 1).expect("pool4"); // 7
    for (name, plan) in &MODULES[7..9] {
        cur = inception(&mut b, cur, name, *plan).expect("inception 5x");
    }
    b.set_block("classifier");
    let gap = b.global_avg_pool("pool5/7x7_s1", cur).expect("gap");
    let fc = b.fc("loss3/classifier", gap, 1000).expect("fc");
    b.finish(fc).expect("googlenet is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn conv_count_is_57() {
        // 3 stem convs + 9 modules x 6 convs.
        assert_eq!(googlenet().conv_layers().count(), 57);
    }

    #[test]
    fn nine_inception_blocks() {
        let g = googlenet();
        let blocks: Vec<&str> = g
            .blocks()
            .into_iter()
            .filter(|b| b.starts_with("inception"))
            .collect();
        assert_eq!(blocks.len(), 9);
        assert_eq!(blocks[0], "inception_3a");
        assert_eq!(blocks[8], "inception_5b");
    }

    #[test]
    fn module_output_channels() {
        let g = googlenet();
        assert_eq!(
            g.node_by_name("inception_3a/output")
                .unwrap()
                .output_shape(),
            FeatureShape::new(256, 28, 28)
        );
        assert_eq!(
            g.node_by_name("inception_4e/output")
                .unwrap()
                .output_shape(),
            FeatureShape::new(832, 14, 14)
        );
        assert_eq!(
            g.node_by_name("inception_5b/output")
                .unwrap()
                .output_shape(),
            FeatureShape::new(1024, 7, 7)
        );
    }

    #[test]
    fn macs_near_published_1_5g() {
        // GoogLeNet ≈ 1.5 GMACs (~3 GFLOPs).
        let gmacs = summarize(&googlenet()).total_macs as f64 / 1e9;
        assert!((1.3..1.8).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn params_near_published_7m() {
        let m = summarize(&googlenet()).total_weight_elems as f64 / 1e6;
        assert!((5.5..8.0).contains(&m), "got {m} M params");
    }

    #[test]
    fn inception_concat_reads_four_branches() {
        let g = googlenet();
        assert_eq!(
            g.node_by_name("inception_3a/output")
                .unwrap()
                .inputs()
                .len(),
            4
        );
    }
}
